// templex_http — a deliberately small HTTP/1.1 client for scripting
// against templex_serve (tests/tools/serve_smoke.sh, CI): one request,
// one connection, body to stdout.
//
//   templex_http [--method GET|POST] [--body STR] [--body-file FILE]
//                [--header 'Name: value']... [--timeout-ms N]
//                [--include] http://HOST:PORT/PATH
//
// --include prints the status line and headers before the body (curl -i).
//
// Exit codes: 0 on a 2xx response, 1 on connect/transport failure,
// 2 on usage error, 3 on a non-2xx response (the response still prints).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"
#include "io/csv.h"

namespace templex {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: templex_http [--method GET|POST] [--body STR]\n"
               "                    [--body-file FILE] [--header 'N: v']...\n"
               "                    [--timeout-ms N] [--include]\n"
               "                    http://HOST:PORT/PATH\n");
  return 2;
}

}  // namespace

int HttpMain(int argc, char** argv) {
  std::string method = "GET";
  std::string body;
  bool have_body = false;
  std::vector<std::string> headers;
  int64_t timeout_ms = 10000;
  bool include = false;
  std::string url;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(Usage());
      }
      return argv[++i];
    };
    if (arg == "--method") {
      method = next("--method");
    } else if (arg == "--body") {
      body = next("--body");
      have_body = true;
    } else if (arg == "--body-file") {
      Result<std::string> loaded = ReadFileToString(next("--body-file"));
      if (!loaded.ok()) {
        std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
        return 1;
      }
      body = std::move(loaded).value();
      have_body = true;
    } else if (arg == "--header") {
      headers.push_back(next("--header"));
    } else if (arg == "--timeout-ms") {
      timeout_ms = std::atoll(next("--timeout-ms").c_str());
      if (timeout_ms <= 0) return Usage();
    } else if (arg == "--include") {
      include = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage();
    } else if (url.empty()) {
      url = arg;
    } else {
      return Usage();
    }
  }

  // URL: http://HOST:PORT/PATH — no TLS, no DNS beyond dotted quads, no
  // default port; the daemon always reports a concrete host:port.
  const std::string prefix = "http://";
  if (url.rfind(prefix, 0) != 0) return Usage();
  const std::string rest = url.substr(prefix.size());
  const size_t slash = rest.find('/');
  const std::string host_port =
      slash == std::string::npos ? rest : rest.substr(0, slash);
  const std::string path =
      slash == std::string::npos ? "/" : rest.substr(slash);
  const size_t colon = host_port.rfind(':');
  if (colon == std::string::npos) return Usage();
  const std::string host = host_port.substr(0, colon);
  const int port = std::atoi(host_port.c_str() + colon + 1);
  if (port <= 0 || port > 65535) return Usage();

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return 1;
  }
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<int>(timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "error: bad host '%s' (dotted quad required)\n",
                 host.c_str());
    close(fd);
    return 1;
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::perror("connect");
    close(fd);
    return 1;
  }

  std::string request = method + " " + path + " HTTP/1.1\r\n";
  for (const std::string& header : headers) request += header + "\r\n";
  if (have_body || method == "POST") {
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  request += "\r\n" + body;
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      std::perror("send");
      close(fd);
      return 1;
    }
    sent += static_cast<size_t>(n);
  }
  shutdown(fd, SHUT_WR);  // one request per connection, like the server

  std::string response;
  char buf[4096];
  while (true) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      std::perror("recv");
      close(fd);
      return 1;
    }
    if (n == 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);

  // "HTTP/1.1 NNN ..." — anything shorter is a torn response.
  if (response.size() < 12 || response.compare(0, 5, "HTTP/") != 0) {
    std::fprintf(stderr, "error: malformed response\n");
    return 1;
  }
  const int status = std::atoi(response.c_str() + 9);
  const size_t split = response.find("\r\n\r\n");
  const std::string out =
      include ? response
              : (split == std::string::npos ? std::string()
                                            : response.substr(split + 4));
  std::fwrite(out.data(), 1, out.size(), stdout);
  if (status / 100 == 2) return 0;
  std::fprintf(stderr, "templex_http: HTTP %d\n", status);
  return 3;
}

}  // namespace templex

int main(int argc, char** argv) { return templex::HttpMain(argc, argv); }
