// bench_diff — compare two google-benchmark JSON result files (as written
// by `tools/bench_baseline` or any `--benchmark_format=json` run).
//
//   bench_diff OLD.json NEW.json [--filter PREFIX] [--exclude SUBSTR]
//              [--threshold-pct P]
//
// Prints one line per benchmark present in both files with the real_time
// delta, then a summary line with the geometric-mean speedup across the
// compared pairs (ratio of old/new real_time — above 1.0x means the new
// run is faster overall); benchmarks present in only one file are
// reported as added/removed and excluded from the mean.
//
// --filter PREFIX      only consider benchmarks whose name starts with
//                      PREFIX (e.g. --filter BM_Chase);
// --exclude SUBSTR     skip benchmarks whose name contains SUBSTR
//                      (repeatable) — e.g. the CI forced-materialize leg
//                      excludes BM_PointQuery, whose whole point is to be
//                      slow under that mode;
// --threshold-pct P    exit with status 3 if any benchmark's real_time
//                      regressed (grew) by more than P percent — the
//                      regression-gate mode for CI against the committed
//                      BENCH_engine.json baseline.
//
// Exit codes follow the metrics_diff convention: 0 diff printed (and no
// regression beyond the threshold), 2 usage error, 1 unreadable or
// unparsable input, 3 threshold exceeded.

#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "io/csv.h"
#include "io/json_parse.h"

namespace {

using namespace templex;

int Usage() {
  std::fprintf(stderr,
               "usage: bench_diff OLD.json NEW.json [--filter PREFIX] "
               "[--exclude SUBSTR] [--threshold-pct P]\n");
  return 2;
}

double PercentChange(double old_value, double new_value) {
  if (old_value == new_value) return 0.0;
  if (old_value == 0.0) return new_value > 0.0 ? HUGE_VAL : -HUGE_VAL;
  return (new_value - old_value) / std::fabs(old_value) * 100.0;
}

std::string FormatPercent(double pct) {
  if (std::isinf(pct)) return pct > 0 ? "+inf%" : "-inf%";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", pct);
  return buf;
}

struct BenchEntry {
  double real_time = 0.0;
  std::string time_unit;  // "ns" unless the run says otherwise
};

// name -> timing, aggregates (mean/median/stddev rows emitted with
// --benchmark_repetitions) excluded so the gate compares like with like.
using BenchRun = std::map<std::string, BenchEntry>;

Result<BenchRun> LoadRun(const std::string& path) {
  // Every load failure surfaces as InvalidArgument naming the offending
  // path — the message must say which of the two inputs to fix.
  Result<std::string> text = ReadFileToString(path);
  if (!text.ok()) {
    return Status::InvalidArgument("cannot load benchmark results '" + path +
                                   "': " + text.status().message());
  }
  Result<JsonValue> parsed = ParseJson(text.value());
  if (!parsed.ok()) {
    return Status::InvalidArgument("cannot load benchmark results '" + path +
                                   "': " + parsed.status().message());
  }
  const JsonValue& root = parsed.value();
  const JsonValue* benchmarks =
      root.is_object() ? root.Find("benchmarks") : nullptr;
  if (benchmarks == nullptr || !benchmarks->is_array()) {
    return Status::InvalidArgument("cannot load benchmark results '" + path +
                                   "': no \"benchmarks\" array");
  }
  BenchRun run;
  for (const JsonValue& bench : benchmarks->items()) {
    if (!bench.is_object()) continue;
    const JsonValue* name = bench.Find("name");
    const JsonValue* real_time = bench.Find("real_time");
    if (name == nullptr || !name->is_string() || real_time == nullptr ||
        !real_time->is_number()) {
      continue;
    }
    const JsonValue* run_type = bench.Find("run_type");
    if (run_type != nullptr && run_type->is_string() &&
        run_type->string_value() != "iteration") {
      continue;  // aggregate row
    }
    BenchEntry entry;
    entry.real_time = real_time->number_value();
    const JsonValue* unit = bench.Find("time_unit");
    entry.time_unit = (unit != nullptr && unit->is_string())
                          ? unit->string_value()
                          : "ns";
    run[name->string_value()] = entry;
  }
  return run;
}

bool MatchesFilter(const std::string& name, const std::string& prefix) {
  return prefix.empty() || name.rfind(prefix, 0) == 0;
}

bool Excluded(const std::string& name,
              const std::vector<std::string>& excludes) {
  for (const std::string& substr : excludes) {
    if (name.find(substr) != std::string::npos) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string filter;
  std::vector<std::string> excludes;
  double threshold_pct = -1.0;  // < 0: no gate
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--filter") {
      filter = next("--filter");
    } else if (arg == "--exclude") {
      excludes.push_back(next("--exclude"));
    } else if (arg == "--threshold-pct") {
      char* end = nullptr;
      const char* value = next("--threshold-pct");
      threshold_pct = std::strtod(value, &end);
      if (end == value || *end != '\0' || threshold_pct < 0.0) {
        std::fprintf(stderr,
                     "--threshold-pct expects a non-negative number\n");
        return 2;
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) return Usage();

  Result<BenchRun> old_run = LoadRun(paths[0]);
  if (!old_run.ok()) {
    std::fprintf(stderr, "error: %s\n", old_run.status().ToString().c_str());
    return 1;
  }
  Result<BenchRun> new_run = LoadRun(paths[1]);
  if (!new_run.ok()) {
    std::fprintf(stderr, "error: %s\n", new_run.status().ToString().c_str());
    return 1;
  }
  const BenchRun& before = old_run.value();
  const BenchRun& after = new_run.value();

  bool regressed = false;
  double log_speedup_sum = 0.0;  // sum of ln(old/new) over compared pairs
  int compared = 0;
  for (const auto& [name, old_entry] : before) {
    if (!MatchesFilter(name, filter) || Excluded(name, excludes)) continue;
    auto it = after.find(name);
    if (it == after.end()) {
      std::printf("bench %-48s removed (was %.0f %s)\n", name.c_str(),
                  old_entry.real_time, old_entry.time_unit.c_str());
      continue;
    }
    const double pct = PercentChange(old_entry.real_time,
                                     it->second.real_time);
    std::printf("bench %-48s %14.0f -> %14.0f %-3s (%s)\n", name.c_str(),
                old_entry.real_time, it->second.real_time,
                it->second.time_unit.c_str(), FormatPercent(pct).c_str());
    if (old_entry.real_time > 0.0 && it->second.real_time > 0.0) {
      log_speedup_sum += std::log(old_entry.real_time / it->second.real_time);
      ++compared;
    }
    if (threshold_pct >= 0.0 && pct > threshold_pct) {
      std::printf("  ^ REGRESSION: %s exceeds +%.1f%% gate\n",
                  FormatPercent(pct).c_str(), threshold_pct);
      regressed = true;
    }
  }
  for (const auto& [name, new_entry] : after) {
    if (!MatchesFilter(name, filter) || Excluded(name, excludes)) continue;
    if (before.count(name) == 0) {
      std::printf("bench %-48s added (now %.0f %s)\n", name.c_str(),
                  new_entry.real_time, new_entry.time_unit.c_str());
    }
  }
  if (compared > 0) {
    // Geometric mean of per-benchmark old/new time ratios: the natural
    // average for rates, insensitive to which benchmark runs longest.
    const double geomean = std::exp(log_speedup_sum / compared);
    std::printf("summary: geometric mean speedup %.3fx over %d benchmark%s\n",
                geomean, compared, compared == 1 ? "" : "s");
  }
  return regressed ? 3 : 0;
}
