// templex_cli — run a Vadalog-subset KG application from the command line.
//
//   templex_cli --program rules.vada --facts data.csv
//               [--glossary glossary.csv] [--query 'Control(A, C)']
//               [--explain 'Control(A, C)']... [--anonymize]
//               [--report out.md] [--interactive]
//               [--dump-json chase.json] [--templates]
//               [--metrics-json m.json] [--metrics-prom m.prom]
//               [--trace-out t.json] [--profile] [--rule-profile]
//               [--event-log events.jsonl] [--crash-report crash.jsonl]
//               [--threads N]
//
// Every flag also accepts the --flag=value form.
//
// --program    rule file (see src/datalog/parser.h for the syntax);
// --facts      CSV facts (see src/io/csv.h); repeatable;
// --glossary   CSV with lines `predicate,"pattern",token:style,...` — one
//              token:style pair per predicate argument, in argument order
//              (styles: plain|millions|percent). Without it, a minimal
//              fallback glossary is generated from the rules.
// --query      prints all facts matching a pattern (use _ as wildcard);
// --eval-mode  auto|materialize|qsqr — how --query is answered. auto (the
//              default) lets a cost model choose; qsqr runs goal-directed
//              evaluation (magic-set relevance + restricted chase, see
//              DESIGN.md §12) so point queries stop paying for the full
//              chase; materialize forces the classic full run. Answers and
//              explanation text are byte-identical across modes. Flags
//              that need the whole instance (--what-if, --interactive,
//              --dump-json, --report, --explain-all, --checkpoint-dir)
//              force materialize. TEMPLEX_EVAL_MODE overrides auto.
// --explain    prints the textual explanation of a derived fact
//              (repeatable);
// --explain-all prints every recorded reasoning story for the fact;
// --anonymize  pseudonymizes the explanation output;
// --report     writes a markdown business report covering every --explain
//              plus the data-quality appendix;
// --what-if    adds hypothetical facts (repeatable), reasons over
//              baseline+hypothesis without mutating it, and prints the
//              newly derived facts;
// --interactive reads further query/explain lines from stdin
//              ("? Control(A, _)" queries, any fact literal explains);
// --templates  prints the explanation-template catalog;
// --dump-json  writes the chase graph as JSON;
// --metrics-json writes the run's metrics snapshot (per-rule firing
//              counters, per-phase latency histograms with p50/p95/p99) as
//              JSON — see docs/OBSERVABILITY.md for the naming scheme;
// --metrics-prom writes the same snapshot in Prometheus text exposition
//              format (0.0.4: # TYPE lines, histogram _bucket/_sum/_count)
//              for scraping or pushing to a gateway;
// --trace-out  writes a Chrome trace-event JSON of the run's nested spans
//              (load in chrome://tracing or https://ui.perfetto.dev);
// --profile    prints a metrics summary table on stderr after the run.
// --rule-profile prints per-rule cost attribution on stderr after the
//              chase: matches, firings, duplicates, and delta-window sizes
//              per (rule, stratum), sorted by matches. The columns are
//              deterministic, so the table is byte-identical across
//              --threads values.
// --rule-profile-top keep only the K most expensive rows (default 20,
//              0 = all; implies nothing by itself — pair with
//              --rule-profile).
// --event-log  streams the run's structured flight-recorder events
//              (chase rounds, rule evaluations, checkpoint commits, LLM
//              retries) to a JSONL file as they happen;
// --crash-report on any failure (deadline, cancellation, chase error,
//              corrupt checkpoint, LLM retry exhaustion) writes the last
//              flight-recorder events to this JSONL file atomically, so a
//              post-mortem can see what the run was doing when it died.
//
// All file outputs (--report, --dump-json, --metrics-json, --metrics-prom,
// --trace-out, --crash-report) are written atomically: tmp + fsync +
// rename, so a killed run never leaves a partial artifact.
// --threads    match-phase threads for each chase round (default 1 =
//              sequential, 0 = hardware concurrency); results are
//              byte-identical across thread counts.
// --join-mode  how body atoms source candidates: "merge" (default) seals
//              each round into sorted columnar segments and merge-joins
//              regular predicates, "probe" keeps the hash-index-only path.
//              A pure execution-strategy knob — outputs are byte-identical
//              in both modes. The TEMPLEX_JOIN_MODE environment variable
//              overrides the flag (the CI bench matrix uses it).
// --deadline-ms overall wall-clock budget in milliseconds for reasoning
//              and explanation. When it expires the chase aborts cleanly
//              with DeadlineExceeded, and any LLM enhancement still
//              pending degrades to the deterministic template wording.
// --checkpoint-dir directory for crash-safe chase checkpoints (see
//              DESIGN.md §9): the run commits its state at round
//              boundaries, so a killed or deadline-exceeded run can be
//              continued with --resume instead of recomputed.
// --checkpoint-every-rounds journal a delta every N completed rounds
//              (default 1; requires --checkpoint-dir).
// --resume     resume from the checkpoint in --checkpoint-dir when one is
//              present (exact same program, facts, and semantics-affecting
//              config required); byte-identical to the uninterrupted run,
//              at any --threads value.
// --max-bytes  memory budget for the chase's accounted footprint (chase
//              graph + provenance, indexes, segments, aggregates). The
//              flag value is the hard watermark: crossing it finishes the
//              current round, commits a final checkpoint (with
//              --checkpoint-dir), and exits 7 — rerun with --resume,
//              without the budget, to continue byte-identically. The soft
//              watermark sits at 3/4 of it and sheds accessory state
//              first (tracer buffers, columnar segments, flight-recorder
//              rings) without changing any output.
// --stall-timeout-ms round-progress watchdog: if the matcher makes no
//              progress for this long, the run is cancelled cooperatively
//              (exit 5) and the crash report names the in-flight
//              rule/stratum/round. Committed rounds stay resumable.
// --chaos-stall-ms / --chaos-stall-round (tests/CI only) simulate a stuck
//              rule: burn this much wall-clock at the start of the given
//              round without heartbeating the watchdog.
//
// Exit codes (pinned by tests/tools/cli_exit_codes.cmake):
//   0  success;
//   1  generic error (bad input files, runtime failure, config-hash
//      mismatch on --resume);
//   2  usage error (unknown flag, missing argument, bad flag value);
//   3  query error: --query names a predicate unknown to the program and
//      facts, the goal is malformed, or the arity does not match;
//   4  deadline exceeded (--deadline-ms expired before completion);
//   5  cancelled (a watchdog-detected stall, or SIGINT/SIGTERM: both
//      signals trip the run's cancellation token, so an interrupted run
//      unwinds cleanly — with --checkpoint-dir every committed round
//      stays resumable);
//   6  corrupt checkpoint (DataLoss: the checkpoint failed its integrity
//      checks and --resume refused to trust it);
//   7  resource exhausted (--max-bytes hard watermark, max_rounds /
//      max_facts guard rails) — with --checkpoint-dir the committed
//      checkpoint resumes on a bigger box.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include <optional>

#include "apps/application.h"
#include "common/deadline.h"
#include "common/fs.h"
#include "common/memory.h"
#include "common/watchdog.h"
#include "core/termination.h"
#include "explain/report.h"
#include "datalog/parser.h"
#include "io/csv.h"
#include "io/glossary_csv.h"
#include "io/json.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/rule_profile.h"
#include "obs/trace.h"

namespace {

using namespace templex;

int Usage() {
  std::fprintf(
      stderr,
      "usage: templex_cli --program FILE --facts FILE [--facts FILE]...\n"
      "                   [--glossary FILE] [--query FACT] [--explain FACT]...\n"
      "                   [--anonymize] [--report FILE] [--interactive]\n"
      "                   [--templates] [--dump-json FILE]\n"
      "                   [--metrics-json FILE] [--metrics-prom FILE]\n"
      "                   [--trace-out FILE] [--profile] [--rule-profile]\n"
      "                   [--rule-profile-top K]\n"
      "                   [--event-log FILE] [--crash-report FILE]\n"
      "                   [--threads N] [--join-mode merge|probe]\n"
      "                   [--eval-mode auto|materialize|qsqr]\n"
      "                   [--deadline-ms N]\n"
      "                   [--checkpoint-dir DIR] "
      "[--checkpoint-every-rounds N]\n"
      "                   [--resume] [--max-bytes N] [--stall-timeout-ms N]\n"
      "exit codes: 0 ok, 1 error, 2 usage, 3 bad query goal,\n"
      "            4 deadline exceeded,\n"
      "            5 cancelled (incl. watchdog stall), 6 corrupt "
      "checkpoint,\n"
      "            7 resource exhausted (--max-bytes; resumable with "
      "--resume)\n");
  return 2;
}

// Maps a failed Status to the documented exit-code convention (see the
// header comment; pinned by tests/tools/cli_exit_codes.cmake).
int ExitCodeFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
      return 4;
    case StatusCode::kCancelled:
      return 5;
    case StatusCode::kDataLoss:
      return 6;
    case StatusCode::kResourceExhausted:
      return 7;
    default:
      return 1;
  }
}

// Termination signals cancel the run instead of killing the process: the
// token's Cancel() is a relaxed atomic store, so it is async-signal-safe,
// and the normal kCancelled unwind (exit 5, crash report, committed
// checkpoints intact) does the rest.
const CancellationToken* g_signal_cancel = nullptr;

extern "C" void HandleTerminationSignal(int) {
  if (g_signal_cancel != nullptr) g_signal_cancel->Cancel();
}

// Parses a query pattern: like a fact literal, but `_` is a wildcard.
Result<Fact> ParsePattern(const std::string& text) {
  Result<Fact> fact = ParseFactLiteral(text);
  if (!fact.ok()) return fact;
  Fact pattern = std::move(fact).value();
  for (Value& arg : pattern.args) {
    if (arg.is_string() && arg.string_value() == "_") arg = Value::Null();
  }
  return pattern;
}

}  // namespace

int main(int argc, char** argv) {
  std::string program_path;
  std::vector<std::string> fact_paths;
  std::string glossary_path;
  std::string query_text;
  std::vector<std::string> explain_texts;
  std::string explain_all_text;
  std::vector<std::string> whatif_texts;
  std::string json_path;
  std::string report_path;
  std::string metrics_path;
  std::string metrics_prom_path;
  std::string trace_path;
  std::string event_log_path;
  std::string crash_report_path;
  bool anonymize = false;
  bool print_templates = false;
  bool interactive = false;
  bool profile = false;
  bool rule_profile = false;
  long rule_profile_top = 20;
  int num_threads = 1;
  JoinMode join_mode = JoinMode::kMerge;
  EvalMode eval_mode = EvalMode::kAuto;
  long deadline_ms = -1;  // < 0: no deadline
  std::string checkpoint_dir;
  long checkpoint_every_rounds = 1;
  bool resume = false;
  long long max_bytes = 0;      // 0: no memory budget
  long stall_timeout_ms = 0;    // 0: no watchdog
  long chaos_stall_ms = 0;      // tests/CI only
  long chaos_stall_round = 2;

  // Normalize "--flag=value" into "--flag" "value" so both forms parse.
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
      args.push_back(arg.substr(0, eq));
      args.push_back(arg.substr(eq + 1));
    } else {
      args.push_back(arg);
    }
  }

  for (size_t i = 0; i < args.size(); ++i) {
    auto next = [&](const char* flag) -> const std::string& {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "%s requires an argument\n", flag);
        std::exit(2);
      }
      return args[++i];
    };
    const std::string& arg = args[i];
    if (arg == "--program") {
      program_path = next("--program");
    } else if (arg == "--facts") {
      fact_paths.push_back(next("--facts"));
    } else if (arg == "--glossary") {
      glossary_path = next("--glossary");
    } else if (arg == "--query") {
      query_text = next("--query");
    } else if (arg == "--explain") {
      explain_texts.push_back(next("--explain"));
    } else if (arg == "--explain-all") {
      explain_all_text = next("--explain-all");
    } else if (arg == "--what-if") {
      whatif_texts.push_back(next("--what-if"));
    } else if (arg == "--report") {
      report_path = next("--report");
    } else if (arg == "--interactive") {
      interactive = true;
    } else if (arg == "--dump-json") {
      json_path = next("--dump-json");
    } else if (arg == "--metrics-json") {
      metrics_path = next("--metrics-json");
    } else if (arg == "--metrics-prom") {
      metrics_prom_path = next("--metrics-prom");
    } else if (arg == "--trace-out") {
      trace_path = next("--trace-out");
    } else if (arg == "--event-log") {
      event_log_path = next("--event-log");
    } else if (arg == "--crash-report") {
      crash_report_path = next("--crash-report");
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--rule-profile") {
      rule_profile = true;
    } else if (arg == "--rule-profile-top") {
      const std::string& value = next("--rule-profile-top");
      char* end = nullptr;
      const long parsed = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || parsed < 0) {
        std::fprintf(
            stderr, "--rule-profile-top expects a non-negative integer\n");
        return Usage();
      }
      rule_profile_top = parsed;
    } else if (arg == "--threads") {
      const std::string& value = next("--threads");
      char* end = nullptr;
      const long parsed = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || parsed < 0) {
        std::fprintf(stderr, "--threads expects a non-negative integer\n");
        return Usage();
      }
      num_threads = static_cast<int>(parsed);
    } else if (arg == "--join-mode") {
      const std::string& value = next("--join-mode");
      if (value == "merge") {
        join_mode = JoinMode::kMerge;
      } else if (value == "probe") {
        join_mode = JoinMode::kProbe;
      } else {
        std::fprintf(stderr, "--join-mode expects 'merge' or 'probe'\n");
        return Usage();
      }
    } else if (arg == "--eval-mode") {
      const std::string& value = next("--eval-mode");
      Result<EvalMode> parsed = ParseEvalMode(value);
      if (!parsed.ok()) {
        std::fprintf(stderr,
                     "--eval-mode expects 'auto', 'materialize', or 'qsqr'\n");
        return Usage();
      }
      eval_mode = parsed.value();
    } else if (arg == "--deadline-ms") {
      const std::string& value = next("--deadline-ms");
      char* end = nullptr;
      const long parsed = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || parsed <= 0) {
        std::fprintf(stderr, "--deadline-ms expects a positive integer\n");
        return Usage();
      }
      deadline_ms = parsed;
    } else if (arg == "--checkpoint-dir") {
      checkpoint_dir = next("--checkpoint-dir");
    } else if (arg == "--checkpoint-every-rounds") {
      const std::string& value = next("--checkpoint-every-rounds");
      char* end = nullptr;
      const long parsed = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || parsed <= 0) {
        std::fprintf(
            stderr, "--checkpoint-every-rounds expects a positive integer\n");
        return Usage();
      }
      checkpoint_every_rounds = parsed;
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--max-bytes") {
      const std::string& value = next("--max-bytes");
      char* end = nullptr;
      const long long parsed = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || parsed <= 0) {
        std::fprintf(stderr, "--max-bytes expects a positive integer\n");
        return Usage();
      }
      max_bytes = parsed;
    } else if (arg == "--stall-timeout-ms") {
      const std::string& value = next("--stall-timeout-ms");
      char* end = nullptr;
      const long parsed = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || parsed <= 0) {
        std::fprintf(stderr,
                     "--stall-timeout-ms expects a positive integer\n");
        return Usage();
      }
      stall_timeout_ms = parsed;
    } else if (arg == "--chaos-stall-ms") {
      const std::string& value = next("--chaos-stall-ms");
      char* end = nullptr;
      const long parsed = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || parsed < 0) {
        std::fprintf(stderr,
                     "--chaos-stall-ms expects a non-negative integer\n");
        return Usage();
      }
      chaos_stall_ms = parsed;
    } else if (arg == "--chaos-stall-round") {
      const std::string& value = next("--chaos-stall-round");
      char* end = nullptr;
      const long parsed = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || parsed <= 0) {
        std::fprintf(stderr,
                     "--chaos-stall-round expects a positive integer\n");
        return Usage();
      }
      chaos_stall_round = parsed;
    } else if (arg == "--anonymize") {
      anonymize = true;
    } else if (arg == "--templates") {
      print_templates = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage();
    }
  }
  if (program_path.empty() || fact_paths.empty()) return Usage();
  if (resume && checkpoint_dir.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint-dir\n");
    return Usage();
  }

  // One registry + tracer for the whole invocation (pipeline build, chase,
  // and every explanation query) when any observability output is asked
  // for; otherwise the instrumented paths stay on their null branches.
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  const bool observe = !metrics_path.empty() || !metrics_prom_path.empty() ||
                       !trace_path.empty() || profile || rule_profile;

  // The flight recorder: always-on ring buffers once asked for, streamed
  // to --event-log if given, dumped to --crash-report on failure.
  std::optional<obs::EventLog> event_log;
  if (!event_log_path.empty() || !crash_report_path.empty()) {
    obs::EventLogOptions log_options;
    log_options.fs = RealFilesystem();
    log_options.sink_path = event_log_path;
    log_options.crash_report_path = crash_report_path;
    if (observe) log_options.metrics = &registry;
    event_log.emplace(log_options);
  }

  auto die = [&event_log](const Status& status) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    // Failure paths outside the chase (input loading, explanation queries)
    // still leave a post-mortem; chase failures have already dumped, and
    // re-dumping here just refreshes the report with the same ring.
    if (event_log.has_value() &&
        !event_log->options().crash_report_path.empty()) {
      Status dumped = event_log->DumpNow("cli: " + status.ToString());
      (void)dumped;  // the run's own error wins
    }
    std::exit(ExitCodeFor(status));
  };

  // One budget for the whole invocation: the clock starts here, before the
  // pipeline build, so parsing + chase + explanation all share it.
  const Deadline deadline = deadline_ms > 0
                                ? Deadline::AfterMillis(deadline_ms)
                                : Deadline::Infinite();

  Result<std::string> source = ReadFileToString(program_path);
  if (!source.ok()) die(source.status());
  Result<Program> program = ParseProgram(source.value());
  if (!program.ok()) die(program.status());
  Result<TerminationAnalysis> termination =
      AnalyzeTermination(program.value());
  if (termination.ok() &&
      termination.value().verdict == TerminationVerdict::kDataDependent) {
    std::fprintf(stderr, "warning: %s\n",
                 termination.value().ToString().c_str());
  }

  DomainGlossary glossary;
  bool have_glossary = !glossary_path.empty();
  if (have_glossary) {
    Result<DomainGlossary> loaded = LoadGlossaryCsv(glossary_path);
    if (!loaded.ok()) die(loaded.status());
    glossary = std::move(loaded).value();
  } else {
    // Minimal fallback so the pipeline can build: each predicate
    // verbalizes as itself (shared with templex_serve).
    glossary = MinimalFallbackGlossary(program.value());
  }

  ExplainerOptions explainer_options;
  explainer_options.deadline = deadline;
  if (observe) {
    explainer_options.metrics = &registry;
    explainer_options.tracer = &tracer;
  }
  if (event_log.has_value()) explainer_options.event_log = &*event_log;
  auto app = KnowledgeGraphApplication::Create(std::move(program).value(),
                                               std::move(glossary),
                                               explainer_options);
  if (!app.ok()) die(app.status());

  for (const std::string& path : fact_paths) {
    Result<std::vector<Fact>> facts = LoadFactsCsv(path);
    if (!facts.ok()) die(facts.status());
    app.value()->AddFacts(std::move(facts).value());
  }
  // Resolve and validate the query goal before any chase work: a bad
  // goal must fail fast with the documented exit code 3 in every
  // evaluation mode.
  std::optional<Fact> query_pattern;
  if (!query_text.empty()) {
    Result<Fact> pattern = ParsePattern(query_text);
    if (!pattern.ok()) {
      std::fprintf(stderr, "error: malformed query goal: %s\n",
                   pattern.status().ToString().c_str());
      return 3;
    }
    Status valid = ValidateGoalPattern(app.value()->explainer().program(),
                                       app.value()->facts(), pattern.value());
    if (!valid.ok()) {
      std::fprintf(stderr, "error: %s\n", valid.ToString().c_str());
      return 3;
    }
    query_pattern = std::move(pattern).value();
  }

  ChaseConfig chase_config;
  // SIGINT/SIGTERM trip the run's cancellation token: the chase unwinds
  // cooperatively at the next interruption point — every committed
  // checkpoint round stays resumable with --checkpoint-dir — and the
  // process exits with the documented cancellation code 5.
  g_signal_cancel = &chase_config.cancel;
  {
    struct sigaction action = {};
    action.sa_handler = HandleTerminationSignal;
    sigemptyset(&action.sa_mask);
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);
  }
  chase_config.num_threads = num_threads;
  chase_config.join_mode = join_mode;
  chase_config.deadline = deadline;
  chase_config.checkpoint.dir = checkpoint_dir;
  chase_config.checkpoint.every_rounds = checkpoint_every_rounds;
  chase_config.checkpoint.resume = resume;
  chase_config.chaos_stall_ms = chaos_stall_ms;
  chase_config.chaos_stall_round = chaos_stall_round;
  if (observe) {
    chase_config.metrics = &registry;
    chase_config.tracer = &tracer;
  }
  if (event_log.has_value()) chase_config.event_log = &*event_log;

  // Resource governor: --max-bytes is the hard (save-and-stop) watermark;
  // the soft (degrade) watermark sits at 3/4 of it. Budget and watchdog
  // are execution-environment knobs — outside the checkpoint config hash,
  // so a save-and-stopped run resumes without them.
  std::optional<MemoryBudget> budget;
  if (max_bytes > 0) {
    MemoryBudget::Options budget_options;
    budget_options.hard_limit_bytes = max_bytes;
    budget_options.soft_limit_bytes = max_bytes / 4 * 3;
    budget.emplace(budget_options);
    chase_config.budget = &*budget;
  }

  // Stall watchdog: shares chase_config.cancel, so a detected stall
  // unwinds the run with kCancelled (exit 5) at the next interruption
  // point; the crash report and the watchdog.stall event name the
  // in-flight rule/stratum/round.
  std::optional<StallWatchdog> watchdog;
  if (stall_timeout_ms > 0) {
    StallWatchdog::Options wd_options;
    wd_options.stall_timeout_ms = stall_timeout_ms;
    wd_options.cancel = chase_config.cancel;
    wd_options.on_stall = [&event_log, &registry,
                           observe](const StallWatchdog::StallReport& report) {
      std::fprintf(stderr,
                   "watchdog: no matcher progress for %lld ms "
                   "(rule '%s', stratum %d, round %lld) — cancelling\n",
                   static_cast<long long>(report.stalled_for_ms),
                   report.rule.c_str(), report.stratum,
                   static_cast<long long>(report.round));
      if (observe) registry.counter("chase.watchdog.stalls")->Increment();
      if (event_log.has_value()) {
        event_log->Log(
            obs::EventLevel::kError, "chase", "watchdog.stall",
            {{"rule", report.rule},
             {"stratum", std::to_string(report.stratum)},
             {"round", std::to_string(report.round)},
             {"stalled_for_ms", std::to_string(report.stalled_for_ms)},
             {"stall_timeout_ms", std::to_string(report.stall_timeout_ms)},
             {"heartbeats", std::to_string(report.heartbeats)}});
        if (!event_log->options().crash_report_path.empty()) {
          Status dumped = event_log->DumpNow("watchdog: stalled round");
          (void)dumped;  // the cancellation is the signal; dump best effort
        }
      }
    };
    watchdog.emplace(std::move(wd_options));
    chase_config.watchdog = &*watchdog;
    watchdog->Start();
  }

  // Flags that read beyond the query cone need the whole instance; with
  // them present the query is answered off a classic full run.
  const bool needs_full_chase =
      !whatif_texts.empty() || interactive || !json_path.empty() ||
      !report_path.empty() || !explain_all_text.empty() ||
      !checkpoint_dir.empty();
  std::optional<KnowledgeGraphApplication::QueryExecution> query_execution;
  Status run = Status::OK();
  if (query_pattern.has_value() && !needs_full_chase) {
    auto execution =
        app.value()->RunForQuery(*query_pattern, chase_config, eval_mode);
    if (execution.ok()) {
      query_execution = std::move(execution).value();
    } else {
      run = execution.status();
    }
  } else {
    run = app.value()->Run(chase_config);
  }
  // Stop the monitor before anything else: explanation queries and report
  // building do not heartbeat, and a late stall trip would cancel them.
  if (watchdog.has_value()) watchdog->Stop();
  if (!run.ok()) die(run);
  if (query_execution.has_value()) {
    // Plan and strategy go to stderr so stdout stays the stable
    // answer/explanation stream.
    std::fprintf(stderr, "query plan: %s — %s\n",
                 query_execution->stats.query_driven ? "qsqr" : "materialize",
                 query_execution->stats.query_driven
                     ? query_execution->plan.reason.c_str()
                     : (query_execution->stats.fallback_reason.empty()
                            ? query_execution->plan.reason.c_str()
                            : query_execution->stats.fallback_reason.c_str()));
  }

  const ChaseResult& chase = app.value()->chase();
  std::printf("facts: %d total (%lld derived) in %lld rounds\n",
              chase.graph.size(),
              static_cast<long long>(chase.stats.derived_facts),
              static_cast<long long>(chase.stats.rounds));
  for (const ConstraintViolation& violation : app.value()->violations()) {
    std::printf("violation: %s\n", violation.ToString().c_str());
  }

  if (print_templates) {
    for (const ExplanationTemplate& tmpl :
         app.value()->explainer().templates()) {
      std::printf("[%s] %s\n  %s\n", tmpl.name.c_str(),
                  tmpl.path.ToString().c_str(), tmpl.EffectiveText().c_str());
    }
  }

  if (query_pattern.has_value()) {
    for (const Fact& fact : app.value()->Query(*query_pattern)) {
      std::printf("%s\n", fact.ToString().c_str());
    }
  }

  for (const std::string& explain_text : explain_texts) {
    Result<Fact> goal = ParseFactLiteral(explain_text);
    if (!goal.ok()) die(goal.status());
    if (anonymize) {
      Result<AnonymizedText> text =
          app.value()->ExplainAnonymized(goal.value());
      if (!text.ok()) die(text.status());
      std::printf("%s\n", text.value().text.c_str());
    } else {
      Result<std::string> text = app.value()->Explain(goal.value());
      if (!text.ok()) die(text.status());
      std::printf("%s\n", text.value().c_str());
    }
  }

  if (!whatif_texts.empty()) {
    std::vector<Fact> hypothetical;
    for (const std::string& text : whatif_texts) {
      Result<Fact> fact = ParseFactLiteral(text);
      if (!fact.ok()) die(fact.status());
      hypothetical.push_back(std::move(fact).value());
    }
    auto scenario = app.value()->WhatIf(hypothetical);
    if (!scenario.ok()) die(scenario.status());
    std::printf("what-if: %zu new derived facts\n",
                scenario.value().new_facts.size());
    for (const Fact& fact : scenario.value().new_facts) {
      std::printf("  %s\n", fact.ToString().c_str());
    }
  }

  if (!explain_all_text.empty()) {
    Result<Fact> goal = ParseFactLiteral(explain_all_text);
    if (!goal.ok()) die(goal.status());
    Result<std::vector<std::string>> stories =
        app.value()->explainer().ExplainAllDerivations(app.value()->chase(),
                                                       goal.value());
    if (!stories.ok()) die(stories.status());
    for (size_t i = 0; i < stories.value().size(); ++i) {
      std::printf("[story %zu/%zu] %s\n", i + 1, stories.value().size(),
                  stories.value()[i].c_str());
    }
  }

  if (!report_path.empty()) {
    ReportBuilder builder(&app.value()->explainer(), &app.value()->chase());
    builder.Title("Reasoning report for " + program_path);
    for (const std::string& explain_text : explain_texts) {
      Result<Fact> goal = ParseFactLiteral(explain_text);
      if (!goal.ok()) die(goal.status());
      builder.AddExplanation(goal.value());
    }
    builder.AddViolationsAppendix();
    if (observe) builder.AddMetricsAppendix(registry.Snapshot());
    Result<std::string> report = builder.Build();
    if (!report.ok()) die(report.status());
    Status written =
        WriteFileAtomically(RealFilesystem(), report_path, report.value());
    if (!written.ok()) die(written);
    std::printf("report written to %s\n", report_path.c_str());
  }

  if (interactive) {
    std::printf(
        "interactive mode: '? Pattern(...)' queries (use _ as wildcard), a "
        "fact literal explains it, empty line exits\n");
    std::string line;
    while (std::printf("> "), std::fflush(stdout),
           std::getline(std::cin, line)) {
      if (line.empty()) break;
      if (line[0] == '?') {
        Result<Fact> pattern = ParsePattern(line.substr(1));
        if (!pattern.ok()) {
          std::printf("error: %s\n", pattern.status().ToString().c_str());
          continue;
        }
        for (const Fact& fact : app.value()->Query(pattern.value())) {
          std::printf("%s\n", fact.ToString().c_str());
        }
        continue;
      }
      Result<Fact> goal = ParseFactLiteral(line);
      if (!goal.ok()) {
        std::printf("error: %s\n", goal.status().ToString().c_str());
        continue;
      }
      Result<std::string> text = app.value()->Explain(goal.value());
      if (!text.ok()) {
        std::printf("error: %s\n", text.status().ToString().c_str());
        continue;
      }
      std::printf("%s\n", text.value().c_str());
    }
  }

  if (!json_path.empty()) {
    Result<std::string> json = app.value()->ExportChaseJson();
    if (!json.ok()) die(json.status());
    Status written =
        WriteFileAtomically(RealFilesystem(), json_path, json.value());
    if (!written.ok()) die(written);
    std::printf("chase graph written to %s\n", json_path.c_str());
  }

  // Observability outputs last, so the snapshot covers the whole
  // invocation (pipeline build, chase, queries, reports).
  if (!metrics_path.empty()) {
    Status written =
        WriteFileAtomically(RealFilesystem(), metrics_path,
                            MetricsSnapshotToJson(registry.Snapshot()) + "\n");
    if (!written.ok()) die(written);
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  if (!metrics_prom_path.empty()) {
    Status written =
        WriteFileAtomically(RealFilesystem(), metrics_prom_path,
                            MetricsSnapshotToPrometheusText(
                                registry.Snapshot()));
    if (!written.ok()) die(written);
    std::printf("prometheus metrics written to %s\n",
                metrics_prom_path.c_str());
  }
  if (!trace_path.empty()) {
    Status written =
        WriteFileAtomically(RealFilesystem(), trace_path,
                            TraceEventsToJson(tracer.events()) + "\n");
    if (!written.ok()) die(written);
    std::printf("trace written to %s (load in chrome://tracing)\n",
                trace_path.c_str());
  }
  if (profile) {
    std::fprintf(stderr, "%s", ProfileTable(registry.Snapshot()).c_str());
  }
  if (rule_profile) {
    std::fprintf(stderr, "%s",
                 obs::RuleProfileTable(
                     app.value()->chase().rule_profiles,
                     static_cast<size_t>(rule_profile_top),
                     /*include_seconds=*/false)
                     .c_str());
  }
  return 0;
}
