// templex_cli — run a Vadalog-subset KG application from the command line.
//
//   templex_cli --program rules.vada --facts data.csv
//               [--glossary glossary.csv] [--query 'Control(A, C)']
//               [--explain 'Control(A, C)']... [--anonymize]
//               [--report out.md] [--interactive]
//               [--dump-json chase.json] [--templates]
//
// --program    rule file (see src/datalog/parser.h for the syntax);
// --facts      CSV facts (see src/io/csv.h); repeatable;
// --glossary   CSV with lines `predicate,"pattern",token:style,...` — one
//              token:style pair per predicate argument, in argument order
//              (styles: plain|millions|percent). Without it, a minimal
//              fallback glossary is generated from the rules.
// --query      prints all facts matching a pattern (use _ as wildcard);
// --explain    prints the textual explanation of a derived fact
//              (repeatable);
// --explain-all prints every recorded reasoning story for the fact;
// --anonymize  pseudonymizes the explanation output;
// --report     writes a markdown business report covering every --explain
//              plus the data-quality appendix;
// --what-if    adds hypothetical facts (repeatable), reasons over
//              baseline+hypothesis without mutating it, and prints the
//              newly derived facts;
// --interactive reads further query/explain lines from stdin
//              ("? Control(A, _)" queries, any fact literal explains);
// --templates  prints the explanation-template catalog;
// --dump-json  writes the chase graph as JSON.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "apps/application.h"
#include "core/termination.h"
#include "explain/report.h"
#include "datalog/parser.h"
#include "io/csv.h"
#include "io/glossary_csv.h"

namespace {

using namespace templex;

int Usage() {
  std::fprintf(
      stderr,
      "usage: templex_cli --program FILE --facts FILE [--facts FILE]...\n"
      "                   [--glossary FILE] [--query FACT] [--explain FACT]...\n"
      "                   [--anonymize] [--report FILE] [--interactive]\n"
      "                   [--templates] [--dump-json FILE]\n");
  return 2;
}

// Parses a query pattern: like a fact literal, but `_` is a wildcard.
Result<Fact> ParsePattern(const std::string& text) {
  Result<Fact> fact = ParseFactLiteral(text);
  if (!fact.ok()) return fact;
  Fact pattern = std::move(fact).value();
  for (Value& arg : pattern.args) {
    if (arg.is_string() && arg.string_value() == "_") arg = Value::Null();
  }
  return pattern;
}

}  // namespace

int main(int argc, char** argv) {
  std::string program_path;
  std::vector<std::string> fact_paths;
  std::string glossary_path;
  std::string query_text;
  std::vector<std::string> explain_texts;
  std::string explain_all_text;
  std::vector<std::string> whatif_texts;
  std::string json_path;
  std::string report_path;
  bool anonymize = false;
  bool print_templates = false;
  bool interactive = false;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--program")) {
      program_path = next("--program");
    } else if (!std::strcmp(argv[i], "--facts")) {
      fact_paths.push_back(next("--facts"));
    } else if (!std::strcmp(argv[i], "--glossary")) {
      glossary_path = next("--glossary");
    } else if (!std::strcmp(argv[i], "--query")) {
      query_text = next("--query");
    } else if (!std::strcmp(argv[i], "--explain")) {
      explain_texts.push_back(next("--explain"));
    } else if (!std::strcmp(argv[i], "--explain-all")) {
      explain_all_text = next("--explain-all");
    } else if (!std::strcmp(argv[i], "--what-if")) {
      whatif_texts.push_back(next("--what-if"));
    } else if (!std::strcmp(argv[i], "--report")) {
      report_path = next("--report");
    } else if (!std::strcmp(argv[i], "--interactive")) {
      interactive = true;
    } else if (!std::strcmp(argv[i], "--dump-json")) {
      json_path = next("--dump-json");
    } else if (!std::strcmp(argv[i], "--anonymize")) {
      anonymize = true;
    } else if (!std::strcmp(argv[i], "--templates")) {
      print_templates = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return Usage();
    }
  }
  if (program_path.empty() || fact_paths.empty()) return Usage();

  auto die = [](const Status& status) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  };

  Result<std::string> source = ReadFileToString(program_path);
  if (!source.ok()) die(source.status());
  Result<Program> program = ParseProgram(source.value());
  if (!program.ok()) die(program.status());
  Result<TerminationAnalysis> termination =
      AnalyzeTermination(program.value());
  if (termination.ok() &&
      termination.value().verdict == TerminationVerdict::kDataDependent) {
    std::fprintf(stderr, "warning: %s\n",
                 termination.value().ToString().c_str());
  }

  DomainGlossary glossary;
  bool have_glossary = !glossary_path.empty();
  if (have_glossary) {
    Result<DomainGlossary> loaded = LoadGlossaryCsv(glossary_path);
    if (!loaded.ok()) die(loaded.status());
    glossary = std::move(loaded).value();
  } else {
    // Minimal fallback glossary so the pipeline can build: each predicate
    // verbalizes as itself ("Own of <a1>, <a2>, <a3> holds").
    std::map<std::string, int> arities;
    for (const Rule& rule : program.value().rules()) {
      for (const Atom& atom : rule.body) {
        arities[atom.predicate] = atom.arity();
      }
      for (const Atom& atom : rule.negative_body) {
        arities[atom.predicate] = atom.arity();
      }
      if (!rule.is_constraint) {
        arities[rule.head.predicate] = rule.head.arity();
      }
    }
    for (const auto& [predicate, arity] : arities) {
      GlossaryEntry entry;
      entry.pattern = predicate + " holds for";
      for (int a = 0; a < arity; ++a) {
        const std::string token = "a" + std::to_string(a + 1);
        entry.pattern += (a ? ", <" : " <") + token + ">";
        entry.arg_tokens.push_back(token);
      }
      if (arity == 0) entry.pattern = predicate + " holds";
      Status status = glossary.Register(predicate, entry);
      if (!status.ok()) die(status);
    }
  }

  auto app = KnowledgeGraphApplication::Create(std::move(program).value(),
                                               std::move(glossary));
  if (!app.ok()) die(app.status());

  for (const std::string& path : fact_paths) {
    Result<std::vector<Fact>> facts = LoadFactsCsv(path);
    if (!facts.ok()) die(facts.status());
    app.value()->AddFacts(std::move(facts).value());
  }
  Status run = app.value()->Run();
  if (!run.ok()) die(run);

  const ChaseResult& chase = app.value()->chase();
  std::printf("facts: %d total (%d derived) in %d rounds\n",
              chase.graph.size(), chase.stats.derived_facts,
              chase.stats.rounds);
  for (const ConstraintViolation& violation : app.value()->violations()) {
    std::printf("violation: %s\n", violation.ToString().c_str());
  }

  if (print_templates) {
    for (const ExplanationTemplate& tmpl :
         app.value()->explainer().templates()) {
      std::printf("[%s] %s\n  %s\n", tmpl.name.c_str(),
                  tmpl.path.ToString().c_str(), tmpl.EffectiveText().c_str());
    }
  }

  if (!query_text.empty()) {
    Result<Fact> pattern = ParsePattern(query_text);
    if (!pattern.ok()) die(pattern.status());
    for (const Fact& fact : app.value()->Query(pattern.value())) {
      std::printf("%s\n", fact.ToString().c_str());
    }
  }

  for (const std::string& explain_text : explain_texts) {
    Result<Fact> goal = ParseFactLiteral(explain_text);
    if (!goal.ok()) die(goal.status());
    if (anonymize) {
      Result<AnonymizedText> text =
          app.value()->ExplainAnonymized(goal.value());
      if (!text.ok()) die(text.status());
      std::printf("%s\n", text.value().text.c_str());
    } else {
      Result<std::string> text = app.value()->Explain(goal.value());
      if (!text.ok()) die(text.status());
      std::printf("%s\n", text.value().c_str());
    }
  }

  if (!whatif_texts.empty()) {
    std::vector<Fact> hypothetical;
    for (const std::string& text : whatif_texts) {
      Result<Fact> fact = ParseFactLiteral(text);
      if (!fact.ok()) die(fact.status());
      hypothetical.push_back(std::move(fact).value());
    }
    auto scenario = app.value()->WhatIf(hypothetical);
    if (!scenario.ok()) die(scenario.status());
    std::printf("what-if: %zu new derived facts\n",
                scenario.value().new_facts.size());
    for (const Fact& fact : scenario.value().new_facts) {
      std::printf("  %s\n", fact.ToString().c_str());
    }
  }

  if (!explain_all_text.empty()) {
    Result<Fact> goal = ParseFactLiteral(explain_all_text);
    if (!goal.ok()) die(goal.status());
    Result<std::vector<std::string>> stories =
        app.value()->explainer().ExplainAllDerivations(app.value()->chase(),
                                                       goal.value());
    if (!stories.ok()) die(stories.status());
    for (size_t i = 0; i < stories.value().size(); ++i) {
      std::printf("[story %zu/%zu] %s\n", i + 1, stories.value().size(),
                  stories.value()[i].c_str());
    }
  }

  if (!report_path.empty()) {
    ReportBuilder builder(&app.value()->explainer(), &app.value()->chase());
    builder.Title("Reasoning report for " + program_path);
    for (const std::string& explain_text : explain_texts) {
      Result<Fact> goal = ParseFactLiteral(explain_text);
      if (!goal.ok()) die(goal.status());
      builder.AddExplanation(goal.value());
    }
    builder.AddViolationsAppendix();
    Result<std::string> report = builder.Build();
    if (!report.ok()) die(report.status());
    std::ofstream out(report_path, std::ios::binary | std::ios::trunc);
    out << report.value();
    if (!out) die(Status::Internal("cannot write " + report_path));
    std::printf("report written to %s\n", report_path.c_str());
  }

  if (interactive) {
    std::printf(
        "interactive mode: '? Pattern(...)' queries (use _ as wildcard), a "
        "fact literal explains it, empty line exits\n");
    std::string line;
    while (std::printf("> "), std::fflush(stdout),
           std::getline(std::cin, line)) {
      if (line.empty()) break;
      if (line[0] == '?') {
        Result<Fact> pattern = ParsePattern(line.substr(1));
        if (!pattern.ok()) {
          std::printf("error: %s\n", pattern.status().ToString().c_str());
          continue;
        }
        for (const Fact& fact : app.value()->Query(pattern.value())) {
          std::printf("%s\n", fact.ToString().c_str());
        }
        continue;
      }
      Result<Fact> goal = ParseFactLiteral(line);
      if (!goal.ok()) {
        std::printf("error: %s\n", goal.status().ToString().c_str());
        continue;
      }
      Result<std::string> text = app.value()->Explain(goal.value());
      if (!text.ok()) {
        std::printf("error: %s\n", text.status().ToString().c_str());
        continue;
      }
      std::printf("%s\n", text.value().c_str());
    }
  }

  if (!json_path.empty()) {
    Result<std::string> json = app.value()->ExportChaseJson();
    if (!json.ok()) die(json.status());
    std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
    out << json.value();
    if (!out) die(Status::Internal("cannot write " + json_path));
    std::printf("chase graph written to %s\n", json_path.c_str());
  }
  return 0;
}
