// templex_serve — the long-lived, multi-tenant reasoning daemon
// (DESIGN.md §13; docs/API.md is the endpoint contract).
//
//   templex_serve --program rules.vada [--facts data.csv]...
//                 [--glossary glossary.csv]
//                 [--port N] [--port-file FILE]
//                 [--workers N] [--threads N]
//                 [--max-inflight N] [--admit-max N] [--tenant-max N]
//                 [--read-deadline-ms N] [--request-deadline-ms N]
//                 [--max-request-deadline-ms N] [--drain-deadline-ms N]
//                 [--checkpoint-dir DIR] [--resume] [--max-bytes N]
//                 [--event-log FILE] [--crash-report FILE]
//
// Every flag also accepts the --flag=value form.
//
// The daemon binds first and reasons second: the HTTP listener is up
// before the startup chase begins, so /healthz answers immediately and
// /readyz reports the warm-up position (rounds/facts so far) until the
// first snapshot epoch is published. From then on queries and
// explanations are served from immutable epoch-published snapshots —
// a POST /reload rebuilds from the same input files and publishes the
// next epoch without ever blocking readers.
//
// --port         listen port on 127.0.0.1 (default 0 = pick a free port);
// --port-file    write the bound port to FILE atomically (tmp + rename),
//                so scripts using --port 0 can find the daemon;
// --workers      request worker threads (default 4);
// --threads      chase match threads for warm-up and reloads (default 1);
// --max-inflight accept-side connection cap — beyond it connections are
//                shed 503 + Retry-After straight from the accept thread;
// --admit-max    admitted work requests in flight (default 8);
// --tenant-max   admitted work requests per tenant (X-Tenant header;
//                default 4) — the noisy-neighbor wall, shed 429;
// --read-deadline-ms     reading one full request (slow-loris guard, 408);
// --request-deadline-ms  default per-request execution budget (clients
//                override with X-Deadline-Ms, clamped to
//                --max-request-deadline-ms);
// --drain-deadline-ms    how long a drain lets in-flight work finish
//                before cancelling it (default 5000);
// --checkpoint-dir / --resume  crash-safe warm start: the startup chase
//                commits checkpoints at round boundaries and a final
//                commit at fixpoint; a restarted daemon with --resume
//                warm-starts from the committed state and serves
//                byte-identical answers. The daemon is read-only after
//                the chase, so the chase's final commit IS the shutdown
//                checkpoint — drain has nothing further to write;
// --max-bytes    memory budget: the value is the hard watermark for the
//                chase, and admission sheds work (503) whenever live
//                accounted bytes sit above the soft watermark (3/4);
// --event-log / --crash-report  flight recorder, as in templex_cli; the
//                crash report also fires when a drain deadline expires,
//                naming every still-in-flight request.
//
// SIGTERM and SIGINT start a graceful drain: stop accepting, let
// in-flight requests finish (bounded by --drain-deadline-ms), then exit.
// A signal during warm-up cancels the chase cooperatively; its committed
// checkpoint rounds stay resumable.
//
// Exit codes:
//   0  clean drain (including a signal during warm-up);
//   1  generic error (bad inputs, bind failure, chase failure);
//   2  usage error;
//   4  drain deadline exceeded — stragglers were cancelled and named in
//      the crash report;
//   6  corrupt checkpoint (--resume refused to trust it).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unistd.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/application.h"
#include "common/deadline.h"
#include "common/fs.h"
#include "common/memory.h"
#include "datalog/parser.h"
#include "engine/chase.h"
#include "explain/glossary.h"
#include "io/csv.h"
#include "io/glossary_csv.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "service/server.h"
#include "service/snapshot.h"
#include "service/transport.h"

namespace templex {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: templex_serve --program FILE [--facts FILE]...\n"
      "                     [--glossary FILE] [--port N] [--port-file FILE]\n"
      "                     [--workers N] [--threads N] [--max-inflight N]\n"
      "                     [--admit-max N] [--tenant-max N]\n"
      "                     [--read-deadline-ms N] [--request-deadline-ms N]\n"
      "                     [--max-request-deadline-ms N]\n"
      "                     [--drain-deadline-ms N]\n"
      "                     [--checkpoint-dir DIR] [--resume]\n"
      "                     [--max-bytes N]\n"
      "                     [--event-log FILE] [--crash-report FILE]\n"
      "exit codes: 0 clean drain, 1 error, 2 usage,\n"
      "            4 drain deadline exceeded, 6 corrupt checkpoint\n");
  return 2;
}

// The signal path: the handler may only do async-signal-safe work, so it
// trips the warm-up chase's cancellation token (a relaxed atomic store)
// and writes one byte into the self-pipe the main thread blocks on.
int g_signal_pipe[2] = {-1, -1};
const CancellationToken* g_signal_cancel = nullptr;

extern "C" void HandleTerminationSignal(int) {
  if (g_signal_cancel != nullptr) g_signal_cancel->Cancel();
  const char byte = 1;
  ssize_t written = write(g_signal_pipe[1], &byte, 1);
  (void)written;  // pipe full means a signal is already pending
}

struct ServeFlags {
  std::string program_path;
  std::vector<std::string> fact_paths;
  std::string glossary_path;
  int port = 0;
  std::string port_file;
  int workers = 4;
  int threads = 1;
  int max_inflight = 64;
  int admit_max = 8;
  int tenant_max = 4;
  int64_t read_deadline_ms = 5000;
  int64_t request_deadline_ms = 10000;
  int64_t max_request_deadline_ms = 60000;
  int64_t drain_deadline_ms = 5000;
  std::string checkpoint_dir;
  bool resume = false;
  int64_t max_bytes = 0;
  std::string event_log_path;
  std::string crash_report_path;
};

}  // namespace

int Serve(int argc, char** argv) {
  ServeFlags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    const size_t eq = arg.find('=');
    bool has_inline = false;
    if (arg.size() > 2 && arg[0] == '-' && eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_inline = true;
    }
    auto next = [&](const char* flag) -> std::string {
      if (has_inline) return value;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(Usage());
      }
      return argv[++i];
    };
    auto next_int = [&](const char* flag) -> int64_t {
      const std::string text = next(flag);
      try {
        size_t used = 0;
        const int64_t parsed = std::stoll(text, &used);
        if (used != text.size() || parsed < 0) throw std::exception();
        return parsed;
      } catch (...) {
        std::fprintf(stderr, "bad value for %s: '%s'\n", flag, text.c_str());
        std::exit(Usage());
      }
    };
    if (arg == "--program") {
      flags.program_path = next("--program");
    } else if (arg == "--facts") {
      flags.fact_paths.push_back(next("--facts"));
    } else if (arg == "--glossary") {
      flags.glossary_path = next("--glossary");
    } else if (arg == "--port") {
      flags.port = static_cast<int>(next_int("--port"));
    } else if (arg == "--port-file") {
      flags.port_file = next("--port-file");
    } else if (arg == "--workers") {
      flags.workers = static_cast<int>(next_int("--workers"));
    } else if (arg == "--threads") {
      flags.threads = static_cast<int>(next_int("--threads"));
    } else if (arg == "--max-inflight") {
      flags.max_inflight = static_cast<int>(next_int("--max-inflight"));
    } else if (arg == "--admit-max") {
      flags.admit_max = static_cast<int>(next_int("--admit-max"));
    } else if (arg == "--tenant-max") {
      flags.tenant_max = static_cast<int>(next_int("--tenant-max"));
    } else if (arg == "--read-deadline-ms") {
      flags.read_deadline_ms = next_int("--read-deadline-ms");
    } else if (arg == "--request-deadline-ms") {
      flags.request_deadline_ms = next_int("--request-deadline-ms");
    } else if (arg == "--max-request-deadline-ms") {
      flags.max_request_deadline_ms = next_int("--max-request-deadline-ms");
    } else if (arg == "--drain-deadline-ms") {
      flags.drain_deadline_ms = next_int("--drain-deadline-ms");
    } else if (arg == "--checkpoint-dir") {
      flags.checkpoint_dir = next("--checkpoint-dir");
    } else if (arg == "--resume") {
      flags.resume = true;
    } else if (arg == "--max-bytes") {
      flags.max_bytes = next_int("--max-bytes");
    } else if (arg == "--event-log") {
      flags.event_log_path = next("--event-log");
    } else if (arg == "--crash-report") {
      flags.crash_report_path = next("--crash-report");
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage();
    }
  }
  if (flags.program_path.empty()) {
    std::fprintf(stderr, "--program is required\n");
    return Usage();
  }
  if (flags.resume && flags.checkpoint_dir.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint-dir\n");
    return Usage();
  }
  if (flags.workers < 1) flags.workers = 1;

  obs::MetricsRegistry metrics;
  std::optional<obs::EventLog> event_log;
  if (!flags.event_log_path.empty() || !flags.crash_report_path.empty()) {
    obs::EventLogOptions log_options;
    log_options.fs = RealFilesystem();
    log_options.sink_path = flags.event_log_path;
    log_options.crash_report_path = flags.crash_report_path;
    log_options.metrics = &metrics;
    event_log.emplace(log_options);
  }

  auto die = [&event_log](const Status& status, int code) -> int {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    if (event_log.has_value() &&
        !event_log->options().crash_report_path.empty()) {
      Status dumped = event_log->DumpNow("serve: " + status.ToString());
      (void)dumped;  // the daemon's own error wins
    }
    return code;
  };

  std::optional<MemoryBudget> budget;
  if (flags.max_bytes > 0) {
    MemoryBudget::Options budget_options;
    budget_options.hard_limit_bytes = flags.max_bytes;
    budget_options.soft_limit_bytes = flags.max_bytes / 4 * 3;
    budget.emplace(budget_options);
  }

  // One warm start / reload = parse + load + chase. The warm-up run gets
  // the checkpoint config and the /readyz progress hook; reloads rebuild
  // fresh (their epoch replaces, never resumes).
  ChaseProgress progress;
  auto build = [&flags, &metrics, &event_log, &budget, &progress](
                   const Deadline& deadline, const CancellationToken& cancel,
                   bool startup)
      -> Result<std::shared_ptr<const KnowledgeGraphApplication>> {
    Result<std::string> source = ReadFileToString(flags.program_path);
    if (!source.ok()) return source.status();
    Result<Program> program = ParseProgram(source.value());
    if (!program.ok()) return program.status();

    DomainGlossary glossary;
    if (!flags.glossary_path.empty()) {
      Result<DomainGlossary> loaded = LoadGlossaryCsv(flags.glossary_path);
      if (!loaded.ok()) return loaded.status();
      glossary = std::move(loaded).value();
    } else {
      glossary = MinimalFallbackGlossary(program.value());
    }

    ExplainerOptions explainer_options;
    explainer_options.metrics = &metrics;
    if (event_log.has_value()) explainer_options.event_log = &*event_log;
    auto app = KnowledgeGraphApplication::Create(std::move(program).value(),
                                                 std::move(glossary),
                                                 explainer_options);
    if (!app.ok()) return app.status();
    for (const std::string& path : flags.fact_paths) {
      Result<std::vector<Fact>> facts = LoadFactsCsv(path);
      if (!facts.ok()) return facts.status();
      app.value()->AddFacts(std::move(facts).value());
    }

    ChaseConfig chase_config;
    chase_config.num_threads = flags.threads;
    chase_config.deadline = deadline;
    chase_config.cancel = cancel;
    chase_config.metrics = &metrics;
    if (event_log.has_value()) chase_config.event_log = &*event_log;
    if (budget.has_value()) chase_config.budget = &*budget;
    if (startup) {
      chase_config.progress = &progress;
      chase_config.checkpoint.dir = flags.checkpoint_dir;
      chase_config.checkpoint.resume = flags.resume;
    }
    Status ran = app.value()->Run(std::move(chase_config));
    if (!ran.ok()) return ran;
    return std::shared_ptr<const KnowledgeGraphApplication>(
        std::move(app).value());
  };

  // Bind before reasoning: health checks answer from the first moment,
  // and /readyz honestly reports "warming" until the epoch publishes.
  Result<std::unique_ptr<TcpServerTransport>> transport =
      TcpServerTransport::Listen(flags.port);
  if (!transport.ok()) return die(transport.status(), 1);
  if (!flags.port_file.empty()) {
    Status wrote = WriteFileAtomically(
        RealFilesystem(), flags.port_file,
        std::to_string(transport.value()->port()) + "\n");
    if (!wrote.ok()) return die(wrote, 1);
  }

  SnapshotRegistry snapshots(&metrics);
  ServerOptions server_options;
  server_options.num_workers = flags.workers;
  server_options.max_inflight = flags.max_inflight;
  server_options.admission.max_concurrent = flags.admit_max;
  server_options.admission.per_tenant_max = flags.tenant_max;
  server_options.read_deadline_ms = flags.read_deadline_ms;
  server_options.default_request_deadline_ms = flags.request_deadline_ms;
  server_options.max_request_deadline_ms = flags.max_request_deadline_ms;
  server_options.drain_deadline_ms = flags.drain_deadline_ms;
  if (budget.has_value()) server_options.budget = &*budget;
  server_options.metrics = &metrics;
  if (event_log.has_value()) server_options.event_log = &*event_log;
  server_options.warmup = &progress;
  server_options.rebuild = [&build](const Deadline& deadline,
                                    const CancellationToken& cancel) {
    return build(deadline, cancel, /*startup=*/false);
  };
  TemplexServer server(transport.value().get(), &snapshots, server_options);
  server.Start();
  std::fprintf(stderr, "templex_serve: listening on %s\n",
               transport.value()->Address().c_str());

  // Signals from here on drain the daemon; during warm-up they also
  // cancel the chase so shutdown is prompt.
  CancellationToken warmup_cancel;
  if (pipe(g_signal_pipe) != 0) {
    return die(Status(StatusCode::kInternal, "pipe() failed"), 1);
  }
  g_signal_cancel = &warmup_cancel;
  {
    struct sigaction action = {};
    action.sa_handler = HandleTerminationSignal;
    sigemptyset(&action.sa_mask);
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);
  }

  Result<std::shared_ptr<const KnowledgeGraphApplication>> app =
      build(Deadline::Infinite(), warmup_cancel, /*startup=*/true);
  if (!app.ok()) {
    if (app.status().code() == StatusCode::kCancelled) {
      // Signal during warm-up: a requested shutdown, not a failure. The
      // chase's committed rounds stay resumable.
      Status drained = server.WaitDrained();
      return drained.ok() ? 0 : 4;
    }
    const int code =
        app.status().code() == StatusCode::kDataLoss ? 6 : 1;
    Status drained = server.WaitDrained();
    (void)drained;  // the warm-up failure is the story
    return die(app.status(), code);
  }
  const int64_t epoch = snapshots.Publish(std::move(app).value());
  std::fprintf(stderr, "templex_serve: ready, epoch %lld\n",
               static_cast<long long>(epoch));

  // Park until a termination signal; EINTR means the signal beat the read.
  char byte = 0;
  while (read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::fprintf(stderr, "templex_serve: draining\n");
  const Status drained = server.WaitDrained();
  if (!drained.ok()) {
    std::fprintf(stderr, "templex_serve: drain deadline exceeded\n");
    return 4;
  }
  std::fprintf(stderr, "templex_serve: drained cleanly\n");
  return 0;
}

}  // namespace templex

int main(int argc, char** argv) { return templex::Serve(argc, argv); }
