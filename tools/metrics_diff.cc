// metrics_diff — compare two metrics snapshots written by
// `templex_cli --metrics-json` (MetricsSnapshotToJson output) or
// `templex_cli --metrics-prom` (Prometheus text exposition 0.0.4).
//
//   metrics_diff OLD NEW [--filter PREFIX] [--threshold-pct P]
//
// The format of each input is auto-detected: a leading '{' means JSON,
// anything with `# TYPE` lines or `name value` samples is parsed as
// Prometheus text; anything else fails with InvalidArgument naming the
// expected formats. Prometheus histograms carry only cumulative buckets,
// so their p50/p95/p99 are reconstructed by linear interpolation inside
// the bucket bounds (no observed-min/max clamp) — compare like with like
// (JSON against JSON, Prometheus against Prometheus) when percentiles must
// match exactly.
//
// Prints counter and gauge deltas and histogram percentile shifts
// (p50/p95/p99), one line per metric that changed; metrics present in only
// one snapshot are reported as added/removed.
//
// --filter PREFIX      only consider metrics whose name starts with PREFIX
//                      (e.g. --filter chase.phase.);
// --threshold-pct P    exit with status 3 if any histogram percentile
//                      regressed (grew) by more than P percent — the
//                      regression-gate mode for CI and bench comparisons.
//
// Exit codes: 0 diff printed (and no regression beyond the threshold),
// 2 usage error, 1 unreadable/unparsable input, 3 threshold exceeded.

#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "io/csv.h"
#include "io/json_parse.h"

namespace {

using namespace templex;

int Usage() {
  std::fprintf(stderr,
               "usage: metrics_diff OLD NEW [--filter PREFIX] "
               "[--threshold-pct P]\n"
               "       (inputs: --metrics-json JSON or --metrics-prom "
               "Prometheus text)\n");
  return 2;
}

// Percent change new vs old; +inf when appearing from zero.
double PercentChange(double old_value, double new_value) {
  if (old_value == new_value) return 0.0;
  if (old_value == 0.0) return new_value > 0.0 ? HUGE_VAL : -HUGE_VAL;
  return (new_value - old_value) / std::fabs(old_value) * 100.0;
}

std::string FormatPercent(double pct) {
  if (std::isinf(pct)) return pct > 0 ? "+inf%" : "-inf%";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", pct);
  return buf;
}

struct Snapshot {
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  // histogram name -> {p50, p95, p99, count}
  std::map<std::string, std::map<std::string, double>> histograms;
};

Result<Snapshot> LoadJsonSnapshot(const std::string& path,
                                  const std::string& text) {
  Result<JsonValue> parsed = ParseJson(text);
  if (!parsed.ok()) {
    return Status::InvalidArgument("cannot load metrics snapshot '" + path +
                                   "': " + parsed.status().message());
  }
  const JsonValue& root = parsed.value();
  if (!root.is_object()) {
    return Status::InvalidArgument("cannot load metrics snapshot '" + path +
                                   "': not a metrics snapshot object");
  }
  Snapshot snapshot;
  auto load_scalars = [&root](const char* section,
                              std::map<std::string, double>* out) {
    const JsonValue* values = root.Find(section);
    if (values == nullptr || !values->is_object()) return;
    for (const auto& [name, value] : values->members()) {
      if (value.is_number()) (*out)[name] = value.number_value();
    }
  };
  load_scalars("counters", &snapshot.counters);
  load_scalars("gauges", &snapshot.gauges);
  const JsonValue* histograms = root.Find("histograms");
  if (histograms != nullptr && histograms->is_object()) {
    for (const auto& [name, hist] : histograms->members()) {
      if (!hist.is_object()) continue;
      std::map<std::string, double>& fields = snapshot.histograms[name];
      for (const char* key : {"count", "p50", "p95", "p99"}) {
        const JsonValue* field = hist.Find(key);
        if (field != nullptr && field->is_number()) {
          fields[key] = field->number_value();
        }
      }
    }
  }
  return snapshot;
}

// --- Prometheus text exposition (0.0.4) input ----------------------------

// First non-whitespace character decides: '{' is a JSON snapshot.
bool LooksLikeJson(const std::string& text) {
  for (char c : text) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') continue;
    return c == '{';
  }
  return false;
}

// One histogram family accumulated from `X_bucket`/`X_sum`/`X_count`
// samples: cumulative counts per `le` bound, in file order.
struct PromHistogram {
  std::vector<double> bounds;      // le values; HUGE_VAL for +Inf
  std::vector<double> cumulative;  // cumulative count at each bound
  double count = 0.0;
};

// A Prometheus number: decimal, or +Inf/-Inf/NaN.
bool ParsePromNumber(const std::string& token, double* out) {
  if (token == "+Inf" || token == "Inf") {
    *out = HUGE_VAL;
    return true;
  }
  if (token == "-Inf") {
    *out = -HUGE_VAL;
    return true;
  }
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  return end != token.c_str() && *end == '\0';
}

// Reconstructs a percentile from per-bucket (non-cumulative) counts with
// the same interpolation the live Histogram uses, minus the observed
// min/max clamp (the text format does not carry them): the overflow
// bucket reports the largest finite bound.
double PromPercentile(const std::vector<double>& bounds,
                      const std::vector<double>& buckets, double p) {
  double total = 0.0;
  for (double b : buckets) total += b;
  if (total <= 0.0) return 0.0;
  double last_finite = 0.0;
  for (double bound : bounds) {
    if (!std::isinf(bound)) last_finite = bound;
  }
  const double target = p / 100.0 * total;
  double cumulative = 0.0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] <= 0.0) continue;
    const double next = cumulative + buckets[i];
    if (next >= target) {
      if (i >= bounds.size() || std::isinf(bounds[i])) return last_finite;
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double upper = bounds[i];
      return lower + (upper - lower) * (target - cumulative) / buckets[i];
    }
    cumulative = next;
  }
  return last_finite;
}

// Parses Prometheus text exposition: `# TYPE name kind` comments route the
// samples; `name{labels} value` / `name value` lines carry them. Histogram
// families are folded back into p50/p95/p99 via PromPercentile.
Result<Snapshot> LoadPromSnapshot(const std::string& path,
                                  const std::string& text) {
  auto malformed = [&path](size_t line_number, const std::string& line) {
    return Status::InvalidArgument(
        "cannot load metrics snapshot '" + path + "': line " +
        std::to_string(line_number) +
        " is not Prometheus text exposition: '" + line + "'");
  };
  std::map<std::string, std::string> types;  // name -> counter|gauge|...
  std::map<std::string, PromHistogram> histograms;
  Snapshot snapshot;
  size_t line_number = 0;
  size_t start = 0;
  bool saw_anything = false;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(start, end - start);
    start = end + 1;
    ++line_number;
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    if (line[0] == '#') {
      // `# TYPE <name> <kind>`; other comments (# HELP ...) are skipped.
      const std::string type_prefix = "# TYPE ";
      if (line.rfind(type_prefix, 0) == 0) {
        const std::string rest = line.substr(type_prefix.size());
        const size_t space = rest.find(' ');
        if (space == std::string::npos) return malformed(line_number, line);
        types[rest.substr(0, space)] = rest.substr(space + 1);
        saw_anything = true;
      }
      continue;
    }
    // Sample: name[{labels}] value
    std::string name;
    std::string labels;
    size_t value_start;
    const size_t brace = line.find('{');
    const size_t first_space = line.find(' ');
    if (brace != std::string::npos &&
        (first_space == std::string::npos || brace < first_space)) {
      const size_t close = line.find('}', brace);
      if (close == std::string::npos) return malformed(line_number, line);
      name = line.substr(0, brace);
      labels = line.substr(brace + 1, close - brace - 1);
      value_start = close + 1;
    } else {
      if (first_space == std::string::npos) {
        return malformed(line_number, line);
      }
      name = line.substr(0, first_space);
      value_start = first_space;
    }
    while (value_start < line.size() && line[value_start] == ' ') {
      ++value_start;
    }
    // A trailing timestamp (` value timestamp`) would show up as a second
    // token; templex never writes one, so a plain number is required.
    double value = 0.0;
    if (name.empty() ||
        !ParsePromNumber(line.substr(value_start), &value)) {
      return malformed(line_number, line);
    }
    saw_anything = true;
    // Histogram series: `X_bucket{le="..."}`, `X_sum`, `X_count` where X
    // was declared `# TYPE X histogram`.
    auto family_of = [&types](const std::string& sample_name,
                              const char* suffix) -> std::string {
      const std::string tail = suffix;
      if (sample_name.size() <= tail.size() ||
          sample_name.compare(sample_name.size() - tail.size(), tail.size(),
                              tail) != 0) {
        return "";
      }
      const std::string base =
          sample_name.substr(0, sample_name.size() - tail.size());
      auto it = types.find(base);
      return it != types.end() && it->second == "histogram" ? base : "";
    };
    if (std::string base = family_of(name, "_bucket"); !base.empty()) {
      const std::string le_prefix = "le=\"";
      const size_t le = labels.find(le_prefix);
      const size_t le_end =
          le == std::string::npos
              ? std::string::npos
              : labels.find('"', le + le_prefix.size());
      double bound = 0.0;
      if (le_end == std::string::npos ||
          !ParsePromNumber(
              labels.substr(le + le_prefix.size(),
                            le_end - le - le_prefix.size()),
              &bound)) {
        return malformed(line_number, line);
      }
      histograms[base].bounds.push_back(bound);
      histograms[base].cumulative.push_back(value);
    } else if (base = family_of(name, "_count"); !base.empty()) {
      histograms[base].count = value;
    } else if (base = family_of(name, "_sum"); !base.empty()) {
      // The sum is not part of the diff; accepted and dropped.
    } else {
      auto type = types.find(name);
      if (type != types.end() && type->second == "counter") {
        snapshot.counters[name] = value;
      } else {
        // Gauges and untyped samples diff as gauges.
        snapshot.gauges[name] = value;
      }
    }
  }
  if (!saw_anything) {
    return Status::InvalidArgument(
        "cannot load metrics snapshot '" + path +
        "': unrecognized format — expected a --metrics-json object or "
        "--metrics-prom Prometheus text exposition (0.0.4)");
  }
  for (auto& [name, hist] : histograms) {
    // Exposition order is ascending `le`, +Inf last; de-cumulate into
    // per-bucket counts for the percentile reconstruction.
    std::vector<double> buckets(hist.cumulative.size(), 0.0);
    double previous = 0.0;
    for (size_t i = 0; i < hist.cumulative.size(); ++i) {
      buckets[i] = hist.cumulative[i] - previous;
      if (buckets[i] < 0.0) buckets[i] = 0.0;  // malformed: clamp
      previous = hist.cumulative[i];
    }
    std::map<std::string, double>& fields = snapshot.histograms[name];
    fields["count"] = hist.count;
    fields["p50"] = PromPercentile(hist.bounds, buckets, 50.0);
    fields["p95"] = PromPercentile(hist.bounds, buckets, 95.0);
    fields["p99"] = PromPercentile(hist.bounds, buckets, 99.0);
  }
  return snapshot;
}

Result<Snapshot> LoadSnapshot(const std::string& path) {
  // Every load failure surfaces as InvalidArgument naming the offending
  // path — a missing or malformed snapshot is a usage problem, and the
  // message must say which of the two inputs to fix.
  Result<std::string> text = ReadFileToString(path);
  if (!text.ok()) {
    return Status::InvalidArgument("cannot load metrics snapshot '" + path +
                                   "': " + text.status().message());
  }
  if (LooksLikeJson(text.value())) {
    return LoadJsonSnapshot(path, text.value());
  }
  return LoadPromSnapshot(path, text.value());
}

bool MatchesFilter(const std::string& name, const std::string& prefix) {
  return prefix.empty() || name.rfind(prefix, 0) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string filter;
  double threshold_pct = -1.0;  // < 0: no gate
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--filter") {
      filter = next("--filter");
    } else if (arg == "--threshold-pct") {
      char* end = nullptr;
      const char* value = next("--threshold-pct");
      threshold_pct = std::strtod(value, &end);
      if (end == value || *end != '\0' || threshold_pct < 0.0) {
        std::fprintf(stderr,
                     "--threshold-pct expects a non-negative number\n");
        return 2;
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) return Usage();

  Result<Snapshot> old_snapshot = LoadSnapshot(paths[0]);
  if (!old_snapshot.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 old_snapshot.status().ToString().c_str());
    return 1;
  }
  Result<Snapshot> new_snapshot = LoadSnapshot(paths[1]);
  if (!new_snapshot.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 new_snapshot.status().ToString().c_str());
    return 1;
  }
  const Snapshot& before = old_snapshot.value();
  const Snapshot& after = new_snapshot.value();

  int changed = 0;
  bool regressed = false;

  auto diff_scalars = [&](const char* label,
                          const std::map<std::string, double>& old_values,
                          const std::map<std::string, double>& new_values,
                          bool integral) {
    for (const auto& [name, old_value] : old_values) {
      if (!MatchesFilter(name, filter)) continue;
      auto it = new_values.find(name);
      if (it == new_values.end()) {
        std::printf("%s %-48s removed (was %g)\n", label, name.c_str(),
                    old_value);
        ++changed;
        continue;
      }
      if (it->second == old_value) continue;
      const double delta = it->second - old_value;
      if (integral) {
        std::printf("%s %-48s %12lld -> %12lld  (%+lld, %s)\n", label,
                    name.c_str(), static_cast<long long>(old_value),
                    static_cast<long long>(it->second),
                    static_cast<long long>(delta),
                    FormatPercent(PercentChange(old_value, it->second))
                        .c_str());
      } else {
        std::printf("%s %-48s %12g -> %12g  (%s)\n", label, name.c_str(),
                    old_value, it->second,
                    FormatPercent(PercentChange(old_value, it->second))
                        .c_str());
      }
      ++changed;
    }
    for (const auto& [name, new_value] : new_values) {
      if (!MatchesFilter(name, filter)) continue;
      if (old_values.count(name) == 0) {
        std::printf("%s %-48s added (now %g)\n", label, name.c_str(),
                    new_value);
        ++changed;
      }
    }
  };

  diff_scalars("counter  ", before.counters, after.counters,
               /*integral=*/true);
  diff_scalars("gauge    ", before.gauges, after.gauges, /*integral=*/false);

  for (const auto& [name, old_fields] : before.histograms) {
    if (!MatchesFilter(name, filter)) continue;
    auto it = after.histograms.find(name);
    if (it == after.histograms.end()) {
      std::printf("histogram %-48s removed\n", name.c_str());
      ++changed;
      continue;
    }
    for (const char* key : {"p50", "p95", "p99"}) {
      auto old_field = old_fields.find(key);
      auto new_field = it->second.find(key);
      if (old_field == old_fields.end() || new_field == it->second.end()) {
        continue;
      }
      if (old_field->second == new_field->second) continue;
      const double pct =
          PercentChange(old_field->second, new_field->second);
      std::printf("histogram %-48s %s %12g -> %12g  (%s)\n", name.c_str(),
                  key, old_field->second, new_field->second,
                  FormatPercent(pct).c_str());
      ++changed;
      if (threshold_pct >= 0.0 && pct > threshold_pct) regressed = true;
    }
  }
  for (const auto& [name, fields] : after.histograms) {
    (void)fields;
    if (!MatchesFilter(name, filter)) continue;
    if (before.histograms.count(name) == 0) {
      std::printf("histogram %-48s added\n", name.c_str());
      ++changed;
    }
  }

  if (changed == 0) std::printf("no differences\n");
  if (regressed) {
    std::fprintf(stderr,
                 "regression: a histogram percentile grew more than %.1f%%\n",
                 threshold_pct);
    return 3;
  }
  return 0;
}
