// metrics_diff — compare two metrics snapshots written by
// `templex_cli --metrics-json` (or any MetricsSnapshotToJson output).
//
//   metrics_diff OLD.json NEW.json [--filter PREFIX] [--threshold-pct P]
//
// Prints counter and gauge deltas and histogram percentile shifts
// (p50/p95/p99), one line per metric that changed; metrics present in only
// one snapshot are reported as added/removed.
//
// --filter PREFIX      only consider metrics whose name starts with PREFIX
//                      (e.g. --filter chase.phase.);
// --threshold-pct P    exit with status 3 if any histogram percentile
//                      regressed (grew) by more than P percent — the
//                      regression-gate mode for CI and bench comparisons.
//
// Exit codes: 0 diff printed (and no regression beyond the threshold),
// 2 usage error, 1 unreadable/unparsable input, 3 threshold exceeded.

#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "io/csv.h"
#include "io/json_parse.h"

namespace {

using namespace templex;

int Usage() {
  std::fprintf(stderr,
               "usage: metrics_diff OLD.json NEW.json [--filter PREFIX] "
               "[--threshold-pct P]\n");
  return 2;
}

// Percent change new vs old; +inf when appearing from zero.
double PercentChange(double old_value, double new_value) {
  if (old_value == new_value) return 0.0;
  if (old_value == 0.0) return new_value > 0.0 ? HUGE_VAL : -HUGE_VAL;
  return (new_value - old_value) / std::fabs(old_value) * 100.0;
}

std::string FormatPercent(double pct) {
  if (std::isinf(pct)) return pct > 0 ? "+inf%" : "-inf%";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", pct);
  return buf;
}

struct Snapshot {
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  // histogram name -> {p50, p95, p99, count}
  std::map<std::string, std::map<std::string, double>> histograms;
};

Result<Snapshot> LoadSnapshot(const std::string& path) {
  // Every load failure surfaces as InvalidArgument naming the offending
  // path — a missing or malformed snapshot is a usage problem, and the
  // message must say which of the two inputs to fix.
  Result<std::string> text = ReadFileToString(path);
  if (!text.ok()) {
    return Status::InvalidArgument("cannot load metrics snapshot '" + path +
                                   "': " + text.status().message());
  }
  Result<JsonValue> parsed = ParseJson(text.value());
  if (!parsed.ok()) {
    return Status::InvalidArgument("cannot load metrics snapshot '" + path +
                                   "': " + parsed.status().message());
  }
  const JsonValue& root = parsed.value();
  if (!root.is_object()) {
    return Status::InvalidArgument("cannot load metrics snapshot '" + path +
                                   "': not a metrics snapshot object");
  }
  Snapshot snapshot;
  auto load_scalars = [&root](const char* section,
                              std::map<std::string, double>* out) {
    const JsonValue* values = root.Find(section);
    if (values == nullptr || !values->is_object()) return;
    for (const auto& [name, value] : values->members()) {
      if (value.is_number()) (*out)[name] = value.number_value();
    }
  };
  load_scalars("counters", &snapshot.counters);
  load_scalars("gauges", &snapshot.gauges);
  const JsonValue* histograms = root.Find("histograms");
  if (histograms != nullptr && histograms->is_object()) {
    for (const auto& [name, hist] : histograms->members()) {
      if (!hist.is_object()) continue;
      std::map<std::string, double>& fields = snapshot.histograms[name];
      for (const char* key : {"count", "p50", "p95", "p99"}) {
        const JsonValue* field = hist.Find(key);
        if (field != nullptr && field->is_number()) {
          fields[key] = field->number_value();
        }
      }
    }
  }
  return snapshot;
}

bool MatchesFilter(const std::string& name, const std::string& prefix) {
  return prefix.empty() || name.rfind(prefix, 0) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string filter;
  double threshold_pct = -1.0;  // < 0: no gate
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--filter") {
      filter = next("--filter");
    } else if (arg == "--threshold-pct") {
      char* end = nullptr;
      const char* value = next("--threshold-pct");
      threshold_pct = std::strtod(value, &end);
      if (end == value || *end != '\0' || threshold_pct < 0.0) {
        std::fprintf(stderr,
                     "--threshold-pct expects a non-negative number\n");
        return 2;
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) return Usage();

  Result<Snapshot> old_snapshot = LoadSnapshot(paths[0]);
  if (!old_snapshot.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 old_snapshot.status().ToString().c_str());
    return 1;
  }
  Result<Snapshot> new_snapshot = LoadSnapshot(paths[1]);
  if (!new_snapshot.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 new_snapshot.status().ToString().c_str());
    return 1;
  }
  const Snapshot& before = old_snapshot.value();
  const Snapshot& after = new_snapshot.value();

  int changed = 0;
  bool regressed = false;

  auto diff_scalars = [&](const char* label,
                          const std::map<std::string, double>& old_values,
                          const std::map<std::string, double>& new_values,
                          bool integral) {
    for (const auto& [name, old_value] : old_values) {
      if (!MatchesFilter(name, filter)) continue;
      auto it = new_values.find(name);
      if (it == new_values.end()) {
        std::printf("%s %-48s removed (was %g)\n", label, name.c_str(),
                    old_value);
        ++changed;
        continue;
      }
      if (it->second == old_value) continue;
      const double delta = it->second - old_value;
      if (integral) {
        std::printf("%s %-48s %12lld -> %12lld  (%+lld, %s)\n", label,
                    name.c_str(), static_cast<long long>(old_value),
                    static_cast<long long>(it->second),
                    static_cast<long long>(delta),
                    FormatPercent(PercentChange(old_value, it->second))
                        .c_str());
      } else {
        std::printf("%s %-48s %12g -> %12g  (%s)\n", label, name.c_str(),
                    old_value, it->second,
                    FormatPercent(PercentChange(old_value, it->second))
                        .c_str());
      }
      ++changed;
    }
    for (const auto& [name, new_value] : new_values) {
      if (!MatchesFilter(name, filter)) continue;
      if (old_values.count(name) == 0) {
        std::printf("%s %-48s added (now %g)\n", label, name.c_str(),
                    new_value);
        ++changed;
      }
    }
  };

  diff_scalars("counter  ", before.counters, after.counters,
               /*integral=*/true);
  diff_scalars("gauge    ", before.gauges, after.gauges, /*integral=*/false);

  for (const auto& [name, old_fields] : before.histograms) {
    if (!MatchesFilter(name, filter)) continue;
    auto it = after.histograms.find(name);
    if (it == after.histograms.end()) {
      std::printf("histogram %-48s removed\n", name.c_str());
      ++changed;
      continue;
    }
    for (const char* key : {"p50", "p95", "p99"}) {
      auto old_field = old_fields.find(key);
      auto new_field = it->second.find(key);
      if (old_field == old_fields.end() || new_field == it->second.end()) {
        continue;
      }
      if (old_field->second == new_field->second) continue;
      const double pct =
          PercentChange(old_field->second, new_field->second);
      std::printf("histogram %-48s %s %12g -> %12g  (%s)\n", name.c_str(),
                  key, old_field->second, new_field->second,
                  FormatPercent(pct).c_str());
      ++changed;
      if (threshold_pct >= 0.0 && pct > threshold_pct) regressed = true;
    }
  }
  for (const auto& [name, fields] : after.histograms) {
    (void)fields;
    if (!MatchesFilter(name, filter)) continue;
    if (before.histograms.count(name) == 0) {
      std::printf("histogram %-48s added\n", name.c_str());
      ++changed;
    }
  }

  if (changed == 0) std::printf("no differences\n");
  if (regressed) {
    std::fprintf(stderr,
                 "regression: a histogram percentile grew more than %.1f%%\n",
                 threshold_pct);
    return 3;
  }
  return 0;
}
