// Stress test (§5): simulates a 14M-euro shock on institution A over the
// Figure 12 network, shows the cascade of defaults over the long- and
// short-term debt channels, and answers Q_e = {Default("F")} with the
// explanation the paper walks through in Section 5. Also dumps the chase
// sub-graph of the queried fact in GraphViz DOT form.

#include <cstdio>

#include "apps/glossaries.h"
#include "apps/programs.h"
#include "apps/scenario.h"
#include "datalog/printer.h"
#include "engine/chase.h"
#include "engine/proof.h"
#include "explain/explainer.h"

int main() {
  using namespace templex;

  Result<std::unique_ptr<Explainer>> explainer =
      Explainer::Create(StressTestProgram(), StressTestGlossary());
  if (!explainer.ok()) {
    std::fprintf(stderr, "%s\n", explainer.status().ToString().c_str());
    return 1;
  }
  std::printf("== Stress test program ==\n%s\n",
              FormatProgramAligned(explainer.value()->program()).c_str());
  std::printf("== Domain glossary (Figure 11) ==\n%s\n",
              explainer.value()->glossary().ToTable().c_str());

  RepresentativeScenario scenario = MakeRepresentativeScenario();
  Result<ChaseResult> chase =
      ChaseEngine().Run(explainer.value()->program(), scenario.stress_edb);
  if (!chase.ok()) {
    std::fprintf(stderr, "%s\n", chase.status().ToString().c_str());
    return 1;
  }
  std::printf("== Defaults triggered by the 14M shock on A ==\n");
  for (const Fact& fact : chase.value().FactsOf("Default")) {
    std::printf("  %s\n", fact.ToString().c_str());
  }

  Result<FactId> goal = chase.value().Find(scenario.stress_query);
  if (!goal.ok()) {
    std::fprintf(stderr, "%s\n", goal.status().ToString().c_str());
    return 1;
  }
  Proof proof = Proof::Extract(chase.value().graph, goal.value());
  std::printf("\n== Chase sub-graph of Default(\"F\") (DOT) ==\n%s\n",
              chase.value().graph.ToDot(goal.value()).c_str());

  Result<std::string> text = explainer.value()->ExplainProof(proof);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 1;
  }
  std::printf("== Q_e = {Default(\"F\")} (%d chase steps) ==\n%s\n",
              proof.num_chase_steps(), text.value().c_str());
  return 0;
}
