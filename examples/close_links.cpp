// Close links (§6.2): the third financial application. Two entities are
// closely linked when the integrated (direct + indirect, share-product)
// ownership reaches 20% — the application mixes arithmetic assignments,
// recursion, and aggregation. Runs over a synthetic layered ownership DAG
// and explains one derived link.

#include <cstdio>

#include "apps/generators.h"
#include "apps/glossaries.h"
#include "apps/programs.h"
#include "datalog/printer.h"
#include "engine/chase.h"
#include "explain/explainer.h"

int main() {
  using namespace templex;

  Result<std::unique_ptr<Explainer>> explainer =
      Explainer::Create(CloseLinksProgram(), CloseLinksGlossary());
  if (!explainer.ok()) {
    std::fprintf(stderr, "%s\n", explainer.status().ToString().c_str());
    return 1;
  }
  std::printf("== Close links program ==\n%s\n",
              FormatProgramAligned(explainer.value()->program()).c_str());
  std::printf("== Reasoning paths ==\n%s\n",
              explainer.value()->analysis().ToTable().c_str());

  // A three-hop ownership chain with shares whose product crosses the 20%
  // threshold only jointly with a direct stake.
  auto S = [](const char* s) { return Value::String(s); };
  auto D = [](double d) { return Value::Double(d); };
  std::vector<Fact> edb = {
      {"Own", {S("AlphaHolding"), S("BetaFinance"), D(0.5)}},
      {"Own", {S("BetaFinance"), S("GammaCredit"), D(0.3)}},
      {"Own", {S("AlphaHolding"), S("GammaCredit"), D(0.1)}},
      {"Own", {S("GammaCredit"), S("DeltaFunds"), D(0.9)}},
  };
  Result<ChaseResult> chase =
      ChaseEngine().Run(explainer.value()->program(), edb);
  if (!chase.ok()) {
    std::fprintf(stderr, "%s\n", chase.status().ToString().c_str());
    return 1;
  }
  std::printf("== Derived close links ==\n");
  for (const Fact& link : chase.value().FactsOf("CloseLink")) {
    std::printf("  %s\n", link.ToString().c_str());
  }

  // AlphaHolding holds 10% directly plus 0.5 * 0.3 = 15% indirectly in
  // GammaCredit: jointly 25% >= 20%.
  Fact query{"CloseLink", {S("AlphaHolding"), S("GammaCredit")}};
  Result<std::string> text =
      explainer.value()->Explain(chase.value(), query);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 1;
  }
  std::printf("\n== Q_e = {%s} ==\n%s\n", query.ToString().c_str(),
              text.value().c_str());

  // A bigger random DAG, to show scale.
  OwnershipDagOptions options;
  options.layers = 5;
  options.width = 4;
  Rng rng(2025);
  std::vector<Fact> dag = GenerateOwnershipDag(options, &rng);
  Result<ChaseResult> dag_chase =
      ChaseEngine().Run(explainer.value()->program(), dag);
  if (!dag_chase.ok()) {
    std::fprintf(stderr, "%s\n", dag_chase.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "== Random DAG: %zu ownership edges -> %zu close links derived ==\n",
      dag.size(), dag_chase.value().FactsOf("CloseLink").size());
  return 0;
}
