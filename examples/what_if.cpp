// An analyst session: load the interbank network once, then run what-if
// shock hypotheses against it (§5's stress exercise as an API), explain the
// new defaults each hypothesis causes, surface every reasoning story for a
// contested fact, and emit the markdown report a supervisor would read.

#include <cstdio>

#include "apps/application.h"
#include "apps/glossaries.h"
#include "apps/programs.h"
#include "apps/scenario.h"
#include "explain/report.h"

int main() {
  using namespace templex;
  auto S = [](const char* s) { return Value::String(s); };
  auto I = [](int64_t i) { return Value::Int(i); };

  auto app = KnowledgeGraphApplication::Create(StressTestProgram(),
                                               StressTestGlossary());
  if (!app.ok()) {
    std::fprintf(stderr, "%s\n", app.status().ToString().c_str());
    return 1;
  }
  // The Figure 12 network WITHOUT any shock: the baseline.
  RepresentativeScenario scenario = MakeRepresentativeScenario();
  std::vector<Fact> network;
  for (const Fact& fact : scenario.stress_edb) {
    if (fact.predicate != "Shock") network.push_back(fact);
  }
  app.value()->AddFacts(std::move(network));
  if (Status status = app.value()->Run(); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("baseline: %zu defaults\n",
              app.value()->Query({"Default", {Value::Null()}}).size());

  // Sweep shock sizes on A and watch the cascade grow.
  std::printf("\n== Shock sweep on A ==\n");
  for (int64_t shock : {4, 6, 10, 14}) {
    auto hypothesis = app.value()->WhatIf({{"Shock", {S("A"), I(shock)}}});
    if (!hypothesis.ok()) {
      std::fprintf(stderr, "%s\n", hypothesis.status().ToString().c_str());
      return 1;
    }
    int defaults = 0;
    std::string who;
    for (const Fact& fact : hypothesis.value().new_facts) {
      if (fact.predicate == "Default") {
        ++defaults;
        who += (who.empty() ? "" : ", ") + fact.args[0].ToDisplayString();
      }
    }
    std::printf("  shock %2lldM -> %d defaults%s%s\n",
                static_cast<long long>(shock), defaults,
                defaults ? ": " : "", who.c_str());
  }

  // The 14M hypothesis in detail: explain the far end of the cascade.
  auto worst = app.value()->WhatIf({{"Shock", {S("A"), I(14)}}});
  if (!worst.ok()) {
    std::fprintf(stderr, "%s\n", worst.status().ToString().c_str());
    return 1;
  }
  auto text =
      app.value()->ExplainUnder(worst.value(), {"Default", {S("F")}});
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 1;
  }
  std::printf("\n== Why F fails under the 14M hypothesis ==\n%s\n",
              text.value().c_str());

  // The supervisor's report for the worst case.
  ReportBuilder builder(&app.value()->explainer(), &worst.value().chase);
  builder.Title("Stress exercise: 14M shock on A")
      .Preamble(
          "Hypothetical exogenous shock applied to the baseline interbank "
          "network; all figures in millions of euros.");
  for (const Fact& fact : worst.value().new_facts) {
    if (fact.predicate == "Default") builder.AddExplanation(fact);
  }
  builder.AddViolationsAppendix();
  Result<std::string> report = builder.Build();
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("== Report (markdown) ==\n%s\n", report.value().c_str());
  return 0;
}
