// Company control (§5): runs the Bank-of-Italy-style control-closure
// application over the representative synthetic scenario of Figure 12,
// prints the derived control edges (Figure 13) and answers the analyst's
// explanation query Q_e = {Control("B", "D")}, plus the Figure 15
// IrishBank/MadridCredit case.

#include <cstdio>

#include "apps/glossaries.h"
#include "apps/programs.h"
#include "apps/scenario.h"
#include "datalog/printer.h"
#include "engine/chase.h"
#include "explain/explainer.h"

int main() {
  using namespace templex;

  Result<std::unique_ptr<Explainer>> explainer =
      Explainer::Create(CompanyControlProgram(), CompanyControlGlossary());
  if (!explainer.ok()) {
    std::fprintf(stderr, "%s\n", explainer.status().ToString().c_str());
    return 1;
  }
  std::printf("== Company control program ==\n%s\n",
              FormatProgramAligned(explainer.value()->program()).c_str());

  RepresentativeScenario scenario = MakeRepresentativeScenario();
  Result<ChaseResult> chase =
      ChaseEngine().Run(explainer.value()->program(), scenario.control_edb);
  if (!chase.ok()) {
    std::fprintf(stderr, "%s\n", chase.status().ToString().c_str());
    return 1;
  }
  std::printf("== Derived control edges (auto-controls omitted) ==\n");
  for (const Fact& control : chase.value().FactsOf("Control")) {
    if (control.args[0] == control.args[1]) continue;
    std::printf("  %s\n", control.ToString().c_str());
  }

  Result<std::string> text =
      explainer.value()->Explain(chase.value(), scenario.control_query);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 1;
  }
  std::printf("\n== Q_e = {%s} ==\n%s\n",
              scenario.control_query.ToString().c_str(),
              text.value().c_str());

  // The Figure 15 case: joint control through two majority-held companies.
  auto S = [](const char* s) { return Value::String(s); };
  auto D = [](double d) { return Value::Double(d); };
  std::vector<Fact> irish = {
      {"Own", {S("IrishBank"), S("FondoItaliano"), D(0.83)}},
      {"Own", {S("IrishBank"), S("FrenchPLC"), D(0.54)}},
      {"Own", {S("FondoItaliano"), S("MadridCredit"), D(0.36)}},
      {"Own", {S("FrenchPLC"), S("MadridCredit"), D(0.21)}},
  };
  Result<ChaseResult> irish_chase =
      ChaseEngine().Run(explainer.value()->program(), irish);
  if (!irish_chase.ok()) {
    std::fprintf(stderr, "%s\n", irish_chase.status().ToString().c_str());
    return 1;
  }
  Fact query{"Control", {S("IrishBank"), S("MadridCredit")}};
  Result<std::string> irish_text =
      explainer.value()->Explain(irish_chase.value(), query);
  if (!irish_text.ok()) {
    std::fprintf(stderr, "%s\n", irish_text.status().ToString().c_str());
    return 1;
  }
  std::printf("== Q_e = {%s} (Figure 15) ==\n%s\n", query.ToString().c_str(),
              irish_text.value().c_str());
  return 0;
}
