// Full deployment workflow: the KnowledgeGraphApplication facade driving
// the company-control application the way a downstream integration would —
// facts from CSV, data-quality constraints, wildcard queries, explanation
// queries, anonymized reports for exports, and JSON for a graph front-end.

#include <cstdio>

#include "apps/application.h"
#include "apps/glossaries.h"
#include "datalog/parser.h"
#include "io/csv.h"

int main() {
  using namespace templex;

  // The deployed application: the company-control rules plus two
  // data-quality constraints (negative constraints, `body -> !.`), and a
  // derived "independent company" predicate using stratified negation.
  Result<Program> program = ParseProgram(R"(
@goal Control.
sigma1: Own(x, y, s), s > 0.5 -> Control(x, y).
sigma2: Company(x) -> Control(x, x).
sigma3: Control(x, z), Own(z, y, s), ts = sum(s, [z]), ts > 0.5 -> Control(x, y).
ind:    Company(x), not ControlledByOther(x) -> Independent(x).
cbo:    Control(x, y), x != y -> ControlledByOther(y).
c_share: Own(x, y, s), s > 1 -> !.
c_self:  Own(x, x, s) -> !.
)");
  if (!program.ok()) {
    std::fprintf(stderr, "%s\n", program.status().ToString().c_str());
    return 1;
  }
  DomainGlossary glossary = CompanyControlGlossary();
  auto must = [](Status status) {
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      std::exit(1);
    }
  };
  must(glossary.Register("ControlledByOther",
                         {"<x> is controlled by another entity", {"x"}, {}}));
  must(glossary.Register("Independent",
                         {"<x> is an independent company", {"x"}, {}}));

  auto app = KnowledgeGraphApplication::Create(std::move(program).value(),
                                               std::move(glossary));
  if (!app.ok()) {
    std::fprintf(stderr, "%s\n", app.status().ToString().c_str());
    return 1;
  }

  // Facts arrive as CSV — the shape a database export has. The 130% share
  // is a deliberate data-quality error for the constraint to catch.
  const char* kCsv = R"(# ownership extract
Company,"UmbriaFin"
Company,"LigureBank"
Company,"AdriaticoFund"
Company,"TirrenoCredit"
Own,"UmbriaFin","LigureBank",0.64
Own,"LigureBank","AdriaticoFund",0.3
Own,"UmbriaFin","AdriaticoFund",0.25
Own,"AdriaticoFund","TirrenoCredit",1.3
)";
  Result<std::vector<Fact>> facts = ParseFactsCsv(kCsv);
  if (!facts.ok()) {
    std::fprintf(stderr, "%s\n", facts.status().ToString().c_str());
    return 1;
  }
  app.value()->AddFacts(std::move(facts).value());
  must(app.value()->Run());

  std::printf("== Data-quality violations ==\n");
  for (const ConstraintViolation& violation : app.value()->violations()) {
    std::printf("  %s\n", violation.ToString().c_str());
  }

  std::printf("\n== Who does UmbriaFin control? (wildcard query) ==\n");
  auto S = [](const char* s) { return Value::String(s); };
  for (const Fact& control :
       app.value()->Query({"Control", {S("UmbriaFin"), Value::Null()}})) {
    if (control.args[0] == control.args[1]) continue;
    std::printf("  %s\n", control.ToString().c_str());
  }
  std::printf("\n== Independent companies (negation-derived) ==\n");
  for (const Fact& fact :
       app.value()->Query({"Independent", {Value::Null()}})) {
    std::printf("  %s\n", fact.ToString().c_str());
  }

  Fact query{"Control", {S("UmbriaFin"), S("AdriaticoFund")}};
  Result<std::string> text = app.value()->Explain(query);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 1;
  }
  std::printf("\n== Q_e = {%s} ==\n%s\n", query.ToString().c_str(),
              text.value().c_str());

  // The same report, pseudonymized for sharing outside the trust boundary.
  AnonymizerOptions anonymizer;
  anonymizer.coarsen_numbers = false;
  Result<AnonymizedText> anonymized =
      app.value()->ExplainAnonymized(query, anonymizer);
  if (!anonymized.ok()) {
    std::fprintf(stderr, "%s\n", anonymized.status().ToString().c_str());
    return 1;
  }
  std::printf("\n== Same report, anonymized ==\n%s\n",
              anonymized.value().text.c_str());

  // JSON for a graph front-end (truncated for display).
  Result<std::string> proof_json = app.value()->ExportProofJson(query);
  if (proof_json.ok()) {
    std::printf("\n== Proof as JSON (first 240 chars) ==\n%.240s...\n",
                proof_json.value().c_str());
  }
  return 0;
}
