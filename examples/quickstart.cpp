// Quickstart: the paper's running example (§4) end to end.
//
// A six-line Vadalog program encodes a simplified stress test; the library
// (1) analyzes its dependency graph into reasoning paths, (2) turns them
// into natural-language explanation templates, (3) runs the chase over a
// tiny financial instance, and (4) answers the explanation query
// Q_e = {Default("C")} — all without the instance ever leaving the process.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "datalog/parser.h"
#include "datalog/printer.h"
#include "engine/chase.h"
#include "engine/proof.h"
#include "explain/explainer.h"

int main() {
  using namespace templex;

  // 1. The knowledge-graph application (Example 4.3): who defaults after a
  //    financial shock, propagating over debt exposures.
  const char* kSource = R"(
@goal Default.
alpha: Shock(f, s), HasCapital(f, p1), s > p1 -> Default(f).
beta:  Default(d), Debts(d, c, v), e = sum(v) -> Risk(c, e).
gamma: HasCapital(c, p2), Risk(c, e), p2 < e -> Default(c).
)";
  Result<Program> program = ParseProgram(kSource);
  if (!program.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }
  std::printf("== Program ==\n%s\n",
              FormatProgramAligned(program.value()).c_str());

  // 2. The domain glossary (Figure 7), normally sourced from the
  //    organization's data dictionary.
  DomainGlossary glossary;
  auto must = [](Status s) {
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      std::exit(1);
    }
  };
  must(glossary.Register(
      "HasCapital",
      {"<f> is a financial institution with capital of <p> euros",
       {"f", "p"},
       {NumberStyle::kPlain, NumberStyle::kMillions}}));
  must(glossary.Register("Shock",
                         {"a shock amounting to <s> euros affects <f>",
                          {"f", "s"},
                          {NumberStyle::kPlain, NumberStyle::kMillions}}));
  must(glossary.Register("Default", {"<f> is in default", {"f"}, {}}));
  must(glossary.Register(
      "Debts",
      {"<d> has an amount of <v> euros of debts with <c>",
       {"d", "c", "v"},
       {NumberStyle::kPlain, NumberStyle::kPlain, NumberStyle::kMillions}}));
  must(glossary.Register(
      "Risk",
      {"<c> is at risk of defaulting given its loan of <e> euros of "
       "exposures to a defaulted debtor",
       {"c", "e"},
       {NumberStyle::kPlain, NumberStyle::kMillions}}));

  // 3. Build the explanation pipeline: structural analysis + templates.
  Result<std::unique_ptr<Explainer>> explainer =
      Explainer::Create(std::move(program).value(), std::move(glossary));
  if (!explainer.ok()) {
    std::fprintf(stderr, "%s\n", explainer.status().ToString().c_str());
    return 1;
  }
  std::printf("== Reasoning paths (Figures 4-5) ==\n%s\n",
              explainer.value()->analysis().ToTable().c_str());

  // 4. Run the chase over the Figure 8 instance.
  auto S = [](const char* s) { return Value::String(s); };
  auto I = [](int64_t i) { return Value::Int(i); };
  std::vector<Fact> edb = {
      {"Shock", {S("A"), I(6)}},          {"HasCapital", {S("A"), I(5)}},
      {"HasCapital", {S("B"), I(2)}},     {"HasCapital", {S("C"), I(10)}},
      {"Debts", {S("A"), S("B"), I(7)}},  {"Debts", {S("B"), S("C"), I(2)}},
      {"Debts", {S("B"), S("C"), I(9)}},
  };
  Result<ChaseResult> chase =
      ChaseEngine().Run(explainer.value()->program(), edb);
  if (!chase.ok()) {
    std::fprintf(stderr, "%s\n", chase.status().ToString().c_str());
    return 1;
  }
  std::printf("== Chase: %d facts (%lld derived) in %lld rounds ==\n",
              chase.value().graph.size(),
              static_cast<long long>(chase.value().stats.derived_facts),
              static_cast<long long>(chase.value().stats.rounds));
  Fact goal{"Default", {S("C")}};
  Result<FactId> goal_id = chase.value().Find(goal);
  if (!goal_id.ok()) {
    std::fprintf(stderr, "%s\n", goal_id.status().ToString().c_str());
    return 1;
  }
  Proof proof = Proof::Extract(chase.value().graph, goal_id.value());
  std::printf("\n== Proof of Default(\"C\") (Example 4.7) ==\n%s\n",
              proof.ToString().c_str());

  // 5. The explanation query (Example 4.8).
  Result<std::string> explanation =
      explainer.value()->Explain(chase.value(), goal);
  if (!explanation.ok()) {
    std::fprintf(stderr, "%s\n", explanation.status().ToString().c_str());
    return 1;
  }
  std::printf("== Explanation for Q_e = {Default(\"C\")} ==\n%s\n",
              explanation.value().c_str());
  return 0;
}
