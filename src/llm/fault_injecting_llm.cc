#include "llm/fault_injecting_llm.h"

#include <functional>

#include "common/hash.h"

namespace templex {

namespace {

// One uniform draw in [0, 1) from the call identity. A full Rng per call
// would work too, but one finalizer mix (common/hash.h) is enough for a
// fault coin and keeps the decorator allocation-free.
double UniformDraw(uint64_t seed, uint64_t call, uint64_t prompt_hash) {
  const uint64_t z =
      HashMix(seed + 0x9e3779b97f4a7c15ULL * (call + 1) + prompt_hash);
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjectingLlm::FaultInjectingLlm(LlmClient* inner,
                                     FaultInjectingLlmOptions options)
    : inner_(inner), options_(options) {}

Result<std::string> FaultInjectingLlm::Complete(const std::string& prompt) {
  const int64_t call = calls_.fetch_add(1, std::memory_order_relaxed);
  if (options_.clock != nullptr && options_.latency_ms > 0) {
    options_.clock->AdvanceMillis(options_.latency_ms);
  }
  const double draw =
      UniformDraw(options_.seed, static_cast<uint64_t>(call),
                  std::hash<std::string>{}(prompt));
  double threshold = options_.transient_error_rate;
  if (draw < threshold) {
    faults_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        "injected transient LLM fault (call " + std::to_string(call) + ")");
  }
  threshold += options_.permanent_error_rate;
  if (draw < threshold) {
    faults_.fetch_add(1, std::memory_order_relaxed);
    return Status::Internal("injected permanent LLM fault (call " +
                            std::to_string(call) + ")");
  }
  Result<std::string> completion = inner_->Complete(prompt);
  if (!completion.ok()) return completion;
  threshold += options_.truncate_rate;
  if (draw < threshold) {
    faults_.fetch_add(1, std::memory_order_relaxed);
    const std::string& text = completion.value();
    return text.substr(0, text.size() / 2);
  }
  threshold += options_.garbage_rate;
  if (draw < threshold) {
    faults_.fetch_add(1, std::memory_order_relaxed);
    return std::string(
        "As a large language model, I cannot comply with this request.");
  }
  return completion;
}

}  // namespace templex
