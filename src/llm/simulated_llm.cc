#include "llm/simulated_llm.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "common/rng.h"
#include "common/string_util.h"
#include "explain/enhancer.h"

namespace templex {

namespace {

// Synonym rewrites applied by both paraphrasis and summarization, so the
// output visibly differs from the deterministic input text.
const std::pair<const char*, const char*> kSynonyms[] = {
    {"Since ", "Given that "},
    {", then ", ", it follows that "},
    {" is in default", " has defaulted"},
    {" amounting to ", " of "},
    {" is higher than ", " exceeds "},
    {" is lower than ", " is below "},
    {" given by the sum of ", " totalling "},
    {" affects ", " hits "},
    {" exercises control over ", " controls "},
};

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
         c == '%' || c == '\'';
}

// Splits into alternating separator/word chunks, preserving everything.
std::vector<std::string> Chunk(const std::string& text) {
  std::vector<std::string> chunks;
  std::string current;
  bool in_word = false;
  for (char c : text) {
    bool word = IsWordChar(c);
    if (!current.empty() && word != in_word) {
      chunks.push_back(current);
      current.clear();
    }
    in_word = word;
    current.push_back(c);
  }
  if (!current.empty()) chunks.push_back(current);
  return chunks;
}

// Trailing sentence periods belong to the word chunk ('.' is a word char so
// decimals like 0.5 stay intact); strip them for identity purposes.
std::string StripTrailingDots(const std::string& word) {
  std::string result = word;
  while (!result.empty() && result.back() == '.') result.pop_back();
  return result;
}

bool LooksLikeConstant(const std::string& word, bool sentence_start) {
  if (word.empty() || !IsWordChar(word[0])) return false;
  for (char c : word) {
    if (std::isdigit(static_cast<unsigned char>(c))) return true;
  }
  // Capitalized mid-sentence word = entity mention. Sentence-leading words
  // are ambiguous; treat them as prose.
  if (!sentence_start && std::isupper(static_cast<unsigned char>(word[0]))) {
    // Ignore common sentence-internal capitalized prose (none in our
    // verbalizations), so any capitalized token counts.
    return true;
  }
  return false;
}

uint64_t HashText(const std::string& text) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

const std::pair<const char*, const char*> kCompressingSynonyms[] = {
    {"Since ", "As "},
    {", then ", ", so "},
    {" is in default", " fails"},
    {" amounting to ", " of "},
    {" is higher than ", " tops "},
    {" is lower than ", " is under "},
    {" given by the sum of ", " totalling "},
    {" is at risk of defaulting given its ", " risks default on "},
    {" euros of exposures to a defaulted debtor", " of bad exposures"},
    {" has an amount of ", " has "},
    {" exercises control over ", " controls "},
};

std::string ApplySynonyms(const std::string& text) {
  std::string result = text;
  for (const auto& [from, to] : kSynonyms) {
    result = ReplaceAll(result, from, to);
  }
  return result;
}

std::string ApplyCompressingSynonyms(const std::string& text) {
  std::string result = text;
  for (const auto& [from, to] : kCompressingSynonyms) {
    result = ReplaceAll(result, from, to);
  }
  return result;
}

// Removes every mention of the constants in `dropped` from `text`,
// replacing entities with a vague reference and numbers with a vague
// quantity, which is how chat models typically elide details.
std::string DropConstants(const std::string& text,
                          const std::set<std::string>& dropped) {
  std::vector<std::string> chunks = Chunk(text);
  std::string result;
  bool sentence_start = true;
  for (const std::string& chunk : chunks) {
    const bool is_word = !chunk.empty() && IsWordChar(chunk[0]);
    const std::string word = StripTrailingDots(chunk);
    if (is_word && dropped.count(word) > 0 && !sentence_start) {
      bool numeric = std::isdigit(static_cast<unsigned char>(word[0])) != 0;
      result += numeric ? "some amount" : "another party";
      result += chunk.substr(word.size());  // keep trailing periods
    } else {
      result += chunk;
    }
    if (is_word) {
      sentence_start = chunk.back() == '.';
    } else if (Contains(chunk, ".")) {
      sentence_start = true;
    }
  }
  return result;
}

}  // namespace

namespace llm_internal {

std::vector<std::string> ConstantMentions(const std::string& text) {
  std::vector<std::string> mentions;
  bool sentence_start = true;
  for (const std::string& chunk : Chunk(text)) {
    if (!chunk.empty() && IsWordChar(chunk[0])) {
      const std::string word = StripTrailingDots(chunk);
      if (!word.empty() && LooksLikeConstant(word, sentence_start)) {
        if (std::find(mentions.begin(), mentions.end(), word) ==
            mentions.end()) {
          mentions.push_back(word);
        }
      }
      sentence_start = !chunk.empty() && chunk.back() == '.';
    } else if (Contains(chunk, ".")) {
      sentence_start = true;
    }
  }
  return mentions;
}

}  // namespace llm_internal

SimulatedLlm::SimulatedLlm(SimulatedLlmOptions options) : options_(options) {}

Result<std::string> SimulatedLlm::Complete(const std::string& prompt) {
  if (prompt.starts_with(kParaphrasePrompt)) {
    return ParaphraseText(prompt.substr(sizeof(kParaphrasePrompt) - 1));
  }
  if (prompt.starts_with(kSummarizePrompt)) {
    return SummarizeText(prompt.substr(sizeof(kSummarizePrompt) - 1));
  }
  if (prompt.starts_with(kRephrasePrompt)) {
    return RephraseTemplate(prompt.substr(sizeof(kRephrasePrompt) - 1));
  }
  return Status::InvalidArgument(
      "SimulatedLlm only models the paraphrase/summarize/rephrase prompts");
}

std::string SimulatedLlm::ParaphraseText(const std::string& text) const {
  Rng rng(options_.seed ^ HashText(text));
  const int sentences = static_cast<int>(SplitSentences(text).size());
  double p = options_.paraphrase_omission_per_step *
             std::max(0, sentences - 1);
  p += rng.NextGaussian(0.0, options_.omission_noise);
  p = std::clamp(p, 0.0, options_.max_omission);
  std::set<std::string> dropped;
  for (const std::string& mention : llm_internal::ConstantMentions(text)) {
    if (rng.NextBool(p)) dropped.insert(mention);
  }
  // A chat-model paraphrase is genuinely fluent: redundant chaining clauses
  // are elided and sentence frames varied, like the template enhancer does.
  const int variant = static_cast<int>(rng.NextUint64(4));
  return DropConstants(ApplySynonyms(CompressDeterministicText(text, variant)),
                       dropped);
}

std::string SimulatedLlm::SummarizeText(const std::string& text) const {
  Rng rng(options_.seed * 31 ^ HashText(text));
  std::vector<std::string> sentences = SplitSentences(text);
  const int n = static_cast<int>(sentences.size());
  // Drop whole middle sentences (summaries compress), which loses their
  // constants outright.
  std::vector<std::string> kept;
  for (int i = 0; i < n; ++i) {
    if (i == 0 || i == n - 1 || rng.NextBool(options_.summary_sentence_keep)) {
      kept.push_back(sentences[i]);
    }
  }
  std::string condensed = Join(kept, " ");
  double p = options_.summary_omission_per_step * std::max(0, n - 1);
  p += rng.NextGaussian(0.0, options_.omission_noise);
  p = std::clamp(p, 0.0, options_.max_omission);
  std::set<std::string> dropped;
  for (const std::string& mention :
       llm_internal::ConstantMentions(condensed)) {
    if (rng.NextBool(p)) dropped.insert(mention);
  }
  return DropConstants(ApplyCompressingSynonyms(condensed), dropped);
}

std::string SimulatedLlm::RephraseTemplate(const std::string& text) const {
  Rng rng(options_.seed * 17 ^ HashText(text));
  std::string result = ApplySynonyms(text);
  if (rng.NextBool(options_.rephrase_token_drop)) {
    // Hallucination mode (§4.4): silently omit one rule variable — every
    // occurrence of one <token> disappears from the rephrased text. The
    // enhancer's preventive check is expected to catch this.
    size_t open = result.find('<');
    if (open != std::string::npos) {
      size_t close = result.find('>', open);
      if (close != std::string::npos) {
        const std::string token = result.substr(open, close - open + 1);
        result = ReplaceAll(result, token, "");
      }
    }
  }
  return result;
}

}  // namespace templex
