#ifndef TEMPLEX_LLM_SIMULATED_LLM_H_
#define TEMPLEX_LLM_SIMULATED_LLM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "llm/llm_client.h"

namespace templex {

// Behavioural parameters of the simulated LLM. The omission model is
// calibrated so that the fraction of constants lost grows roughly linearly
// with the number of input sentences, with summarization losing about twice
// as much as paraphrasis — the qualitative behaviour the paper measures for
// ChatGPT in Figure 17.
struct SimulatedLlmOptions {
  uint64_t seed = 20250325;

  // Omission probability per input sentence beyond the first, and its cap.
  double paraphrase_omission_per_step = 0.018;
  double summary_omission_per_step = 0.040;
  double max_omission = 0.85;
  // Gaussian noise on the omission probability (per call).
  double omission_noise = 0.03;

  // Probability that a template "rephrase" request drops one <token>
  // (simulating the template-hallucination/omission failure mode of §4.4
  // that the preventive token check must catch).
  double rephrase_token_drop = 0.10;

  // Sentence keep-probability for summarization (first and last sentences
  // are always kept).
  double summary_sentence_keep = 0.65;
};

// A deterministic, seedable stand-in for the GPT family used by the paper:
// it really rewrites text (synonym substitution, sentence dropping for
// summaries) and exhibits the measured failure mode — information loss
// growing with input length. Identical prompts always produce identical
// outputs (the per-call randomness is derived from the seed and a hash of
// the prompt), so every experiment is reproducible.
//
// Substitution note (see DESIGN.md): the paper's claims about the LLM
// baseline concern the *shape* of its information loss, not any particular
// model checkpoint; this class exercises the same measurement pipeline
// (verbalize proof -> rewrite -> count surviving constants).
class SimulatedLlm : public LlmClient {
 public:
  explicit SimulatedLlm(SimulatedLlmOptions options = SimulatedLlmOptions());

  Result<std::string> Complete(const std::string& prompt) override;

  const SimulatedLlmOptions& options() const { return options_; }

 private:
  std::string ParaphraseText(const std::string& text) const;
  std::string SummarizeText(const std::string& text) const;
  std::string RephraseTemplate(const std::string& text) const;

  SimulatedLlmOptions options_;
};

// Internal helpers exposed for testing.
namespace llm_internal {

// Splits `text` into word-level chunks and classifies each as a "constant
// mention" (contains a digit, or is capitalized mid-sentence) or plain
// prose. Used by the omission model to decide what can be dropped.
std::vector<std::string> ConstantMentions(const std::string& text);

}  // namespace llm_internal

}  // namespace templex

#endif  // TEMPLEX_LLM_SIMULATED_LLM_H_
