#ifndef TEMPLEX_LLM_LLM_CLIENT_H_
#define TEMPLEX_LLM_LLM_CLIENT_H_

#include <string>

#include "common/status.h"

namespace templex {

// Prompt prefixes used by the paper's experiments (§6.2) and pipeline
// (§4.2).
inline constexpr char kParaphrasePrompt[] =
    "Generate a paraphrased version of the following text: ";
inline constexpr char kSummarizePrompt[] =
    "Generate a summarized version of the following text: ";
inline constexpr char kRephrasePrompt[] = "Rephrase the following text: ";

// Abstract large-language-model client. The paper calls OpenAI's GPT
// models; this reproduction provides SimulatedLlm (llm/simulated_llm.h), a
// deterministic local stand-in, because forwarding data to an external API
// is exactly what the paper's approach exists to avoid.
class LlmClient {
 public:
  virtual ~LlmClient() = default;

  // Answers a free-form prompt.
  virtual Result<std::string> Complete(const std::string& prompt) = 0;

  // Convenience wrappers issuing the paper's prompts.
  Result<std::string> Paraphrase(const std::string& text) {
    return Complete(kParaphrasePrompt + text);
  }
  Result<std::string> Summarize(const std::string& text) {
    return Complete(kSummarizePrompt + text);
  }
};

}  // namespace templex

#endif  // TEMPLEX_LLM_LLM_CLIENT_H_
