#ifndef TEMPLEX_LLM_OMISSION_H_
#define TEMPLEX_LLM_OMISSION_H_

#include <string>
#include <vector>

#include "engine/proof.h"
#include "explain/glossary.h"

namespace templex {

// True when `needle` occurs in `text` as a whole token (not as a substring
// of a longer alphanumeric run — "7" does not match inside "17M").
bool ContainsWholeWord(const std::string& text, const std::string& needle);

// The completeness metric of Figure 17: the fraction of the proof's
// constants that do NOT appear in `text` under any of the glossary's
// renderings (plain, millions, percent, display string). 0.0 means the
// explanation is complete; 1.0 means everything was lost.
double OmittedInformationRatio(const Proof& proof, const std::string& text);

// The constants of `proof` missing from `text` (for diagnostics/tests).
std::vector<Value> MissingConstants(const Proof& proof,
                                    const std::string& text);

}  // namespace templex

#endif  // TEMPLEX_LLM_OMISSION_H_
