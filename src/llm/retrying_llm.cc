#include "llm/retrying_llm.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

namespace templex {

namespace {

// 1-2-5 ladder in milliseconds for the llm.retry.backoff_ms histogram (the
// default registry bounds are seconds-scaled latencies, wrong for waits).
std::vector<double> BackoffBoundsMs() {
  std::vector<double> bounds;
  for (double decade = 1.0; decade < 10000.0; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2.0);
    bounds.push_back(decade * 5.0);
  }
  bounds.push_back(10000.0);
  return bounds;
}

}  // namespace

bool IsTransientLlmError(StatusCode code) {
  return code == StatusCode::kResourceExhausted;
}

RetryingLlm::RetryingLlm(LlmClient* inner, RetryingLlmOptions options)
    : inner_(inner), options_(options) {
  if (options_.max_attempts < 1) options_.max_attempts = 1;
}

int64_t RetryingLlm::BackoffMillisForRetry(int retry) const {
  const double backoff =
      static_cast<double>(options_.initial_backoff_ms) *
      std::pow(options_.backoff_multiplier, retry - 1);
  return std::min(options_.max_backoff_ms,
                  static_cast<int64_t>(std::llround(backoff)));
}

Result<std::string> RetryingLlm::Complete(const std::string& prompt) {
  obs::MetricsRegistry* metrics = options_.metrics;
  for (int attempt = 1;; ++attempt) {
    TEMPLEX_RETURN_IF_ERROR(CheckInterruption(options_.deadline,
                                              options_.cancel, "llm call"));
    Result<std::string> completion = inner_->Complete(prompt);
    if (completion.ok()) return completion;
    if (!IsTransientLlmError(completion.status().code())) {
      if (metrics != nullptr) {
        metrics->counter("llm.failures.permanent")->Increment();
      }
      return completion;
    }
    if (metrics != nullptr) {
      metrics->counter("llm.failures.transient")->Increment();
    }
    if (attempt >= options_.max_attempts) {
      if (options_.event_log != nullptr) {
        options_.event_log->Log(
            obs::EventLevel::kError, "llm", "retries.exhausted",
            {{"attempts", std::to_string(attempt)},
             {"status", completion.status().ToString()}});
        if (!options_.event_log->options().crash_report_path.empty()) {
          Status dumped = options_.event_log->DumpNow(
              "llm retries exhausted: " + completion.status().ToString());
          (void)dumped;  // the terminal error wins; the dump is best effort
        }
      }
      return completion;
    }
    const int64_t backoff_ms = BackoffMillisForRetry(attempt);
    if (!options_.deadline.infinite() &&
        options_.deadline.RemainingMillis() <= backoff_ms) {
      return Status::DeadlineExceeded(
          "llm retry backoff of " + std::to_string(backoff_ms) +
          "ms would overrun the deadline; last error: " +
          completion.status().ToString());
    }
    if (metrics != nullptr) {
      metrics->counter("llm.retries")->Increment();
      metrics->histogram("llm.retry.backoff_ms", BackoffBoundsMs())
          ->Observe(static_cast<double>(backoff_ms));
    }
    if (options_.event_log != nullptr) {
      options_.event_log->Log(
          obs::EventLevel::kWarn, "llm", "retry",
          {{"attempt", std::to_string(attempt)},
           {"backoff_ms", std::to_string(backoff_ms)},
           {"status", completion.status().ToString()}});
    }
    if (options_.clock != nullptr) {
      options_.clock->AdvanceMillis(backoff_ms);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    }
  }
}

}  // namespace templex
