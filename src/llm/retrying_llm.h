#ifndef TEMPLEX_LLM_RETRYING_LLM_H_
#define TEMPLEX_LLM_RETRYING_LLM_H_

#include <cstdint>
#include <string>

#include "common/deadline.h"
#include "llm/llm_client.h"
#include "obs/event_log.h"
#include "obs/metrics.h"

namespace templex {

// True for error codes worth retrying: rate-limit/overload-class failures
// (kResourceExhausted). Permanent codes — malformed prompts, internal
// faults — propagate immediately, as do kDeadlineExceeded/kCancelled (the
// run's own budget is gone; another attempt cannot help).
bool IsTransientLlmError(StatusCode code);

struct RetryingLlmOptions {
  // Total attempts, including the first; must be >= 1.
  int max_attempts = 3;
  // Exponential backoff: initial * multiplier^(retry - 1), capped.
  // Deterministic (no jitter): a fixed fault seed replays a fixed schedule.
  int64_t initial_backoff_ms = 100;
  double backoff_multiplier = 2.0;
  int64_t max_backoff_ms = 2000;

  // Failure model (common/deadline.h). Checked before every attempt; a
  // backoff that would overrun the deadline is not taken — the call returns
  // kDeadlineExceeded immediately instead of sleeping into a lost cause.
  Deadline deadline;
  CancellationToken cancel;

  // When set, backoff advances this clock instead of sleeping the thread —
  // tests drive the full retry/deadline interplay in virtual time.
  VirtualClock* clock = nullptr;

  // Optional accounting (may be null; must outlive the decorator):
  //   llm.retries                    re-attempts taken
  //   llm.failures.transient         transient errors observed (pre-retry)
  //   llm.failures.permanent         permanent errors propagated
  //   llm.retry.backoff_ms           histogram of backoff waits, in ms
  obs::MetricsRegistry* metrics = nullptr;
  // Optional flight recorder (obs/event_log.h; may be null, must outlive
  // the decorator). Records each retry at warn level and, when the
  // attempts are exhausted, an error event followed by a crash-report dump
  // (if the log has a crash_report_path) — retry exhaustion is a terminal
  // failure the post-mortem must explain.
  obs::EventLog* event_log = nullptr;
};

// A bounded exponential-backoff retry decorator around any LlmClient.
// Retries only transient codes (IsTransientLlmError) and respects the
// deadline and cancellation token; whatever error survives the attempts is
// returned unchanged, so the caller's degradation policy (§4.4 fallback to
// deterministic template text) sees the true terminal failure.
class RetryingLlm : public LlmClient {
 public:
  explicit RetryingLlm(LlmClient* inner, RetryingLlmOptions options = {});

  Result<std::string> Complete(const std::string& prompt) override;

  // The deterministic backoff schedule: wait after the `retry`-th failed
  // attempt (1-based). Exposed for tests.
  int64_t BackoffMillisForRetry(int retry) const;

  const RetryingLlmOptions& options() const { return options_; }

 private:
  LlmClient* inner_;
  RetryingLlmOptions options_;
};

}  // namespace templex

#endif  // TEMPLEX_LLM_RETRYING_LLM_H_
