#include "llm/omission.h"

#include <cctype>

namespace templex {

namespace {

bool IsTokenChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '.' || c == '%';
}

// All textual forms under which a constant may legitimately appear in an
// explanation: raw display, millions suffix, percent rendering.
std::vector<std::string> Renderings(const Value& value) {
  std::vector<std::string> forms;
  forms.push_back(value.ToDisplayString());
  if (value.is_numeric()) {
    forms.push_back(FormatNumber(value.AsDouble(), NumberStyle::kMillions));
    forms.push_back(FormatNumber(value.AsDouble(), NumberStyle::kPercent));
  }
  return forms;
}

}  // namespace

bool ContainsWholeWord(const std::string& text, const std::string& needle) {
  if (needle.empty()) return false;
  size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsTokenChar(text[pos - 1]);
    const size_t end = pos + needle.size();
    const bool right_ok = end >= text.size() || !IsTokenChar(text[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

std::vector<Value> MissingConstants(const Proof& proof,
                                    const std::string& text) {
  std::vector<Value> missing;
  for (const Value& constant : proof.Constants()) {
    bool found = false;
    for (const std::string& form : Renderings(constant)) {
      if (ContainsWholeWord(text, form)) {
        found = true;
        break;
      }
    }
    if (!found) missing.push_back(constant);
  }
  return missing;
}

double OmittedInformationRatio(const Proof& proof, const std::string& text) {
  const std::vector<Value> constants = proof.Constants();
  if (constants.empty()) return 0.0;
  return static_cast<double>(MissingConstants(proof, text).size()) /
         static_cast<double>(constants.size());
}

}  // namespace templex
