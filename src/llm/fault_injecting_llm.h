#ifndef TEMPLEX_LLM_FAULT_INJECTING_LLM_H_
#define TEMPLEX_LLM_FAULT_INJECTING_LLM_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/deadline.h"
#include "llm/llm_client.h"

namespace templex {

// Behavioural parameters of the fault injector. Rates are cumulative-draw
// probabilities in [0, 1]; their sum should not exceed 1 (a single uniform
// draw per call decides which fault, if any, fires — transient first, so
// transient_error_rate = 1.0 means every call fails transiently).
struct FaultInjectingLlmOptions {
  uint64_t seed = 20250806;

  // Probability of a transient failure (kResourceExhausted — the
  // rate-limit/overload class RetryingLlm retries).
  double transient_error_rate = 0.0;
  // Probability of a permanent failure (kInternal — never retried).
  double permanent_error_rate = 0.0;
  // Probability of returning only a truncated prefix of the inner output
  // (a cut-off completion; downstream token checks must catch it).
  double truncate_rate = 0.0;
  // Probability of returning garbage text unrelated to the prompt
  // (a hallucinated completion; ditto).
  double garbage_rate = 0.0;

  // Simulated per-call latency, charged to `clock` before the outcome is
  // decided — so a Deadline on the same VirtualClock can expire mid-
  // pipeline and the deadline/latency interplay is testable without
  // sleeping. Ignored when `clock` is null.
  int64_t latency_ms = 0;
  VirtualClock* clock = nullptr;
};

// A seedable LlmClient decorator injecting deterministic faults, for chaos
// tests of the §4.4 degradation contract: however the LLM fails — error,
// truncation, garbage, latency — the explanation pipeline must survive and
// fall back to deterministic template text, never crash or silently drop a
// segment.
//
// Deterministic: each call's outcome is derived from (seed, call index,
// prompt), so a fixed seed replays the exact same fault sequence, while a
// retried prompt (new call index) can draw a different outcome — which is
// what lets retry tests model "transient" faults honestly.
//
// Thread-compatible: concurrent Complete() calls are safe (the call
// counter is atomic), though the interleaving then decides which call
// draws which fault.
class FaultInjectingLlm : public LlmClient {
 public:
  explicit FaultInjectingLlm(LlmClient* inner,
                             FaultInjectingLlmOptions options = {});

  Result<std::string> Complete(const std::string& prompt) override;

  const FaultInjectingLlmOptions& options() const { return options_; }

  // Accounting for test assertions.
  int64_t calls() const { return calls_.load(std::memory_order_relaxed); }
  int64_t injected_faults() const {
    return faults_.load(std::memory_order_relaxed);
  }

 private:
  LlmClient* inner_;
  FaultInjectingLlmOptions options_;
  std::atomic<int64_t> calls_{0};
  std::atomic<int64_t> faults_{0};
};

}  // namespace templex

#endif  // TEMPLEX_LLM_FAULT_INJECTING_LLM_H_
