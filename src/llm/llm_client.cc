#include "llm/llm_client.h"

// LlmClient is an interface; out-of-line anchor for the vtable.
