#ifndef TEMPLEX_SERVICE_TRANSPORT_H_
#define TEMPLEX_SERVICE_TRANSPORT_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/deadline.h"
#include "common/status.h"

namespace templex {

// Byte-stream transport abstraction for the service, mirroring common/fs.h:
// the production implementation is TCP, and InMemoryTransport gives the
// chaos tests a deterministic wire — scripted reads, mid-request
// disconnects, and slow-loris pacing with no real sockets or timing races.

// One accepted connection, owned by the request handler that serves it.
class ServerConnection {
 public:
  virtual ~ServerConnection() = default;

  // Reads up to `max` bytes into `buf`. Returns the count read (0 means the
  // peer half-closed: EOF), kDeadlineExceeded when `deadline` passed with
  // no bytes available (the slow-loris guard), or kUnavailable when the
  // peer reset the connection.
  virtual Result<size_t> Read(char* buf, size_t max,
                              const Deadline& deadline) = 0;

  // Writes all of `data`. kUnavailable when the peer is gone — the handler
  // drops the response; there is nobody to send it to.
  virtual Status Write(std::string_view data) = 0;

  // Closes the server side. Idempotent; the destructor also closes.
  virtual void Close() = 0;

  // Registers a callback fired when the peer abandons the connection, used
  // to cancel the in-flight query. The in-memory transport fires it
  // synchronously from InMemoryClient::Disconnect — deterministic
  // cancellation chaos. TCP fires it when a Read or Write observes the
  // reset (I/O boundaries are where a socket's death becomes visible
  // without a poller thread). May be invoked from another thread; at most
  // once; never after Close().
  virtual void OnPeerDisconnect(std::function<void()> callback) = 0;
};

class ServerTransport {
 public:
  virtual ~ServerTransport() = default;

  // Blocks for the next connection. kCancelled once Shutdown() was called
  // (the accept loop's exit signal).
  virtual Result<std::unique_ptr<ServerConnection>> Accept() = 0;

  // Unblocks Accept (now and forever). Idempotent, thread-safe.
  virtual void Shutdown() = 0;

  // Human-readable bound address ("127.0.0.1:8080", "mem").
  virtual std::string Address() const = 0;
};

// ---------------------------------------------------------------------------
// In-memory transport (tests).

class InMemoryTransport;

namespace internal {
struct InMemoryConnState;  // shared connection state (transport.cc)
}

// The test's end of one in-memory connection. Thread-safe; the server works
// the other end from its worker threads.
class InMemoryClient {
 public:
  // Queues request bytes for the server to Read. Call repeatedly to model
  // split frames; each call is one "packet" (a server Read drains at most
  // the queued bytes, so byte-at-a-time sends exercise incremental
  // parsing).
  void Send(std::string_view data);

  // Half-closes: the server's next Read past the queued bytes returns 0
  // (EOF) instead of blocking.
  void CloseSend();

  // Abandons the connection: pending reads fail kUnavailable and the
  // server's OnPeerDisconnect callback fires (synchronously, on this
  // thread) — the deterministic "client went away mid-query".
  void Disconnect();

  // Bytes the server wrote so far (the response accumulates here).
  std::string Received() const;

  // Blocks until the server closed its side (the response is complete,
  // one-request-per-connection) and returns every byte it wrote.
  // kDeadlineExceeded if that takes longer than `deadline`.
  Result<std::string> WaitForClose(const Deadline& deadline) const;

 private:
  friend class InMemoryTransport;
  explicit InMemoryClient(std::shared_ptr<internal::InMemoryConnState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<internal::InMemoryConnState> state_;
};

// Deterministic ServerTransport: tests create connections with Connect()
// and drive each end explicitly. No timers fire behind the test's back —
// every event (bytes, EOF, reset) happens exactly when the test says so.
class InMemoryTransport : public ServerTransport {
 public:
  InMemoryTransport();
  ~InMemoryTransport() override;

  Result<std::unique_ptr<ServerConnection>> Accept() override;
  void Shutdown() override;
  std::string Address() const override { return "mem"; }

  // Creates a connection and queues it for Accept. Returns the client end.
  InMemoryClient Connect();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// ---------------------------------------------------------------------------
// TCP transport (production).

// Listens on 127.0.0.1:`port` (0 picks a free port; read it back from
// port()). Accept wakes from Shutdown via a self-pipe, read deadlines are
// enforced with poll(), and writes ignore SIGPIPE (a dead peer is a status,
// not a process kill).
class TcpServerTransport : public ServerTransport {
 public:
  static Result<std::unique_ptr<TcpServerTransport>> Listen(int port);
  ~TcpServerTransport() override;

  Result<std::unique_ptr<ServerConnection>> Accept() override;
  void Shutdown() override;
  std::string Address() const override;

  // The actually-bound port (meaningful with Listen(0)).
  int port() const { return port_; }

 private:
  TcpServerTransport(int listen_fd, int wake_read_fd, int wake_write_fd,
                     int port);

  int listen_fd_;
  int wake_read_fd_;   // self-pipe: Shutdown writes, Accept polls
  int wake_write_fd_;
  int port_;
  std::mutex mu_;
  bool shutdown_ = false;
};

}  // namespace templex

#endif  // TEMPLEX_SERVICE_TRANSPORT_H_
