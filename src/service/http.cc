#include "service/http.h"

#include <algorithm>
#include <cctype>

namespace templex {
namespace {

// RFC 7230 token characters (header names, methods).
bool IsTokenChar(unsigned char c) {
  if (std::isalnum(c)) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

bool IsToken(std::string_view s) {
  if (s.empty()) return false;
  for (unsigned char c : s) {
    if (!IsTokenChar(c)) return false;
  }
  return true;
}

// Request targets are visible ASCII only — a target is routed and logged,
// so opaque bytes are rejected rather than passed through.
bool IsValidTarget(std::string_view s) {
  if (s.empty()) return false;
  for (unsigned char c : s) {
    if (c < 0x21 || c > 0x7e) return false;
  }
  return true;
}

// Header values: SP, HTAB, and any octet >= 0x21 except DEL's control
// neighbours are fine — values are opaque bytes (never decoded as UTF-8),
// but CTLs other than HTAB would let a value forge log lines or smuggle
// a CR/LF, so they are rejected.
bool IsValidHeaderValue(std::string_view s) {
  for (unsigned char c : s) {
    if (c == '\t' || c == ' ') continue;
    if (c >= 0x21 && c != 0x7f) continue;
    return false;
  }
  return true;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view StripOws(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

HttpRequestParser::HttpRequestParser(HttpLimits limits)
    : limits_(limits) {}

HttpRequestParser::State HttpRequestParser::Fail(int status,
                                                 std::string detail) {
  state_ = State::kError;
  error_status_ = status;
  error_detail_ = std::move(detail);
  buffer_.clear();
  return state_;
}

HttpRequestParser::State HttpRequestParser::Consume(std::string_view bytes) {
  if (state_ != State::kNeedMore) return state_;  // settled
  size_t pos = 0;
  while (true) {
    if (phase_ == Phase::kBody) {
      const size_t want = content_length_ - request_.body.size();
      const size_t take = std::min(want, bytes.size() - pos);
      request_.body.append(bytes.substr(pos, take));
      pos += take;
      if (request_.body.size() == content_length_) {
        state_ = State::kComplete;
        buffer_.clear();
      }
      return state_;  // trailing bytes past the body are dead (see http.h)
    }
    // Line-based phases: accumulate until a CRLF, with the phase's byte cap
    // enforced on the unterminated line so oversized garbage fails before
    // it is buffered whole.
    const size_t newline = bytes.find('\n', pos);
    const size_t chunk_end = newline == std::string_view::npos
                                 ? bytes.size()
                                 : newline + 1;
    buffer_.append(bytes.substr(pos, chunk_end - pos));
    pos = chunk_end;
    const bool have_line = !buffer_.empty() && buffer_.back() == '\n';
    if (phase_ == Phase::kRequestLine) {
      if (buffer_.size() > limits_.max_request_line_bytes) {
        return Fail(414, "request line exceeds " +
                             std::to_string(limits_.max_request_line_bytes) +
                             " bytes");
      }
    } else if (header_bytes_ + buffer_.size() > limits_.max_header_bytes) {
      return Fail(431, "headers exceed " +
                           std::to_string(limits_.max_header_bytes) +
                           " bytes");
    }
    if (!have_line) return state_;  // kNeedMore: wait for the CRLF
    if (buffer_.size() < 2 || buffer_[buffer_.size() - 2] != '\r') {
      return Fail(400, "bare LF line ending");
    }
    std::string_view line(buffer_.data(), buffer_.size() - 2);
    if (line.find('\r') != std::string_view::npos) {
      return Fail(400, "stray CR inside line");
    }
    if (phase_ == Phase::kRequestLine) {
      if (ParseRequestLine(line) == State::kError) return state_;
      phase_ = Phase::kHeaders;
    } else {
      header_bytes_ += buffer_.size();
      if (line.empty()) {
        if (BeginBody() != State::kNeedMore) return state_;
        phase_ = Phase::kBody;
      } else if (ParseHeaderLine(line) == State::kError) {
        return state_;
      }
    }
    buffer_.clear();
  }
}

HttpRequestParser::State HttpRequestParser::ParseRequestLine(
    std::string_view line) {
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) {
    return Fail(400, "malformed request line");
  }
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    return Fail(400, "malformed request line");
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  if (!IsToken(method)) return Fail(400, "invalid method token");
  if (!IsValidTarget(target)) return Fail(400, "invalid request target");
  if (version == "HTTP/1.1") {
    request_.version_minor = 1;
  } else if (version == "HTTP/1.0") {
    request_.version_minor = 0;
  } else if (version.size() == 8 && version.substr(0, 5) == "HTTP/" &&
             std::isdigit(static_cast<unsigned char>(version[5])) &&
             version[6] == '.' &&
             std::isdigit(static_cast<unsigned char>(version[7]))) {
    return Fail(505, "unsupported HTTP version");
  } else {
    return Fail(400, "malformed HTTP version");
  }
  request_.method.assign(method);
  request_.target.assign(target);
  return state_;
}

HttpRequestParser::State HttpRequestParser::ParseHeaderLine(
    std::string_view line) {
  if (line.front() == ' ' || line.front() == '\t') {
    return Fail(400, "obsolete line folding");
  }
  if (request_.headers.size() >= limits_.max_headers) {
    return Fail(431, "more than " + std::to_string(limits_.max_headers) +
                         " headers");
  }
  const size_t colon = line.find(':');
  if (colon == std::string_view::npos) {
    return Fail(400, "header line without colon");
  }
  const std::string_view name = line.substr(0, colon);
  if (!IsToken(name)) {
    // Covers both bad characters and "name : value" (whitespace before the
    // colon is a classic smuggling vector).
    return Fail(400, "invalid header name");
  }
  const std::string_view value = StripOws(line.substr(colon + 1));
  if (!IsValidHeaderValue(value)) {
    return Fail(400, "control bytes in header value");
  }
  request_.headers.emplace_back(ToLowerAscii(name), std::string(value));
  return state_;
}

HttpRequestParser::State HttpRequestParser::BeginBody() {
  if (request_.FindHeader("transfer-encoding") != nullptr) {
    return Fail(501, "Transfer-Encoding not implemented");
  }
  const std::string* length = nullptr;
  for (const auto& [key, value] : request_.headers) {
    if (key != "content-length") continue;
    if (length != nullptr) return Fail(400, "duplicate Content-Length");
    length = &value;
  }
  if (length == nullptr) {
    content_length_ = 0;
    state_ = State::kComplete;
    return state_;
  }
  if (length->empty() || length->size() > 18 ||
      !std::all_of(length->begin(), length->end(), [](unsigned char c) {
        return std::isdigit(c);
      })) {
    return Fail(400, "malformed Content-Length");
  }
  const unsigned long long declared = std::stoull(*length);
  if (declared > limits_.max_body_bytes) {
    return Fail(413, "body of " + *length + " bytes exceeds " +
                         std::to_string(limits_.max_body_bytes) + " bytes");
  }
  content_length_ = static_cast<size_t>(declared);
  if (content_length_ == 0) {
    state_ = State::kComplete;
    return state_;
  }
  request_.body.reserve(content_length_);
  return State::kNeedMore;
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 414: return "URI Too Long";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 499: return "Client Closed Request";  // nginx's convention
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string SerializeHttpResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    HttpReasonPhrase(response.status) + "\r\n";
  for (const auto& [key, value] : response.headers) {
    out += key;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

}  // namespace templex
