#ifndef TEMPLEX_SERVICE_SERVER_H_
#define TEMPLEX_SERVICE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/deadline.h"
#include "common/thread_pool.h"
#include "service/admission.h"
#include "service/http.h"
#include "service/snapshot.h"
#include "service/transport.h"

namespace templex {

class KnowledgeGraphApplication;  // apps/application.h
class MemoryBudget;               // common/memory.h
struct ChaseProgress;             // engine/chase.h

namespace obs {
class EventLog;  // obs/event_log.h
}

// Everything that bounds the server. Every knob exists to keep the process
// alive under abuse: read deadlines kill slow-loris peers, byte caps kill
// oversized frames, the admission options bound concurrency, and the drain
// deadline bounds shutdown.
struct ServerOptions {
  // Spawned worker threads handling requests (the accept loop is its own
  // thread).
  int num_workers = 4;
  // Accept-side cap on connections being handled or queued; connections
  // beyond it are answered 503 + Retry-After straight from the accept
  // thread — the bounded admission queue's outer wall (the
  // AdmissionController's concurrency cap is the inner, per-work-request
  // wall).
  int max_inflight = 64;
  AdmissionController::Options admission;
  HttpLimits http_limits;
  // Reading one full request must finish within this (slow-loris guard;
  // expiry answers 408).
  int64_t read_deadline_ms = 5000;
  // Per-request execution deadline: X-Deadline-Ms when given (clamped to
  // max_request_deadline_ms), this default otherwise.
  int64_t default_request_deadline_ms = 10000;
  int64_t max_request_deadline_ms = 60000;
  // WaitDrained gives in-flight requests this long, then cancels them.
  int64_t drain_deadline_ms = 5000;
  // Soft-watermark load shedding (see AdmissionController::Options);
  // may be null.
  MemoryBudget* budget = nullptr;
  obs::MetricsRegistry* metrics = nullptr;  // server.* instruments
  obs::EventLog* event_log = nullptr;       // "server" component events
  // Deadline clock (tests); null uses the steady clock.
  const VirtualClock* clock = nullptr;
  // Warm-start progress for /readyz's warming report; may be null. The
  // daemon points this at the ChaseProgress its startup chase publishes.
  const ChaseProgress* warmup = nullptr;
  // POST /reload: rebuilds a fresh application (load + chase) and returns
  // it for epoch publication. Null answers 501. Runs on a worker thread
  // under the request's deadline/cancellation; at most one reload runs at
  // a time (a second one answers 409).
  std::function<Result<std::shared_ptr<const KnowledgeGraphApplication>>(
      const Deadline&, const CancellationToken&)>
      rebuild;
};

// The hardened request loop: accepts connections, parses strictly, sheds
// explicitly, serves queries/explanations from the SnapshotRegistry's
// current epoch, and drains cleanly. One instance per process; the daemon
// (tools/templex_serve.cc) owns transport, registry, and observability and
// wires signals to RequestDrain.
//
// Endpoints (docs/API.md is the contract):
//   GET  /healthz  liveness, always 200 while the process accepts
//   GET  /readyz   200 once a snapshot is published; 503 warming/draining
//   GET  /metrics  Prometheus text exposition
//   POST /query    body: goal pattern, `_` for wildcards; answers one
//                  fact per line, byte-identical to templex_cli --query
//   POST /explain  body: fact literal; answers the explanation report
//   POST /reload   re-runs the rebuild hook, publishes the next epoch
//
// Work endpoints pass admission (X-Tenant picks the tenant bucket) and
// carry a deadline (X-Deadline-Ms) and a cancellation token tripped by
// client disconnect. Ops endpoints bypass admission: a saturated server
// must still answer its health checks.
class TemplexServer {
 public:
  TemplexServer(ServerTransport* transport, SnapshotRegistry* snapshots,
                ServerOptions options);
  // Drains (bounded by drain_deadline_ms) if nobody did.
  ~TemplexServer();

  TemplexServer(const TemplexServer&) = delete;
  TemplexServer& operator=(const TemplexServer&) = delete;

  // Spawns the accept thread and worker pool. Call once.
  void Start();

  // Stops accepting (new connections are shed 503, the transport wakes)
  // and flips admission to draining. Idempotent, thread- and
  // signal-context-safe apart from the event-log write.
  void RequestDrain();

  // Blocks until every in-flight connection finished, up to
  // drain_deadline_ms past the call; past the deadline, cancels the
  // stragglers' tokens, writes a crash report naming them, waits for the
  // unwind, and returns kDeadlineExceeded. OK on a clean drain.
  Status WaitDrained();

  // Connections currently being handled (tests/ops).
  int active_connections() const {
    return active_.load(std::memory_order_relaxed);
  }

 private:
  struct InflightRequest {
    std::string method;
    std::string target;
    std::string tenant;
    CancellationToken cancel;
  };

  void AcceptLoop();
  void HandleConnection(std::shared_ptr<ServerConnection> conn);
  // Reads and parses one request. OK: `request` is filled. Error: the
  // rejection was already answered (or the peer is gone) — close and move
  // on.
  Status ReadRequest(ServerConnection& conn, HttpRequest* request);
  HttpResponse Route(const HttpRequest& request, ServerConnection& conn);
  HttpResponse HandleOps(const HttpRequest& request);
  HttpResponse HandleWork(const HttpRequest& request,
                          ServerConnection& conn);
  HttpResponse HandleQuery(const KnowledgeGraphApplication& app,
                           const std::string& body, const Deadline& deadline,
                           const CancellationToken& cancel);
  HttpResponse HandleExplain(const KnowledgeGraphApplication& app,
                             const std::string& body);
  HttpResponse HandleReload(const Deadline& deadline,
                            const CancellationToken& cancel);
  HttpResponse ShedResponse(int status, const std::string& reason);
  void WriteResponse(ServerConnection& conn, const HttpResponse& response);
  void LogEvent(const char* name,
                std::vector<std::pair<std::string, std::string>> fields);
  void CountResponse(int status);

  ServerTransport* transport_;
  SnapshotRegistry* snapshots_;
  ServerOptions options_;
  AdmissionController admission_;

  std::unique_ptr<ThreadPool> pool_;
  std::thread accept_thread_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> reload_busy_{false};
  std::atomic<int> active_{0};
  std::atomic<int64_t> next_request_id_{1};
  mutable std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;  // active_ hit zero
  std::map<int64_t, InflightRequest> inflight_;
  bool started_ = false;
  bool drained_ = false;
};

}  // namespace templex

#endif  // TEMPLEX_SERVICE_SERVER_H_
