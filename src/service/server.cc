#include "service/server.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <utility>
#include <vector>

#include "apps/application.h"
#include "common/memory.h"
#include "datalog/parser.h"
#include "engine/query.h"
#include "obs/event_log.h"

namespace templex {
namespace {

// The CLI's pattern convention: a fact literal whose `_` arguments are
// wildcards (Value::Null). Kept in lockstep with tools/templex_cli.cc so
// POST /query answers are byte-identical to --query output.
Result<Fact> ParseGoalPattern(const std::string& text) {
  Result<Fact> fact = ParseFactLiteral(text);
  if (!fact.ok()) return fact;
  Fact pattern = std::move(fact).value();
  for (Value& arg : pattern.args) {
    if (arg.is_string() && arg.string_value() == "_") arg = Value::Null();
  }
  return pattern;
}

HttpResponse TextResponse(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.headers.emplace_back("Content-Type", "text/plain; charset=utf-8");
  response.body = std::move(body);
  return response;
}

HttpResponse ErrorResponse(int status, const std::string& detail) {
  return TextResponse(status, "error: " + detail + "\n");
}

// 408 for a blown deadline, 499 (client closed request) for cancellation —
// the response is mostly for the log; a disconnected peer never reads it.
HttpResponse InterruptResponse(const Status& status) {
  if (status.code() == StatusCode::kCancelled) {
    return ErrorResponse(499, "request cancelled: " + status.message());
  }
  return ErrorResponse(408, "request deadline exceeded");
}

}  // namespace

TemplexServer::TemplexServer(ServerTransport* transport,
                             SnapshotRegistry* snapshots,
                             ServerOptions options)
    : transport_(transport),
      snapshots_(snapshots),
      options_(std::move(options)),
      admission_([this] {
        AdmissionController::Options admission = options_.admission;
        admission.budget = options_.budget;
        admission.metrics = options_.metrics;
        return admission;
      }()) {}

TemplexServer::~TemplexServer() {
  if (started_ && !drained_) {
    Status ignored = WaitDrained();
    (void)ignored;  // the destructor has no caller to report to
  }
}

void TemplexServer::Start() {
  started_ = true;
  // ThreadPool(n) spawns n - 1 workers; Submit work only ever runs on
  // spawned workers, so size for num_workers of them.
  pool_ = std::make_unique<ThreadPool>(options_.num_workers + 1);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  LogEvent("start", {{"address", transport_->Address()},
                     {"workers", std::to_string(options_.num_workers)}});
}

void TemplexServer::RequestDrain() {
  const bool first = !draining_.exchange(true);
  admission_.BeginDrain();
  transport_->Shutdown();
  if (first) {
    LogEvent("drain.begin",
             {{"active", std::to_string(active_.load())}});
  }
}

Status TemplexServer::WaitDrained() {
  RequestDrain();
  const Deadline deadline =
      Deadline::AfterMillis(options_.drain_deadline_ms, options_.clock);
  {
    std::unique_lock<std::mutex> lock(inflight_mu_);
    while (active_.load(std::memory_order_acquire) > 0 &&
           !deadline.expired()) {
      inflight_cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
  }
  Status verdict = Status::OK();
  if (active_.load(std::memory_order_acquire) > 0) {
    // Deadline blown: cancel the stragglers and say exactly who they were
    // — the crash report names every in-flight request.
    std::vector<std::pair<std::string, std::string>> named;
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      for (auto& [id, request] : inflight_) {
        request.cancel.Cancel();
        named.emplace_back("request." + std::to_string(id),
                          request.method + " " + request.target +
                              " tenant=" + request.tenant);
        if (options_.metrics != nullptr) {
          options_.metrics->counter("server.drain.cancelled")->Increment();
        }
      }
    }
    named.emplace_back("active", std::to_string(active_.load()));
    LogEvent("drain.deadline", std::move(named));
    if (options_.event_log != nullptr) {
      Status dumped =
          options_.event_log->DumpNow("server drain deadline exceeded");
      (void)dumped;  // best effort; the drain verdict wins
    }
    verdict = Status(StatusCode::kDeadlineExceeded,
                     "drain deadline exceeded; in-flight requests "
                     "cancelled");
    // Cancelled handlers unwind at their next interruption point; wait for
    // them — the pool cannot be torn down under a running task anyway.
    std::unique_lock<std::mutex> lock(inflight_mu_);
    while (active_.load(std::memory_order_acquire) > 0) {
      inflight_cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  pool_.reset();  // drains any queued handlers (they shed: draining_)
  drained_ = true;
  LogEvent(verdict.ok() ? "drain.done" : "drain.cancelled_stragglers", {});
  return verdict;
}

void TemplexServer::AcceptLoop() {
  while (true) {
    Result<std::unique_ptr<ServerConnection>> accepted =
        transport_->Accept();
    if (!accepted.ok()) return;  // shutdown (or a dead transport)
    if (options_.metrics != nullptr) {
      options_.metrics->counter("server.connections")->Increment();
    }
    std::shared_ptr<ServerConnection> conn = std::move(accepted).value();
    if (draining_.load(std::memory_order_acquire)) {
      WriteResponse(*conn, ShedResponse(503, "draining"));
      conn->Close();
      continue;
    }
    if (active_.load(std::memory_order_acquire) >= options_.max_inflight) {
      // The outer wall: past it we answer straight from the accept thread
      // — queueing the connection would be the unbounded growth this
      // server exists to refuse.
      if (options_.metrics != nullptr) {
        options_.metrics->counter("server.admission.shed")->Increment();
        options_.metrics->counter("server.admission.shed.overflow")
            ->Increment();
      }
      LogEvent("request.shed", {{"reason", "overflow"}});
      WriteResponse(*conn, ShedResponse(503, "server at capacity"));
      conn->Close();
      continue;
    }
    active_.fetch_add(1, std::memory_order_acq_rel);
    if (options_.metrics != nullptr) {
      options_.metrics->gauge("server.inflight")
          ->Set(static_cast<double>(active_.load()));
    }
    pool_->Submit([this, conn] { HandleConnection(conn); });
  }
}

void TemplexServer::HandleConnection(std::shared_ptr<ServerConnection> conn) {
  const auto started = std::chrono::steady_clock::now();
  HttpRequest request;
  const Status read = ReadRequest(*conn, &request);
  if (read.ok()) {
    if (options_.metrics != nullptr) {
      options_.metrics->counter("server.requests")->Increment();
    }
    const HttpResponse response = Route(request, *conn);
    WriteResponse(*conn, response);
  }
  conn->Close();
  if (options_.metrics != nullptr) {
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - started;
    options_.metrics->histogram("server.request.seconds")
        ->Observe(elapsed.count());
  }
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    active_.fetch_sub(1, std::memory_order_acq_rel);
  }
  if (options_.metrics != nullptr) {
    options_.metrics->gauge("server.inflight")
        ->Set(static_cast<double>(active_.load()));
  }
  inflight_cv_.notify_all();
}

Status TemplexServer::ReadRequest(ServerConnection& conn,
                                  HttpRequest* request) {
  HttpRequestParser parser(options_.http_limits);
  const Deadline read_deadline =
      Deadline::AfterMillis(options_.read_deadline_ms, options_.clock);
  char buf[4096];
  size_t total = 0;
  while (true) {
    Result<size_t> n = conn.Read(buf, sizeof(buf), read_deadline);
    if (!n.ok()) {
      if (n.status().code() == StatusCode::kDeadlineExceeded) {
        // The slow-loris outcome: the peer kept the connection open but
        // never finished a request inside the read deadline.
        if (options_.metrics != nullptr) {
          options_.metrics->counter("server.http.read_timeouts")
              ->Increment();
        }
        WriteResponse(conn, ErrorResponse(408, "request read deadline"));
      } else if (options_.metrics != nullptr) {
        options_.metrics->counter("server.http.disconnects")->Increment();
      }
      return n.status();
    }
    if (n.value() == 0) {
      // EOF mid-request. A connection that never sent a byte is just a
      // probe (health checkers do this); anything else is truncated.
      if (total > 0) {
        if (options_.metrics != nullptr) {
          options_.metrics->counter("server.http.parse_errors")->Increment();
        }
        WriteResponse(conn, ErrorResponse(400, "truncated request"));
      }
      return Status(StatusCode::kInvalidArgument, "truncated request");
    }
    total += n.value();
    switch (parser.Consume(std::string_view(buf, n.value()))) {
      case HttpRequestParser::State::kComplete:
        *request = parser.request();
        return Status::OK();
      case HttpRequestParser::State::kError:
        if (options_.metrics != nullptr) {
          options_.metrics->counter("server.http.parse_errors")->Increment();
        }
        WriteResponse(conn, ErrorResponse(parser.error_status(),
                                          parser.error_detail()));
        return Status(StatusCode::kInvalidArgument, parser.error_detail());
      case HttpRequestParser::State::kNeedMore:
        break;
    }
  }
}

HttpResponse TemplexServer::Route(const HttpRequest& request,
                                  ServerConnection& conn) {
  const std::string& target = request.target;
  if (target == "/healthz" || target == "/readyz" || target == "/metrics") {
    if (request.method != "GET") {
      return ErrorResponse(405, "use GET for " + target);
    }
    return HandleOps(request);
  }
  if (target == "/query" || target == "/explain" || target == "/reload") {
    if (request.method != "POST") {
      return ErrorResponse(405, "use POST for " + target);
    }
    return HandleWork(request, conn);
  }
  return ErrorResponse(404, "no such endpoint: " + target);
}

HttpResponse TemplexServer::HandleOps(const HttpRequest& request) {
  if (request.target == "/healthz") {
    return TextResponse(200, "ok\n");
  }
  if (request.target == "/metrics") {
    if (options_.metrics == nullptr) {
      return ErrorResponse(404, "no metrics registry attached");
    }
    HttpResponse response;
    response.status = 200;
    response.headers.emplace_back("Content-Type",
                                  "text/plain; version=0.0.4");
    response.body =
        MetricsSnapshotToPrometheusText(options_.metrics->Snapshot());
    return response;
  }
  // /readyz: ready only once an epoch is published and we are not going
  // away. 503 keeps load balancers from routing to a warming/draining
  // instance; the body says which and how far along.
  if (draining_.load(std::memory_order_acquire)) {
    return TextResponse(503, "draining\n");
  }
  const int64_t epoch = snapshots_->epoch();
  if (epoch == 0) {
    std::string body = "warming";
    if (options_.warmup != nullptr) {
      body += " rounds=" +
              std::to_string(
                  options_.warmup->rounds.load(std::memory_order_relaxed)) +
              " facts=" +
              std::to_string(
                  options_.warmup->facts.load(std::memory_order_relaxed));
    }
    return TextResponse(503, body + "\n");
  }
  return TextResponse(200, "ready epoch=" + std::to_string(epoch) + "\n");
}

HttpResponse TemplexServer::HandleWork(const HttpRequest& request,
                                       ServerConnection& conn) {
  if (draining_.load(std::memory_order_acquire)) {
    return ShedResponse(503, "draining");
  }
  const std::string* tenant_header = request.FindHeader("x-tenant");
  const std::string tenant =
      tenant_header != nullptr ? *tenant_header : std::string();
  AdmissionTicket ticket(&admission_, tenant);
  if (!ticket.admitted()) {
    const char* reason = AdmissionController::VerdictName(ticket.verdict());
    LogEvent("request.shed", {{"reason", reason},
                              {"tenant", tenant},
                              {"target", request.target}});
    return ShedResponse(AdmissionController::ShedStatus(ticket.verdict()),
                        reason);
  }

  // Deadline: X-Deadline-Ms, clamped; malformed is the caller's bug.
  int64_t deadline_ms = options_.default_request_deadline_ms;
  if (const std::string* header = request.FindHeader("x-deadline-ms")) {
    if (header->empty() || header->size() > 9 ||
        !std::all_of(header->begin(), header->end(), [](unsigned char c) {
          return std::isdigit(c);
        })) {
      return ErrorResponse(400, "malformed X-Deadline-Ms");
    }
    deadline_ms = std::min<int64_t>(std::stoll(*header),
                                    options_.max_request_deadline_ms);
  }
  const Deadline deadline = Deadline::AfterMillis(deadline_ms, options_.clock);

  // Register the request: the drain path cancels via this registry and the
  // crash report names these fields; client disconnect cancels the token.
  CancellationToken cancel;
  const int64_t id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_[id] = InflightRequest{request.method, request.target, tenant,
                                    cancel};
  }
  conn.OnPeerDisconnect([cancel, this] {
    cancel.Cancel();
    if (options_.metrics != nullptr) {
      options_.metrics->counter("server.requests.cancelled")->Increment();
    }
  });

  HttpResponse response;
  if (request.target == "/reload") {
    response = HandleReload(deadline, cancel);
  } else {
    std::shared_ptr<const KnowledgeGraphApplication> snapshot =
        snapshots_->Current();
    if (snapshot == nullptr) {
      response = ShedResponse(503, "no snapshot published yet (warming)");
    } else if (request.target == "/query") {
      response = HandleQuery(*snapshot, request.body, deadline, cancel);
    } else {
      response = HandleExplain(*snapshot, request.body);
    }
  }
  if (cancel.cancelled() && response.status < 400) {
    // The peer left while we computed: the answer has no reader.
    LogEvent("request.cancelled", {{"target", request.target},
                                   {"tenant", tenant}});
    response = InterruptResponse(
        Status(StatusCode::kCancelled, "client disconnected"));
  }
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.erase(id);
  }
  return response;
}

HttpResponse TemplexServer::HandleQuery(const KnowledgeGraphApplication& app,
                                        const std::string& body,
                                        const Deadline& deadline,
                                        const CancellationToken& cancel) {
  Result<Fact> pattern = ParseGoalPattern(body);
  if (!pattern.ok()) {
    return ErrorResponse(400,
                         "malformed query goal: " + pattern.status().message());
  }
  const Status valid = ValidateGoalPattern(app.explainer().program(),
                                           app.facts(), pattern.value());
  if (!valid.ok()) return ErrorResponse(400, valid.message());
  const Status interrupted =
      CheckInterruption(deadline, cancel, "server query");
  if (!interrupted.ok()) return InterruptResponse(interrupted);
  // One fact per line, same ToString as templex_cli --query: the overload
  // chaos test diffs these bytes against the CLI's stdout.
  std::string out;
  for (const Fact& fact : app.Query(pattern.value())) {
    out += fact.ToString();
    out += "\n";
  }
  return TextResponse(200, std::move(out));
}

HttpResponse TemplexServer::HandleExplain(
    const KnowledgeGraphApplication& app, const std::string& body) {
  Result<Fact> goal = ParseFactLiteral(body);
  if (!goal.ok()) {
    return ErrorResponse(400,
                         "malformed fact literal: " + goal.status().message());
  }
  Result<std::string> report = app.Explain(goal.value());
  if (report.ok()) return TextResponse(200, std::move(report).value() + "\n");
  if (report.status().code() == StatusCode::kNotFound) {
    return ErrorResponse(404, report.status().message());
  }
  LogEvent("request.failed", {{"target", "/explain"},
                              {"error", report.status().ToString()}});
  return ErrorResponse(500, report.status().message());
}

HttpResponse TemplexServer::HandleReload(const Deadline& deadline,
                                         const CancellationToken& cancel) {
  if (!options_.rebuild) {
    return ErrorResponse(501, "no reload hook configured");
  }
  if (reload_busy_.exchange(true, std::memory_order_acq_rel)) {
    return ErrorResponse(409, "a reload is already running");
  }
  Result<std::shared_ptr<const KnowledgeGraphApplication>> rebuilt =
      options_.rebuild(deadline, cancel);
  reload_busy_.store(false, std::memory_order_release);
  if (!rebuilt.ok()) {
    if (options_.metrics != nullptr) {
      options_.metrics->counter("server.reload.failures")->Increment();
    }
    const StatusCode code = rebuilt.status().code();
    if (code == StatusCode::kCancelled ||
        code == StatusCode::kDeadlineExceeded) {
      return InterruptResponse(rebuilt.status());
    }
    return ErrorResponse(500, rebuilt.status().message());
  }
  const int64_t epoch = snapshots_->Publish(std::move(rebuilt).value());
  if (options_.metrics != nullptr) {
    options_.metrics->counter("server.reloads")->Increment();
  }
  LogEvent("reload.published", {{"epoch", std::to_string(epoch)}});
  return TextResponse(200, "epoch " + std::to_string(epoch) + "\n");
}

HttpResponse TemplexServer::ShedResponse(int status,
                                         const std::string& reason) {
  HttpResponse response = ErrorResponse(status, "shed: " + reason);
  response.headers.emplace_back(
      "Retry-After", std::to_string(admission_.retry_after_seconds()));
  return response;
}

void TemplexServer::WriteResponse(ServerConnection& conn,
                                  const HttpResponse& response) {
  CountResponse(response.status);
  if (!conn.Write(SerializeHttpResponse(response)).ok() &&
      options_.metrics != nullptr) {
    options_.metrics->counter("server.http.disconnects")->Increment();
  }
}

void TemplexServer::LogEvent(
    const char* name,
    std::vector<std::pair<std::string, std::string>> fields) {
  if (options_.event_log == nullptr) return;
  options_.event_log->Log(obs::EventLevel::kInfo, "server", name,
                          std::move(fields));
}

void TemplexServer::CountResponse(int status) {
  if (options_.metrics == nullptr) return;
  const char* bucket = status >= 500 ? "server.responses.5xx"
                       : status >= 400 ? "server.responses.4xx"
                                       : "server.responses.2xx";
  options_.metrics->counter(bucket)->Increment();
}

}  // namespace templex
