#include "service/admission.h"

#include "common/memory.h"

namespace templex {

AdmissionController::AdmissionController(Options options)
    : options_(options) {}

AdmissionController::Verdict AdmissionController::TryAdmit(
    const std::string& tenant) {
  Verdict verdict = Verdict::kAdmitted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      verdict = Verdict::kShedDraining;
    } else if (inflight_ >= options_.max_concurrent) {
      verdict = Verdict::kShedConcurrency;
    } else if (per_tenant_[tenant] >= options_.per_tenant_max) {
      verdict = Verdict::kShedTenantCap;
    } else if (options_.budget != nullptr &&
               options_.budget->options().soft_limit_bytes > 0 &&
               options_.budget->bytes() >=
                   options_.budget->options().soft_limit_bytes) {
      verdict = Verdict::kShedMemoryPressure;
    } else {
      ++inflight_;
      ++per_tenant_[tenant];
    }
  }
  if (options_.metrics != nullptr) {
    if (verdict == Verdict::kAdmitted) {
      options_.metrics->counter("server.admission.admitted")->Increment();
    } else {
      options_.metrics->counter("server.admission.shed")->Increment();
      options_.metrics
          ->counter(std::string("server.admission.shed.") +
                    VerdictName(verdict))
          ->Increment();
    }
  }
  return verdict;
}

void AdmissionController::Release(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  --inflight_;
  auto it = per_tenant_.find(tenant);
  if (it != per_tenant_.end() && --it->second <= 0) per_tenant_.erase(it);
}

void AdmissionController::BeginDrain() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
}

int AdmissionController::ShedStatus(Verdict verdict) {
  return verdict == Verdict::kShedTenantCap ? 429 : 503;
}

const char* AdmissionController::VerdictName(Verdict verdict) {
  switch (verdict) {
    case Verdict::kAdmitted: return "admitted";
    case Verdict::kShedConcurrency: return "concurrency";
    case Verdict::kShedTenantCap: return "tenant_cap";
    case Verdict::kShedMemoryPressure: return "memory_pressure";
    case Verdict::kShedDraining: return "draining";
  }
  return "unknown";
}

int AdmissionController::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

}  // namespace templex
