#include "service/snapshot.h"

#include "apps/application.h"

namespace templex {

int64_t SnapshotRegistry::Publish(
    std::shared_ptr<const KnowledgeGraphApplication> app) {
  std::shared_ptr<const KnowledgeGraphApplication> retired;
  int64_t epoch = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    retired = std::move(current_);  // destroyed outside the lock
    current_ = std::move(app);
    epoch = ++epoch_;
  }
  if (metrics_ != nullptr) {
    metrics_->gauge("server.snapshot.epoch")
        ->Set(static_cast<double>(epoch));
  }
  return epoch;
}

std::shared_ptr<const KnowledgeGraphApplication> SnapshotRegistry::Current()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

int64_t SnapshotRegistry::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

}  // namespace templex
