#ifndef TEMPLEX_SERVICE_SNAPSHOT_H_
#define TEMPLEX_SERVICE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <mutex>

#include "obs/metrics.h"

namespace templex {

class KnowledgeGraphApplication;  // apps/application.h

// Epoch-published immutable snapshots: the bridge between the (mutable,
// mid-chase) engine side and the (concurrent, read-only) request side.
//
// The chase runs to fixpoint off to the side; only a *finished* application
// is ever Publish()ed, and readers grab a shared_ptr under a micro-lock —
// they never block on reasoning and can never observe a half-built graph.
// A reload that publishes epoch N+1 does not disturb requests still holding
// epoch N; the old snapshot dies with its last reader (shared_ptr
// refcount). KnowledgeGraphApplication's Query/Explain are const, so any
// number of threads share one snapshot safely.
class SnapshotRegistry {
 public:
  explicit SnapshotRegistry(obs::MetricsRegistry* metrics = nullptr)
      : metrics_(metrics) {}

  // Publishes a finished application and returns its epoch (1-based,
  // monotonically increasing).
  int64_t Publish(std::shared_ptr<const KnowledgeGraphApplication> app);

  // The latest snapshot, or null before the first Publish (the server is
  // still warming up). Never blocks on a publish in progress.
  std::shared_ptr<const KnowledgeGraphApplication> Current() const;

  // Epoch of the latest snapshot; 0 before the first Publish.
  int64_t epoch() const;

 private:
  obs::MetricsRegistry* metrics_;
  mutable std::mutex mu_;
  std::shared_ptr<const KnowledgeGraphApplication> current_;
  int64_t epoch_ = 0;
};

}  // namespace templex

#endif  // TEMPLEX_SERVICE_SNAPSHOT_H_
