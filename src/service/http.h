#ifndef TEMPLEX_SERVICE_HTTP_H_
#define TEMPLEX_SERVICE_HTTP_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace templex {

// Byte caps for a single request, enforced *while* parsing — an attacker
// cannot make the parser buffer more than these before it fails the
// request. The defaults fit every legitimate templex request (a query
// pattern or a fact literal) with two orders of magnitude to spare.
struct HttpLimits {
  size_t max_request_line_bytes = 8 * 1024;   // method + target + version
  size_t max_header_bytes = 16 * 1024;        // all header lines combined
  size_t max_headers = 64;
  size_t max_body_bytes = 1024 * 1024;
};

// A parsed request. Header names are lower-cased at parse time (field names
// are case-insensitive); values keep their bytes verbatim apart from
// stripped leading/trailing SP/HTAB, and may contain arbitrary non-ASCII
// bytes — the parser treats values as opaque octets, never as UTF-8.
struct HttpRequest {
  std::string method;   // verbatim (method names are case-sensitive tokens)
  std::string target;   // origin-form, e.g. "/query"
  int version_minor = 1;  // HTTP/1.<minor>; only 0 and 1 are accepted
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  // First header with this name (give it lower-case); null when absent.
  const std::string* FindHeader(std::string_view name) const;
};

// Incremental, strict HTTP/1.1 request parser. Feed it reads as they
// arrive (any split, byte-at-a-time included); it buffers only up to the
// HttpLimits caps and fails fast on anything malformed instead of guessing.
//
// Strictness choices (each one closes a smuggling or resource hole):
//   - CRLF line endings only; a bare LF or a stray CR mid-line is a 400.
//   - No obs-fold (a header line starting with SP/HTAB is a 400).
//   - Header names must be RFC 7230 tokens; no whitespace before the colon.
//   - Content-Length must be a single, plain digit run; duplicates or a
//     comma list are a 400. Transfer-Encoding is not implemented: 501.
//   - Only HTTP/1.0 and HTTP/1.1 are accepted; other versions are a 505.
//   - Caps: request line over limit 414, headers over limit 431, declared
//     or actual body over limit 413.
//
// Bytes past the end of a complete request are ignored: the server speaks
// one request per connection and always answers `Connection: close`, so
// pipelined leftovers are dead bytes, not a second request.
class HttpRequestParser {
 public:
  enum class State {
    kNeedMore,   // valid so far; feed more bytes
    kComplete,   // request() is ready
    kError,      // error_status()/error_detail() describe the rejection
  };

  explicit HttpRequestParser(HttpLimits limits = HttpLimits());

  // Consumes one read's worth of bytes and returns the new state. Calling
  // after kComplete or kError is a no-op returning the settled state.
  State Consume(std::string_view bytes);

  State state() const { return state_; }
  // Valid once state() == kComplete.
  const HttpRequest& request() const { return request_; }
  // Valid once state() == kError: the HTTP status to answer with (400,
  // 413, 414, 431, 501, or 505) and a short human-readable reason.
  int error_status() const { return error_status_; }
  const std::string& error_detail() const { return error_detail_; }

 private:
  enum class Phase { kRequestLine, kHeaders, kBody };

  State Fail(int status, std::string detail);
  State ParseRequestLine(std::string_view line);
  State ParseHeaderLine(std::string_view line);
  // Runs after the blank line: validates Content-Length/Transfer-Encoding
  // and either completes the request or moves to the body phase.
  State BeginBody();

  HttpLimits limits_;
  State state_ = State::kNeedMore;
  Phase phase_ = Phase::kRequestLine;
  std::string buffer_;         // unconsumed line bytes for the current phase
  size_t header_bytes_ = 0;    // cumulative header-line bytes seen
  size_t content_length_ = 0;  // declared body size, once headers are done
  HttpRequest request_;
  int error_status_ = 0;
  std::string error_detail_;
};

// A response about to be serialized. Handlers fill status/body and any
// extra headers (e.g. Content-Type, Retry-After); serialization appends
// Content-Length and `Connection: close` itself.
struct HttpResponse {
  int status = 200;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
};

// Canonical reason phrase for the handful of statuses the service emits;
// unknown codes get "Unknown".
const char* HttpReasonPhrase(int status);

// Serializes `HTTP/1.1 <status> <reason>` + headers + body, adding
// Content-Length and `Connection: close` (one request per connection).
std::string SerializeHttpResponse(const HttpResponse& response);

}  // namespace templex

#endif  // TEMPLEX_SERVICE_HTTP_H_
