#ifndef TEMPLEX_SERVICE_ADMISSION_H_
#define TEMPLEX_SERVICE_ADMISSION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "obs/metrics.h"

namespace templex {

class MemoryBudget;  // common/memory.h

// Admission control for the service: every work request passes TryAdmit
// before any real work starts, and the verdict is either a slot (held by
// the RAII AdmissionTicket) or an explicit shed with the HTTP status and
// Retry-After to answer with. Shedding is the design, not a failure mode —
// a bounded server under overload answers fast with 429/503 instead of
// queueing unboundedly and dying slowly (ISSUE 10).
//
// Thread-safe; one instance per server.
class AdmissionController {
 public:
  struct Options {
    // Global cap on concurrently admitted requests.
    int max_concurrent = 8;
    // Per-tenant cap (X-Tenant header; requests without one share the
    // anonymous tenant ""). Keeps one noisy desk from starving the rest.
    int per_tenant_max = 4;
    // Retry-After seconds suggested on shed responses.
    int retry_after_seconds = 1;
    // Shed when the process footprint crossed the budget's soft watermark.
    // Live bytes, deliberately NOT MemoryBudget::pressure(): pressure() is
    // the sticky historical high-water mark, and a server that shed forever
    // because it was once hot would never recover. May be null.
    MemoryBudget* budget = nullptr;
    // server.admission.* counters; may be null.
    obs::MetricsRegistry* metrics = nullptr;
  };

  enum class Verdict {
    kAdmitted,
    kShedConcurrency,     // global cap hit            → 503
    kShedTenantCap,       // this tenant's cap hit     → 429
    kShedMemoryPressure,  // soft watermark crossed    → 503
    kShedDraining,        // server is shutting down   → 503
  };

  explicit AdmissionController(Options options);

  // The admit-or-shed decision for one request. On kAdmitted the slot is
  // held until Release(tenant) — pair via AdmissionTicket.
  Verdict TryAdmit(const std::string& tenant);
  void Release(const std::string& tenant);

  // Flips every future verdict to kShedDraining (admitted requests keep
  // their slots). One-way: a draining server never un-drains.
  void BeginDrain();

  // HTTP mapping for a shed verdict: 429 for the tenant cap (the caller is
  // the problem), 503 for server-wide conditions.
  static int ShedStatus(Verdict verdict);
  // Stable label for metrics/events ("concurrency", "tenant_cap", ...).
  static const char* VerdictName(Verdict verdict);

  int retry_after_seconds() const { return options_.retry_after_seconds; }
  int inflight() const;

 private:
  Options options_;
  mutable std::mutex mu_;
  int inflight_ = 0;
  std::map<std::string, int> per_tenant_;
  bool draining_ = false;
};

// RAII admission slot: releases on destruction when admitted, no-op
// otherwise.
class AdmissionTicket {
 public:
  AdmissionTicket(AdmissionController* controller, const std::string& tenant)
      : controller_(controller),
        tenant_(tenant),
        verdict_(controller->TryAdmit(tenant)) {}
  ~AdmissionTicket() {
    if (admitted()) controller_->Release(tenant_);
  }
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

  bool admitted() const {
    return verdict_ == AdmissionController::Verdict::kAdmitted;
  }
  AdmissionController::Verdict verdict() const { return verdict_; }

 private:
  AdmissionController* controller_;
  std::string tenant_;
  AdmissionController::Verdict verdict_;
};

}  // namespace templex

#endif  // TEMPLEX_SERVICE_ADMISSION_H_
