#include "service/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace templex {

// ---------------------------------------------------------------------------
// In-memory transport.

namespace internal {

// Both ends of one in-memory connection share this. The short cv waits in
// Read keep virtual-clock deadlines honest: expiry is re-checked every
// slice instead of being baked into a wall-clock wait_until.
struct InMemoryConnState {
  mutable std::mutex mu;
  mutable std::condition_variable cv;
  std::string to_server;         // bytes the client Sent, not yet Read
  bool send_closed = false;      // client half-closed (EOF after the bytes)
  bool disconnected = false;     // client reset the connection
  std::string to_client;         // bytes the server Wrote
  bool server_closed = false;
  std::function<void()> on_disconnect;
  bool disconnect_fired = false;
};

}  // namespace internal

void InMemoryClient::Send(std::string_view data) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->to_server.append(data);
  }
  state_->cv.notify_all();
}

void InMemoryClient::CloseSend() {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->send_closed = true;
  }
  state_->cv.notify_all();
}

void InMemoryClient::Disconnect() {
  std::function<void()> callback;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->disconnected = true;
    if (!state_->disconnect_fired) {
      state_->disconnect_fired = true;
      callback = std::move(state_->on_disconnect);
    }
  }
  state_->cv.notify_all();
  // Outside the lock: the callback cancels a token / pokes the server and
  // must be free to touch the connection.
  if (callback) callback();
}

std::string InMemoryClient::Received() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->to_client;
}

Result<std::string> InMemoryClient::WaitForClose(
    const Deadline& deadline) const {
  std::unique_lock<std::mutex> lock(state_->mu);
  while (!state_->server_closed) {
    if (deadline.expired()) {
      return Status(StatusCode::kDeadlineExceeded,
                    "server did not close the connection in time");
    }
    state_->cv.wait_for(lock, std::chrono::milliseconds(1));
  }
  return state_->to_client;
}

namespace {

class InMemoryServerConnection : public ServerConnection {
 public:
  explicit InMemoryServerConnection(
      std::shared_ptr<internal::InMemoryConnState> state)
      : state_(std::move(state)) {}

  ~InMemoryServerConnection() override { Close(); }

  Result<size_t> Read(char* buf, size_t max,
                      const Deadline& deadline) override {
    std::unique_lock<std::mutex> lock(state_->mu);
    while (true) {
      if (state_->disconnected) {
        return Status(StatusCode::kUnavailable, "connection reset by peer");
      }
      if (!state_->to_server.empty()) {
        const size_t n = std::min(max, state_->to_server.size());
        std::memcpy(buf, state_->to_server.data(), n);
        state_->to_server.erase(0, n);
        return n;
      }
      if (state_->send_closed) return size_t{0};  // EOF
      if (deadline.expired()) {
        return Status(StatusCode::kDeadlineExceeded, "read deadline");
      }
      state_->cv.wait_for(lock, std::chrono::milliseconds(1));
    }
  }

  Status Write(std::string_view data) override {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->disconnected) {
      return Status(StatusCode::kUnavailable, "connection reset by peer");
    }
    state_->to_client.append(data);
    return Status::OK();
  }

  void Close() override {
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      state_->server_closed = true;
      // The contract promises no callback after Close.
      state_->on_disconnect = nullptr;
    }
    state_->cv.notify_all();
  }

  void OnPeerDisconnect(std::function<void()> callback) override {
    bool fire_now = false;
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      if (state_->disconnected && !state_->disconnect_fired) {
        state_->disconnect_fired = true;
        fire_now = true;
      } else if (!state_->disconnected) {
        state_->on_disconnect = std::move(callback);
      }
    }
    if (fire_now && callback) callback();
  }

 private:
  std::shared_ptr<internal::InMemoryConnState> state_;
};

}  // namespace

struct InMemoryTransport::Impl {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::shared_ptr<internal::InMemoryConnState>> pending;
  bool shutdown = false;
};

InMemoryTransport::InMemoryTransport() : impl_(std::make_unique<Impl>()) {}

InMemoryTransport::~InMemoryTransport() { Shutdown(); }

Result<std::unique_ptr<ServerConnection>> InMemoryTransport::Accept() {
  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->cv.wait(lock, [&] {
    return impl_->shutdown || !impl_->pending.empty();
  });
  if (impl_->shutdown) {
    return Status(StatusCode::kCancelled, "transport shut down");
  }
  auto state = std::move(impl_->pending.front());
  impl_->pending.pop_front();
  return std::unique_ptr<ServerConnection>(
      new InMemoryServerConnection(std::move(state)));
}

void InMemoryTransport::Shutdown() {
  std::deque<std::shared_ptr<internal::InMemoryConnState>> orphans;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->shutdown = true;
    orphans.swap(impl_->pending);
  }
  impl_->cv.notify_all();
  // Reset queued-but-unaccepted connections, as a closed listener does:
  // their clients see the close (with zero response bytes) instead of
  // hanging until their own deadline.
  for (auto& state : orphans) {
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->server_closed = true;
    }
    state->cv.notify_all();
  }
}

InMemoryClient InMemoryTransport::Connect() {
  auto state = std::make_shared<internal::InMemoryConnState>();
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->pending.push_back(state);
  }
  impl_->cv.notify_all();
  return InMemoryClient(std::move(state));
}

// ---------------------------------------------------------------------------
// TCP transport.

namespace {

Status Errno(const char* what) {
  return Status(StatusCode::kUnavailable,
                std::string(what) + ": " + std::strerror(errno));
}

class TcpConnection : public ServerConnection {
 public:
  explicit TcpConnection(int fd) : fd_(fd) {}
  ~TcpConnection() override { Close(); }

  Result<size_t> Read(char* buf, size_t max,
                      const Deadline& deadline) override {
    while (true) {
      if (deadline.expired()) {
        return Status(StatusCode::kDeadlineExceeded, "read deadline");
      }
      // Short poll slices so expiry is re-checked even against a deadline
      // whose clock the kernel does not know about.
      const int64_t remaining = deadline.RemainingMillis();
      const int timeout_ms =
          static_cast<int>(std::min<int64_t>(remaining, 100));
      struct pollfd pfd = {fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, std::max(timeout_ms, 0));
      if (ready < 0) {
        if (errno == EINTR) continue;
        return Errno("poll");
      }
      if (ready == 0) continue;  // slice elapsed; re-check the deadline
      const ssize_t n = ::recv(fd_, buf, max, 0);
      if (n > 0) return static_cast<size_t>(n);
      if (n == 0) return size_t{0};  // EOF
      if (errno == EINTR) continue;
      FireDisconnect();
      return Errno("recv");
    }
  }

  Status Write(std::string_view data) override {
    size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        FireDisconnect();
        return Errno("send");
      }
      off += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  void Close() override {
    int fd = -1;
    {
      std::lock_guard<std::mutex> lock(mu_);
      fd = fd_;
      fd_ = -1;
      on_disconnect_ = nullptr;
    }
    if (fd >= 0) ::close(fd);
  }

  void OnPeerDisconnect(std::function<void()> callback) override {
    std::lock_guard<std::mutex> lock(mu_);
    on_disconnect_ = std::move(callback);
  }

 private:
  // A socket's death is only visible at I/O boundaries without a poller
  // thread; deterministic mid-request disconnect chaos lives in the
  // in-memory transport (see transport.h).
  void FireDisconnect() {
    std::function<void()> callback;
    {
      std::lock_guard<std::mutex> lock(mu_);
      callback = std::move(on_disconnect_);
      on_disconnect_ = nullptr;
    }
    if (callback) callback();
  }

  int fd_;
  std::mutex mu_;
  std::function<void()> on_disconnect_;
};

}  // namespace

Result<std::unique_ptr<TcpServerTransport>> TcpServerTransport::Listen(
    int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status = Errno("bind");
    ::close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) <
      0) {
    const Status status = Errno("getsockname");
    ::close(fd);
    return status;
  }
  if (::listen(fd, 128) < 0) {
    const Status status = Errno("listen");
    ::close(fd);
    return status;
  }
  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) {
    const Status status = Errno("pipe");
    ::close(fd);
    return status;
  }
  return std::unique_ptr<TcpServerTransport>(new TcpServerTransport(
      fd, pipe_fds[0], pipe_fds[1], ntohs(addr.sin_port)));
}

TcpServerTransport::TcpServerTransport(int listen_fd, int wake_read_fd,
                                       int wake_write_fd, int port)
    : listen_fd_(listen_fd),
      wake_read_fd_(wake_read_fd),
      wake_write_fd_(wake_write_fd),
      port_(port) {}

TcpServerTransport::~TcpServerTransport() {
  Shutdown();
  ::close(listen_fd_);
  ::close(wake_read_fd_);
}

Result<std::unique_ptr<ServerConnection>> TcpServerTransport::Accept() {
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) {
        return Status(StatusCode::kCancelled, "transport shut down");
      }
    }
    struct pollfd pfds[2] = {{listen_fd_, POLLIN, 0},
                             {wake_read_fd_, POLLIN, 0}};
    const int ready = ::poll(pfds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    if (pfds[1].revents != 0) {
      return Status(StatusCode::kCancelled, "transport shut down");
    }
    if (pfds[0].revents == 0) continue;
    const int conn_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (conn_fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return Errno("accept");
    }
    return std::unique_ptr<ServerConnection>(new TcpConnection(conn_fd));
  }
}

void TcpServerTransport::Shutdown() {
  bool first = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    first = !shutdown_;
    shutdown_ = true;
  }
  if (first) {
    const char byte = 'x';
    // Best effort; Accept also re-checks shutdown_ every wakeup.
    (void)!::write(wake_write_fd_, &byte, 1);
    ::close(wake_write_fd_);
  }
}

std::string TcpServerTransport::Address() const {
  return "127.0.0.1:" + std::to_string(port_);
}

}  // namespace templex
