#include "core/termination.h"

#include <algorithm>
#include <map>
#include <set>

namespace templex {

namespace {

// Predicate adjacency (body -> head), positive and negative bodies alike.
std::map<std::string, std::set<std::string>> BuildAdjacency(
    const Program& program) {
  std::map<std::string, std::set<std::string>> adjacency;
  for (const std::string& predicate : program.Predicates()) {
    adjacency[predicate];
  }
  for (const Rule& rule : program.rules()) {
    if (rule.is_constraint) continue;
    for (const Atom& atom : rule.body) {
      adjacency[atom.predicate].insert(rule.head.predicate);
    }
    for (const Atom& atom : rule.negative_body) {
      adjacency[atom.predicate].insert(rule.head.predicate);
    }
  }
  return adjacency;
}

// Iterative Tarjan SCC.
class SccFinder {
 public:
  explicit SccFinder(const std::map<std::string, std::set<std::string>>& adj)
      : adjacency_(adj) {}

  std::vector<std::vector<std::string>> Run() {
    for (const auto& [node, unused] : adjacency_) {
      if (index_.count(node) == 0) Strongconnect(node);
    }
    return components_;
  }

 private:
  void Strongconnect(const std::string& root) {
    struct Frame {
      std::string node;
      std::set<std::string>::const_iterator next;
    };
    std::vector<Frame> call_stack;
    auto push_node = [this, &call_stack](const std::string& node) {
      index_[node] = counter_;
      lowlink_[node] = counter_;
      ++counter_;
      stack_.push_back(node);
      on_stack_.insert(node);
      call_stack.push_back(Frame{node, adjacency_.at(node).begin()});
    };
    push_node(root);
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const auto& neighbors = adjacency_.at(frame.node);
      if (frame.next != neighbors.end()) {
        const std::string& next = *frame.next;
        ++frame.next;
        if (index_.count(next) == 0) {
          push_node(next);
        } else if (on_stack_.count(next) > 0) {
          lowlink_[frame.node] =
              std::min(lowlink_[frame.node], index_[next]);
        }
        continue;
      }
      // Node finished.
      if (lowlink_[frame.node] == index_[frame.node]) {
        std::vector<std::string> component;
        while (true) {
          std::string top = stack_.back();
          stack_.pop_back();
          on_stack_.erase(top);
          component.push_back(top);
          if (top == frame.node) break;
        }
        std::sort(component.begin(), component.end());
        components_.push_back(std::move(component));
      }
      const std::string finished = frame.node;
      call_stack.pop_back();
      if (!call_stack.empty()) {
        lowlink_[call_stack.back().node] = std::min(
            lowlink_[call_stack.back().node], lowlink_[finished]);
      }
    }
  }

  const std::map<std::string, std::set<std::string>>& adjacency_;
  std::map<std::string, int> index_;
  std::map<std::string, int> lowlink_;
  std::vector<std::string> stack_;
  std::set<std::string> on_stack_;
  std::vector<std::vector<std::string>> components_;
  int counter_ = 0;
};

}  // namespace

std::vector<std::vector<std::string>> PredicateSccs(const Program& program) {
  return SccFinder(BuildAdjacency(program)).Run();
}

std::string TerminationAnalysis::ToString() const {
  if (verdict == TerminationVerdict::kGuaranteed) {
    return "termination guaranteed on every finite instance";
  }
  std::string text = "termination is data-dependent:";
  for (const TerminationWarning& warning : warnings) {
    text += "\n  rule '" + warning.rule_label + "': " + warning.reason;
  }
  return text;
}

Result<TerminationAnalysis> AnalyzeTermination(const Program& program) {
  TEMPLEX_RETURN_IF_ERROR(program.Validate());
  TerminationAnalysis analysis;

  // Predicate -> SCC id; an SCC is recursive if it has >1 predicate or a
  // self-loop.
  const auto adjacency = BuildAdjacency(program);
  const auto components = PredicateSccs(program);
  std::map<std::string, int> component_of;
  for (size_t i = 0; i < components.size(); ++i) {
    for (const std::string& predicate : components[i]) {
      component_of[predicate] = static_cast<int>(i);
    }
  }
  auto is_recursive_component = [&](int id) {
    const auto& component = components[id];
    if (component.size() > 1) return true;
    const std::string& only = component[0];
    return adjacency.at(only).count(only) > 0;
  };

  for (const Rule& rule : program.rules()) {
    if (rule.is_constraint) continue;
    const int head_component = component_of.at(rule.head.predicate);
    // The rule participates in recursion iff some body predicate shares the
    // head's SCC (and that SCC is recursive).
    bool recursive = false;
    for (const Atom& atom : rule.body) {
      if (component_of.at(atom.predicate) == head_component &&
          is_recursive_component(head_component)) {
        recursive = true;
      }
    }
    if (!recursive) continue;

    // Value inventor 1: assignment-derived head arguments.
    std::set<std::string> assigned;
    for (const Assignment& a : rule.assignments) assigned.insert(a.variable);
    for (const Term& term : rule.head.terms) {
      if (term.is_variable() && assigned.count(term.variable_name()) > 0) {
        analysis.warnings.push_back(TerminationWarning{
            rule.label,
            "head argument <" + term.variable_name() +
                "> is computed by an arithmetic assignment inside a "
                "recursive component; cyclic data can generate fresh values "
                "forever"});
      }
    }
    // Value inventor 2: existential head variables.
    for (const std::string& var : rule.ExistentialVariableNames()) {
      analysis.warnings.push_back(TerminationWarning{
          rule.label,
          "existential head variable <" + var +
              "> inside a recursive component; the chase may keep inventing "
              "labelled nulls"});
    }
  }
  if (!analysis.warnings.empty()) {
    analysis.verdict = TerminationVerdict::kDataDependent;
  }
  return analysis;
}

}  // namespace templex
