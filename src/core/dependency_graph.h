#ifndef TEMPLEX_CORE_DEPENDENCY_GRAPH_H_
#define TEMPLEX_CORE_DEPENDENCY_GRAPH_H_

#include <string>
#include <vector>

#include "datalog/program.h"

namespace templex {

// One edge of the dependency graph D(Σ): `from` appears in the body of rule
// `rule_label`, whose head predicate is `to`. A rule with k body atoms
// contributes k parallel edges labelled with the same rule.
struct DependencyEdge {
  std::string from;
  std::string to;
  std::string rule_label;
  int rule_index = 0;

  bool operator==(const DependencyEdge& o) const {
    return from == o.from && to == o.to && rule_label == o.rule_label;
  }
};

// The dependency graph of a program (§3): vertices are predicates, edges
// run from body predicates to head predicates, labelled by rules.
class DependencyGraph {
 public:
  // Builds D(Σ). The leaf is the program's goal predicate.
  static DependencyGraph Build(const Program& program);

  const std::vector<std::string>& predicates() const { return predicates_; }
  const std::vector<DependencyEdge>& edges() const { return edges_; }
  const std::string& leaf() const { return leaf_; }

  bool IsExtensional(const std::string& predicate) const;

  // Root nodes: extensional predicates (they depend on no other node).
  std::vector<std::string> Roots() const;

  // Labels of the rules with `predicate` as head, in program order.
  std::vector<std::string> DerivingRules(const std::string& predicate) const;

  // Number of outgoing dependency edges of `predicate`, counting parallel
  // edges.
  int OutDegree(const std::string& predicate) const;

  // True iff a' ≺ a: a (possibly empty) path from `from` to `to` exists.
  // DependsOn(p, p) is true only if p lies on a cycle.
  bool DependsOn(const std::string& from, const std::string& to) const;

  // The program is recursive iff D(Σ) is cyclic.
  bool IsCyclic() const;

  // Critical nodes (Definition 4.1): V is critical when V is not
  // extensional and either it is the leaf node or it has more than one
  // outgoing dependency edge.
  //
  // Interpretation note: we read the definition's deg⁻(V) as the number of
  // outgoing edges. This is the only reading under which the paper's own
  // reasoning-path tables (Figure 10) follow from Definition 4.2 — with an
  // in-degree reading, Risk (two deriving rules in the stress test) would be
  // critical and Π7–Π9 could not pass through it.
  std::vector<std::string> CriticalNodes() const;

  // GraphViz DOT rendering (extensional nodes as boxes, critical nodes
  // doubled, edges labelled with rules).
  std::string ToDot() const;

 private:
  std::vector<std::string> predicates_;
  std::vector<DependencyEdge> edges_;
  std::vector<std::string> extensional_;
  std::string leaf_;
};

}  // namespace templex

#endif  // TEMPLEX_CORE_DEPENDENCY_GRAPH_H_
