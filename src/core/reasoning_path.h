#ifndef TEMPLEX_CORE_REASONING_PATH_H_
#define TEMPLEX_CORE_REASONING_PATH_H_

#include <string>
#include <vector>

namespace templex {

// A reasoning path (Definition 4.2): a database-independent "reasoning
// story" over the dependency graph, represented compactly as an ordered set
// of rule labels (bottom-up: rules whose bodies are grounded first, the
// rule deriving the target last).
//
// A simple reasoning path derives `target` (the leaf or a critical node)
// from root nodes. A reasoning cycle derives `target` using occurrences of
// the critical node `anchor` as closed inputs, i.e. it connects `anchor`
// back to `target`.
//
// Aggregation variants (§4.1, "Analysis of Aggregations"): for every rule
// of the path that carries an aggregate, a variant path exists in which
// that rule's aggregation is verbalized for multiple contributors (the
// "dashed edge" notation of Figure 5). `multi_agg_rules` lists the rules so
// marked; the base path has it empty and its aggregations are verbalized as
// single-contributor rules.
struct ReasoningPath {
  enum class Kind { kSimplePath, kCycle };

  Kind kind = Kind::kSimplePath;
  std::string name;                 // "Pi2", "Gamma1", "Pi3*1", ...
  std::vector<std::string> rules;   // bottom-up topological order
  std::string target;               // derived predicate
  std::string anchor;               // cycles only: the closed critical node
  std::vector<std::string> multi_agg_rules;

  bool is_cycle() const { return kind == Kind::kCycle; }
  bool is_aggregation_variant() const { return !multi_agg_rules.empty(); }

  // True iff `rule` is verbalized with the multi-contributor aggregation
  // wording in this path.
  bool IsMultiAggregation(const std::string& rule) const;

  // "Pi2 = {sigma1, sigma3}".
  std::string ToString() const;

  // Same rule multiset (order-insensitive comparison used by the mapper).
  bool SameRuleSet(const std::vector<std::string>& labels) const;
};

}  // namespace templex

#endif  // TEMPLEX_CORE_REASONING_PATH_H_
