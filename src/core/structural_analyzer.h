#ifndef TEMPLEX_CORE_STRUCTURAL_ANALYZER_H_
#define TEMPLEX_CORE_STRUCTURAL_ANALYZER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/dependency_graph.h"
#include "core/reasoning_path.h"
#include "datalog/program.h"

namespace templex {

namespace obs {
class MetricsRegistry;  // obs/metrics.h
class Tracer;           // obs/trace.h
}  // namespace obs

// Output of the preventive structural analysis (§4.1): the dependency
// graph, the base simple reasoning paths and reasoning cycles, and the
// full catalog including aggregation variants. The catalog is what the
// template generator verbalizes and the chase mapper searches.
struct StructuralAnalysis {
  DependencyGraph graph;
  std::vector<ReasoningPath> simple_paths;  // base (non-variant) paths
  std::vector<ReasoningPath> cycles;        // base (non-variant) cycles
  std::vector<ReasoningPath> catalog;       // base paths + all variants

  // Paper-style summary table (cf. Figure 10), with '*' marking paths whose
  // aggregation variant exists.
  std::string ToTable() const;
};

// Options for the path enumeration.
struct AnalyzerOptions {
  // Safety cap on the number of enumerated paths (the number of reasoning
  // paths can grow exponentially with rule fan-in).
  int max_paths = 10000;
  // Optional observability sinks (may be null): the analysis records a
  // "core.analyze" span, a core.phase.analysis.seconds histogram sample,
  // and path/cycle/catalog counters. Explainer::Create propagates its own
  // sinks here unless these are already set.
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
};

// Runs the structural analysis of `program` (which must have a goal
// predicate — the leaf of the dependency graph).
//
// Enumeration semantics, reverse-engineered from Definitions 4.1–4.2 and
// validated against every path table in the paper (Figures 4, 5, 10):
//  - a simple reasoning path for target T picks exactly one rule deriving
//    T, then, for every intensional predicate P required by a picked rule,
//    picks a nonempty subset of the not-yet-used rules deriving P
//    (a subset of size > 1 is a "joint" path such as Π5 = {σ1, σ2, σ3}),
//    recursively until every requirement is grounded in root nodes. Each
//    rule is used at most once per path, which bounds the enumeration.
//    Targets are the leaf and every critical node.
//  - a reasoning cycle from anchor A to target T (both critical) is
//    enumerated the same way, except that occurrences of A in rule bodies
//    are closed (taken as given, never derived) and at least one such
//    occurrence must be used.
//  - for every enumerated path and every nonempty subset of its
//    aggregation-carrying rules, an aggregation variant is added to the
//    catalog (Figure 5's dashed paths).
Result<StructuralAnalysis> AnalyzeProgram(const Program& program,
                                          const AnalyzerOptions& options =
                                              AnalyzerOptions());

}  // namespace templex

#endif  // TEMPLEX_CORE_STRUCTURAL_ANALYZER_H_
