#include "core/reasoning_path.h"

#include <algorithm>

#include "datalog/printer.h"

namespace templex {

bool ReasoningPath::IsMultiAggregation(const std::string& rule) const {
  return std::find(multi_agg_rules.begin(), multi_agg_rules.end(), rule) !=
         multi_agg_rules.end();
}

std::string ReasoningPath::ToString() const {
  return name + " = " + FormatRuleLabelSet(rules);
}

bool ReasoningPath::SameRuleSet(const std::vector<std::string>& labels) const {
  if (labels.size() != rules.size()) return false;
  std::vector<std::string> a = rules;
  std::vector<std::string> b = labels;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

}  // namespace templex
