#ifndef TEMPLEX_CORE_TERMINATION_H_
#define TEMPLEX_CORE_TERMINATION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/program.h"

namespace templex {

// Conservative static termination analysis.
//
// The paper restricts itself to "Vadalog programs involved in reasoning
// tasks whose termination is guaranteed" (§3, citing [6, 11]). This module
// makes that precondition checkable: under set semantics, a chase can only
// diverge if recursion keeps *inventing fresh values*. The analysis finds
// the recursive components of the dependency graph and flags the two value
// inventors inside them:
//
//  - an arithmetic/assignment-derived head argument in a recursive rule
//    (the close-link kappa2 pattern: share products shrink forever on
//    cyclic data);
//  - an existential head variable in a recursive rule (fresh labelled nulls
//    each round; the restricted-chase reuse helps but is not a guarantee).
//
// Monotonic aggregations do NOT invent unboundedly: their value set is
// determined by the (finite) set of contributor bindings, so the running
// sums of the control/stress programs are safe.
//
// The analysis is sound for warnings ("clean" programs really terminate on
// every finite instance) and deliberately incomplete the other way: a
// flagged program may still terminate (e.g. close links over acyclic
// ownership), which is why the engine keeps its max_facts/max_rounds guard
// rails instead of refusing to run.

enum class TerminationVerdict {
  // No value invention inside any recursive component: the chase reaches
  // fixpoint on every finite instance.
  kGuaranteed,
  // Value invention inside recursion: termination depends on the data.
  kDataDependent,
};

struct TerminationWarning {
  std::string rule_label;
  std::string reason;  // human-readable explanation of the risk
};

struct TerminationAnalysis {
  TerminationVerdict verdict = TerminationVerdict::kGuaranteed;
  std::vector<TerminationWarning> warnings;

  std::string ToString() const;
};

// Analyzes `program` (which must validate).
Result<TerminationAnalysis> AnalyzeTermination(const Program& program);

// Strongly connected components of the program's predicate dependency
// graph (positive and negative edges), in reverse topological order; each
// component lists predicates. Exposed for reuse and tests.
std::vector<std::vector<std::string>> PredicateSccs(const Program& program);

}  // namespace templex

#endif  // TEMPLEX_CORE_TERMINATION_H_
