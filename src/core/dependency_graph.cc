#include "core/dependency_graph.h"

#include <algorithm>
#include <set>

namespace templex {

DependencyGraph DependencyGraph::Build(const Program& program) {
  DependencyGraph graph;
  graph.predicates_ = program.Predicates();
  graph.extensional_ = program.ExtensionalPredicates();
  graph.leaf_ = program.goal_predicate();
  for (size_t i = 0; i < program.rules().size(); ++i) {
    const Rule& rule = program.rules()[i];
    if (rule.is_constraint) continue;  // constraints derive nothing
    std::set<std::string> seen;  // one edge per distinct body predicate
    for (const Atom& atom : rule.body) {
      if (!seen.insert(atom.predicate).second) continue;
      graph.edges_.push_back(DependencyEdge{atom.predicate,
                                            rule.head.predicate, rule.label,
                                            static_cast<int>(i)});
    }
  }
  return graph;
}

bool DependencyGraph::IsExtensional(const std::string& predicate) const {
  return std::find(extensional_.begin(), extensional_.end(), predicate) !=
         extensional_.end();
}

std::vector<std::string> DependencyGraph::Roots() const {
  return extensional_;
}

std::vector<std::string> DependencyGraph::DerivingRules(
    const std::string& predicate) const {
  std::vector<std::string> labels;
  for (const DependencyEdge& e : edges_) {
    if (e.to == predicate &&
        std::find(labels.begin(), labels.end(), e.rule_label) ==
            labels.end()) {
      labels.push_back(e.rule_label);
    }
  }
  return labels;
}

int DependencyGraph::OutDegree(const std::string& predicate) const {
  int degree = 0;
  for (const DependencyEdge& e : edges_) {
    if (e.from == predicate) ++degree;
  }
  return degree;
}

bool DependencyGraph::DependsOn(const std::string& from,
                                const std::string& to) const {
  // BFS over edges; self-reachability requires an actual cycle.
  std::vector<std::string> frontier = {from};
  std::set<std::string> visited;
  while (!frontier.empty()) {
    std::string current = std::move(frontier.back());
    frontier.pop_back();
    for (const DependencyEdge& e : edges_) {
      if (e.from != current) continue;
      if (e.to == to) return true;
      if (visited.insert(e.to).second) frontier.push_back(e.to);
    }
  }
  return false;
}

bool DependencyGraph::IsCyclic() const {
  for (const std::string& p : predicates_) {
    if (DependsOn(p, p)) return true;
  }
  return false;
}

std::vector<std::string> DependencyGraph::CriticalNodes() const {
  std::vector<std::string> critical;
  for (const std::string& p : predicates_) {
    if (IsExtensional(p)) continue;
    if (p == leaf_ || OutDegree(p) > 1) critical.push_back(p);
  }
  return critical;
}

std::string DependencyGraph::ToDot() const {
  std::vector<std::string> critical = CriticalNodes();
  auto is_critical = [&critical](const std::string& p) {
    return std::find(critical.begin(), critical.end(), p) != critical.end();
  };
  std::string dot = "digraph dependency {\n  rankdir=LR;\n";
  for (const std::string& p : predicates_) {
    dot += "  \"" + p + "\" [shape=" +
           (IsExtensional(p) ? "box" : "ellipse");
    if (is_critical(p)) dot += ", peripheries=2";
    if (p == leaf_) dot += ", style=bold";
    dot += "];\n";
  }
  for (const DependencyEdge& e : edges_) {
    dot += "  \"" + e.from + "\" -> \"" + e.to + "\" [label=\"" +
           e.rule_label + "\"];\n";
  }
  dot += "}\n";
  return dot;
}

}  // namespace templex
