#include "core/structural_analyzer.h"

#include <algorithm>
#include <map>
#include <set>

#include "obs/stage.h"

namespace templex {

namespace {

// Intensional predicates of a rule's body, in body order, deduplicated.
std::vector<std::string> IntensionalBodyPredicates(
    const Rule& rule, const DependencyGraph& graph) {
  std::vector<std::string> preds;
  for (const Atom& atom : rule.body) {
    if (graph.IsExtensional(atom.predicate)) continue;
    if (std::find(preds.begin(), preds.end(), atom.predicate) == preds.end()) {
      preds.push_back(atom.predicate);
    }
  }
  return preds;
}

// Enumerates reasoning paths for one (target, anchor) combination; anchor is
// empty for simple paths.
class PathEnumerator {
 public:
  PathEnumerator(const Program& program, const DependencyGraph& graph,
                 const AnalyzerOptions& options)
      : program_(program), graph_(graph), options_(options) {}

  // Appends enumerated paths to `out`. Returns ResourceExhausted when the
  // max_paths cap is hit.
  Status Enumerate(const std::string& target, const std::string& anchor,
                   std::vector<ReasoningPath>* out) {
    target_ = target;
    anchor_ = anchor;
    out_ = out;
    for (const std::string& rule_label : graph_.DerivingRules(target)) {
      State state;
      TEMPLEX_RETURN_IF_ERROR(UseRule(rule_label, &state));
      TEMPLEX_RETURN_IF_ERROR(Recurse(state));
    }
    return Status::OK();
  }

 private:
  struct State {
    std::vector<std::string> used;     // rules, in pick order
    std::vector<std::string> pending;  // predicates awaiting a choice
    std::map<std::string, std::vector<std::string>> inner_choice;
    bool anchor_used = false;
  };

  bool IsUsed(const State& state, const std::string& rule_label) const {
    return std::find(state.used.begin(), state.used.end(), rule_label) !=
           state.used.end();
  }

  // Marks `rule_label` used and queues its underived intensional body
  // predicates. Occurrences of the anchor are closed instead of queued.
  Status UseRule(const std::string& rule_label, State* state) {
    state->used.push_back(rule_label);
    const Rule* rule = program_.FindRule(rule_label);
    if (rule == nullptr) {
      return Status::Internal("rule not found: " + rule_label);
    }
    for (const std::string& pred : IntensionalBodyPredicates(*rule, graph_)) {
      if (!anchor_.empty() && pred == anchor_) {
        state->anchor_used = true;
        continue;
      }
      if (state->inner_choice.count(pred) > 0) continue;
      if (std::find(state->pending.begin(), state->pending.end(), pred) ==
          state->pending.end()) {
        state->pending.push_back(pred);
      }
    }
    return Status::OK();
  }

  Status Recurse(State state) {
    if (state.pending.empty()) {
      if (!anchor_.empty() && !state.anchor_used) return Status::OK();
      return Emit(state);
    }
    std::string pred = state.pending.front();
    state.pending.erase(state.pending.begin());
    std::vector<std::string> available;
    for (const std::string& r : graph_.DerivingRules(pred)) {
      if (!IsUsed(state, r)) available.push_back(r);
    }
    if (available.empty()) return Status::OK();  // dead end
    // Nonempty subsets, singletons first (stable "Figure 10" ordering).
    const int n = static_cast<int>(available.size());
    std::vector<unsigned> masks;
    for (unsigned mask = 1; mask < (1u << n); ++mask) masks.push_back(mask);
    std::stable_sort(masks.begin(), masks.end(),
                     [](unsigned a, unsigned b) {
                       int pa = __builtin_popcount(a);
                       int pb = __builtin_popcount(b);
                       return pa != pb ? pa < pb : a < b;
                     });
    for (unsigned mask : masks) {
      State next = state;
      std::vector<std::string> chosen;
      for (int i = 0; i < n; ++i) {
        if (mask & (1u << i)) chosen.push_back(available[i]);
      }
      next.inner_choice[pred] = chosen;
      bool ok = true;
      for (const std::string& r : chosen) {
        Status s = UseRule(r, &next);
        if (!s.ok()) return s;
        (void)ok;
      }
      TEMPLEX_RETURN_IF_ERROR(Recurse(std::move(next)));
    }
    return Status::OK();
  }

  Status Emit(const State& state) {
    if (static_cast<int>(out_->size()) >= options_.max_paths) {
      return Status::ResourceExhausted(
          "reasoning-path enumeration exceeded max_paths=" +
          std::to_string(options_.max_paths));
    }
    ReasoningPath path;
    path.kind = anchor_.empty() ? ReasoningPath::Kind::kSimplePath
                                : ReasoningPath::Kind::kCycle;
    path.target = target_;
    path.anchor = anchor_;
    path.rules = TopologicalOrder(state);
    // Dedup: the same rule set for the same (target, anchor) can be reached
    // through different choice orders.
    for (const ReasoningPath& existing : *out_) {
      if (existing.target == path.target && existing.anchor == path.anchor &&
          existing.SameRuleSet(path.rules)) {
        return Status::OK();
      }
    }
    out_->push_back(std::move(path));
    return Status::OK();
  }

  // Bottom-up order: a rule follows every rule chosen for the intensional
  // body predicates it consumes; the target rule comes last. Kahn's
  // algorithm with program-order tie-breaking.
  std::vector<std::string> TopologicalOrder(const State& state) const {
    const std::vector<std::string>& rules = state.used;
    auto choice_for = [&state](const std::string& pred)
        -> const std::vector<std::string>* {
      auto it = state.inner_choice.find(pred);
      return it == state.inner_choice.end() ? nullptr : &it->second;
    };
    // deps[r] = rules that must precede r.
    std::map<std::string, std::set<std::string>> deps;
    for (const std::string& r : rules) deps[r];
    for (const std::string& r : rules) {
      const Rule* rule = program_.FindRule(r);
      for (const std::string& pred :
           IntensionalBodyPredicates(*rule, graph_)) {
        if (!anchor_.empty() && pred == anchor_) continue;
        const std::vector<std::string>* chosen = choice_for(pred);
        if (chosen == nullptr) continue;
        for (const std::string& dep : *chosen) {
          if (dep != r) deps[r].insert(dep);
        }
      }
    }
    // The first used rule derives the target: force it last by making it
    // depend on every other rule.
    const std::string& target_rule = rules.front();
    for (const std::string& r : rules) {
      if (r != target_rule) deps[target_rule].insert(r);
    }
    std::vector<std::string> order;
    std::set<std::string> done;
    while (order.size() < rules.size()) {
      bool progressed = false;
      for (size_t i = 0; i < program_.rules().size(); ++i) {
        const std::string& label = program_.rules()[i].label;
        if (deps.count(label) == 0 || done.count(label) > 0) continue;
        bool ready = true;
        for (const std::string& dep : deps[label]) {
          if (done.count(dep) == 0) {
            ready = false;
            break;
          }
        }
        if (ready) {
          order.push_back(label);
          done.insert(label);
          progressed = true;
        }
      }
      if (!progressed) {
        // Cycle among chosen rules (mutually recursive predicates): fall
        // back to pick order, which is still deterministic.
        for (const std::string& r : rules) {
          if (done.insert(r).second) order.push_back(r);
        }
        break;
      }
    }
    return order;
  }

  const Program& program_;
  const DependencyGraph& graph_;
  const AnalyzerOptions& options_;
  std::string target_;
  std::string anchor_;
  std::vector<ReasoningPath>* out_ = nullptr;
};

// Rules of `path` that carry an aggregation.
std::vector<std::string> AggregationRules(const Program& program,
                                          const ReasoningPath& path) {
  std::vector<std::string> result;
  for (const std::string& label : path.rules) {
    const Rule* rule = program.FindRule(label);
    if (rule != nullptr && rule->has_aggregate()) result.push_back(label);
  }
  return result;
}

}  // namespace

std::string StructuralAnalysis::ToTable() const {
  auto has_variant = [this](const ReasoningPath& base) {
    for (const ReasoningPath& p : catalog) {
      if (p.is_aggregation_variant() && p.target == base.target &&
          p.anchor == base.anchor && p.SameRuleSet(base.rules)) {
        return true;
      }
    }
    return false;
  };
  std::string table = "Simple Reasoning Paths:\n";
  for (const ReasoningPath& p : simple_paths) {
    table += "  " + p.ToString() + (has_variant(p) ? " *" : "") + "\n";
  }
  table += "Reasoning Cycles:\n";
  for (const ReasoningPath& p : cycles) {
    table += "  " + p.ToString() + (has_variant(p) ? " *" : "") + "\n";
  }
  return table;
}

Result<StructuralAnalysis> AnalyzeProgram(const Program& program,
                                          const AnalyzerOptions& options) {
  obs::StageScope stage(options.metrics, options.tracer, "core.analyze",
                        "core.phase.analysis.seconds");
  TEMPLEX_RETURN_IF_ERROR(program.Validate());
  if (program.goal_predicate().empty()) {
    return Status::InvalidArgument(
        "structural analysis requires a goal predicate (@goal)");
  }
  StructuralAnalysis analysis;
  analysis.graph = DependencyGraph::Build(program);

  std::vector<std::string> targets = analysis.graph.CriticalNodes();
  if (std::find(targets.begin(), targets.end(),
                program.goal_predicate()) == targets.end()) {
    targets.insert(targets.begin(), program.goal_predicate());
  }

  PathEnumerator enumerator(program, analysis.graph, options);
  for (const std::string& target : targets) {
    TEMPLEX_RETURN_IF_ERROR(
        enumerator.Enumerate(target, "", &analysis.simple_paths));
  }
  const std::vector<std::string> criticals = analysis.graph.CriticalNodes();
  for (const std::string& anchor : criticals) {
    for (const std::string& target : criticals) {
      TEMPLEX_RETURN_IF_ERROR(
          enumerator.Enumerate(target, anchor, &analysis.cycles));
    }
  }

  // Names.
  for (size_t i = 0; i < analysis.simple_paths.size(); ++i) {
    analysis.simple_paths[i].name = "Pi" + std::to_string(i + 1);
  }
  for (size_t i = 0; i < analysis.cycles.size(); ++i) {
    analysis.cycles[i].name = "Gamma" + std::to_string(i + 1);
  }

  // Catalog: base paths plus aggregation variants (every nonempty subset of
  // each path's aggregation rules).
  auto add_with_variants = [&program, &analysis](const ReasoningPath& base) {
    analysis.catalog.push_back(base);
    std::vector<std::string> agg_rules = AggregationRules(program, base);
    const int n = static_cast<int>(agg_rules.size());
    int variant_index = 0;
    for (unsigned mask = 1; mask < (1u << n); ++mask) {
      ReasoningPath variant = base;
      variant.multi_agg_rules.clear();
      for (int i = 0; i < n; ++i) {
        if (mask & (1u << i)) variant.multi_agg_rules.push_back(agg_rules[i]);
      }
      variant.name = base.name + "*" + std::to_string(++variant_index);
      analysis.catalog.push_back(std::move(variant));
    }
  };
  for (const ReasoningPath& p : analysis.simple_paths) add_with_variants(p);
  for (const ReasoningPath& p : analysis.cycles) add_with_variants(p);

  if (options.metrics != nullptr) {
    options.metrics->counter("core.analysis.simple_paths")
        ->Increment(static_cast<int64_t>(analysis.simple_paths.size()));
    options.metrics->counter("core.analysis.cycles")
        ->Increment(static_cast<int64_t>(analysis.cycles.size()));
    options.metrics->counter("core.analysis.catalog")
        ->Increment(static_cast<int64_t>(analysis.catalog.size()));
  }
  return analysis;
}

}  // namespace templex
