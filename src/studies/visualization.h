#ifndef TEMPLEX_STUDIES_VISUALIZATION_H_
#define TEMPLEX_STUDIES_VISUALIZATION_H_

#include <map>
#include <string>
#include <vector>

#include "engine/proof.h"

namespace templex {

// A "visual KG" as shown to comprehension-study participants (§6.1): the
// graph rendering of the knowledge a textual explanation describes, kept as
// data so simulated readers can check it against the text. Figures 12/13
// are instances of this shape.
struct VizNode {
  std::string id;
  // Numeric properties, e.g. {"capital": 5, "shock": 14}.
  std::map<std::string, double> properties;
  // Flag-like derived markers, e.g. {"default"}.
  std::vector<std::string> markers;
};

struct VizEdge {
  std::string from;
  std::string to;
  std::string label;   // predicate, e.g. "Own", "LongTermDebts", "Control"
  double value = 0.0;  // share / amount
  bool has_value = false;
};

struct KgVisualization {
  std::vector<VizNode> nodes;
  std::vector<VizEdge> edges;

  VizNode* FindNode(const std::string& id);
  const VizNode* FindNode(const std::string& id) const;
  VizNode* EnsureNode(const std::string& id);

  // Stable textual rendering (tests, debugging).
  std::string ToString() const;

  bool operator==(const KgVisualization& other) const;
};

// Builds the ground-truth visualization of a proof: every fact of the proof
// (extensional and derived) becomes a node property, marker, or edge:
//  - Fact(entity)                      -> node
//  - Fact(entity, number)              -> node property named after the
//                                         predicate (lower-cased)
//  - Fact(entity, entity [, number]..) -> edge (first value = edge value)
//  - derived 1-ary facts               -> node markers ("default")
KgVisualization BuildVisualization(const Proof& proof);

}  // namespace templex

#endif  // TEMPLEX_STUDIES_VISUALIZATION_H_
