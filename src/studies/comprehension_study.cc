#include "studies/comprehension_study.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/number_format.h"
#include "common/string_util.h"

namespace templex {

namespace {

// All textual renderings a numeric value may have in an explanation.
std::vector<std::string> ValueForms(double value) {
  return {
      FormatDouble(value),
      FormatNumber(value, NumberStyle::kMillions),
      FormatNumber(value, NumberStyle::kPercent),
  };
}

// First whole-word occurrence of `needle` in `sentence` at or after
// `start`, or npos.
size_t FindWord(const std::string& sentence, const std::string& needle,
                size_t start) {
  size_t pos = start;
  while ((pos = sentence.find(needle, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !std::isalnum(static_cast<unsigned char>(
                                         sentence[pos - 1]));
    const size_t end = pos + needle.size();
    const bool right_ok =
        end >= sentence.size() ||
        !std::isalnum(static_cast<unsigned char>(sentence[end]));
    if (left_ok && right_ok) return pos;
    ++pos;
  }
  return std::string::npos;
}

// Position of the first whole-word occurrence of any rendering of `value`
// in `sentence` at or after `start`, or npos.
size_t FindValue(const std::string& sentence, double value,
                 size_t start = 0) {
  size_t best = std::string::npos;
  for (const std::string& form : ValueForms(value)) {
    size_t pos = FindWord(sentence, form, start);
    if (pos != std::string::npos && pos < best) best = pos;
  }
  return best;
}

size_t FindEntity(const std::string& sentence, const std::string& id,
                  size_t start = 0) {
  return FindWord(sentence, id, start);
}

// True if the sentence supports a valued edge in the order the glossary
// patterns use: source entity, then amount/share, then target entity
// ("<d> has <v> euros of debts with <c>", "<x> owns <s> of the shares of
// <y>").
bool MatchesOrderedEdge(const std::string& sentence, const VizEdge& edge) {
  size_t from_pos = FindEntity(sentence, edge.from);
  while (from_pos != std::string::npos) {
    const size_t value_pos = FindValue(sentence, edge.value, from_pos + 1);
    if (value_pos == std::string::npos) return false;
    if (FindEntity(sentence, edge.to, value_pos + 1) != std::string::npos) {
      return true;
    }
    from_pos = FindEntity(sentence, edge.from, from_pos + 1);
  }
  return false;
}

}  // namespace

double ScoreVisualizationAgainstText(const std::string& explanation,
                                     const KgVisualization& viz,
                                     double inattention, Rng* rng) {
  const std::vector<std::string> sentences = SplitSentences(explanation);
  double score = 0.0;
  auto maybe_skip = [rng, inattention]() {
    return rng != nullptr && rng->NextBool(inattention);
  };
  // An element the text never supports reads as a contradiction: the graph
  // claims something the report does not say. This is what lets readers
  // reject distractors with false edges, perturbed values, or rewired
  // chains.
  constexpr double kMismatchPenalty = 1.1;
  for (const VizEdge& edge : viz.edges) {
    if (maybe_skip()) continue;
    bool matched = false;
    for (const std::string& sentence : sentences) {
      if (edge.has_value ? MatchesOrderedEdge(sentence, edge)
                         : (FindEntity(sentence, edge.from) !=
                                std::string::npos &&
                            FindEntity(sentence, edge.to) !=
                                std::string::npos)) {
        matched = true;
        break;
      }
    }
    score += matched ? 1.0 : -kMismatchPenalty;
  }
  for (const VizNode& node : viz.nodes) {
    for (const auto& [key, value] : node.properties) {
      if (maybe_skip()) continue;
      bool matched = false;
      for (const std::string& sentence : sentences) {
        if (FindEntity(sentence, node.id) != std::string::npos &&
            FindValue(sentence, value) != std::string::npos) {
          matched = true;
          break;
        }
      }
      score += matched ? 1.0 : -kMismatchPenalty;
    }
  }
  // "Respectively"-list consistency: for two same-label contributors into
  // the same target, the order of the source mentions must match the order
  // of their value mentions within the sentence listing both — the check
  // that catches archetype III (incorrect order of aggregation values).
  for (size_t i = 0; i < viz.edges.size(); ++i) {
    for (size_t j = i + 1; j < viz.edges.size(); ++j) {
      const VizEdge& a = viz.edges[i];
      const VizEdge& b = viz.edges[j];
      if (a.to != b.to || a.from == b.from || a.label != b.label ||
          !a.has_value || !b.has_value || a.value == b.value) {
        continue;
      }
      if (maybe_skip()) continue;
      for (const std::string& sentence : sentences) {
        const size_t fa = FindEntity(sentence, a.from);
        const size_t fb = FindEntity(sentence, b.from);
        const size_t va = FindValue(sentence, a.value);
        const size_t vb = FindValue(sentence, b.value);
        if (fa == std::string::npos || fb == std::string::npos ||
            va == std::string::npos || vb == std::string::npos) {
          continue;
        }
        const bool consistent = (fa < fb) == (va < vb);
        score += consistent ? 0.5 : -0.8;
        break;
      }
    }
  }
  return score;
}

std::vector<ComprehensionCaseResult> RunComprehensionStudy(
    const std::vector<ComprehensionCase>& cases,
    const ComprehensionStudyOptions& options) {
  std::vector<ComprehensionCaseResult> results;
  Rng rng(options.seed);
  for (const ComprehensionCase& question : cases) {
    ComprehensionCaseResult result;
    result.name = question.name;
    for (int participant = 0; participant < options.participants;
         ++participant) {
      // Candidate order is shuffled per participant, as in the study.
      struct Candidate {
        const KgVisualization* viz;
        int distractor_index;  // -1 = truth
      };
      std::vector<Candidate> candidates;
      candidates.push_back(Candidate{&question.truth, -1});
      for (size_t d = 0; d < question.distractors.size(); ++d) {
        candidates.push_back(
            Candidate{&question.distractors[d].second, static_cast<int>(d)});
      }
      rng.Shuffle(candidates);
      double best_score = -1.0;
      std::vector<const Candidate*> best;
      for (const Candidate& candidate : candidates) {
        const double score = ScoreVisualizationAgainstText(
            question.explanation, *candidate.viz, options.inattention, &rng);
        if (score > best_score + 1e-9) {
          best_score = score;
          best = {&candidate};
        } else if (score > best_score - 1e-9) {
          best.push_back(&candidate);
        }
      }
      const Candidate* picked = best[rng.NextUint64(best.size())];
      ++result.participants;
      if (picked->distractor_index < 0) {
        ++result.correct;
      } else {
        ++result.errors[question.distractors[picked->distractor_index].first];
      }
    }
    results.push_back(std::move(result));
  }
  return results;
}

std::string ComprehensionTable(
    const std::vector<ComprehensionCaseResult>& results) {
  std::string table =
      "Case | Wrong Edge | Wrong Value | Incorrect Aggregation | "
      "Incorrect Chain | Correct\n";
  int total_correct = 0;
  int total = 0;
  for (size_t i = 0; i < results.size(); ++i) {
    const ComprehensionCaseResult& r = results[i];
    auto pct = [&r](ErrorArchetype a) {
      auto it = r.errors.find(a);
      const int count = it == r.errors.end() ? 0 : it->second;
      return 100.0 * count / std::max(1, r.participants);
    };
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%zu (%s) | %.0f%% | %.0f%% | %.0f%% | %.0f%% | %.0f%%\n",
                  i + 1, r.name.c_str(), pct(ErrorArchetype::kFalseEdge),
                  pct(ErrorArchetype::kWrongValue),
                  pct(ErrorArchetype::kWrongAggregationOrder),
                  pct(ErrorArchetype::kWrongChain), 100.0 * r.accuracy());
    table += line;
    total_correct += r.correct;
    total += r.participants;
  }
  char overall[64];
  std::snprintf(overall, sizeof(overall), "Overall accuracy: %.0f%%\n",
                100.0 * total_correct / std::max(1, total));
  table += overall;
  return table;
}

}  // namespace templex
