#ifndef TEMPLEX_STUDIES_ARCHETYPES_H_
#define TEMPLEX_STUDIES_ARCHETYPES_H_

#include "common/rng.h"
#include "studies/visualization.h"

namespace templex {

// The four error archetypes used to build wrong candidate visualizations
// for the comprehension study (§6.1), mirroring [26]:
//   I   a false edge is present,
//   II  a property/edge value is incorrect,
//   III the values of two aggregation contributors are swapped
//       (incorrect order of aggregation values),
//   IV  a chain edge is rewired to the wrong node (incorrect chain).
enum class ErrorArchetype {
  kFalseEdge = 1,
  kWrongValue = 2,
  kWrongAggregationOrder = 3,
  kWrongChain = 4,
};

const char* ErrorArchetypeToString(ErrorArchetype archetype);

// Applies `archetype` to a copy of `truth`, guaranteeing the result differs
// from `truth`. Archetypes that are not applicable to the given graph
// (e.g. no aggregation to reorder) degrade to kWrongValue, then to
// kFalseEdge; the archetype actually applied is returned via
// `applied` (may be null).
KgVisualization ApplyArchetype(const KgVisualization& truth,
                               ErrorArchetype archetype, Rng* rng,
                               ErrorArchetype* applied = nullptr);

}  // namespace templex

#endif  // TEMPLEX_STUDIES_ARCHETYPES_H_
