#include "studies/expert_study.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "common/rng.h"
#include "common/string_util.h"
#include "stats/descriptive.h"

namespace templex {

const char* ExplanationMethodToString(ExplanationMethod method) {
  switch (method) {
    case ExplanationMethod::kGptParaphrase:
      return "Paraphrasis";
    case ExplanationMethod::kGptSummary:
      return "Summary";
    case ExplanationMethod::kTemplateBased:
      return "Templates";
  }
  return "?";
}

namespace {

// Fraction of repeated word 4-grams: a proxy for repetitive, boilerplate
// prose (deterministic explanations score high; rewritten ones lower).
double RepetitionRatio(const std::string& text) {
  std::vector<std::string> words;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(std::tolower(static_cast<unsigned char>(c)));
    } else if (!current.empty()) {
      words.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) words.push_back(current);
  if (words.size() < 8) return 0.0;
  std::map<std::string, int> grams;
  int repeated = 0;
  int total = 0;
  for (size_t i = 0; i + 4 <= words.size(); ++i) {
    std::string gram =
        words[i] + " " + words[i + 1] + " " + words[i + 2] + " " + words[i + 3];
    if (++grams[gram] > 1) ++repeated;
    ++total;
  }
  return total == 0 ? 0.0 : static_cast<double>(repeated) / total;
}

// Fraction of sentences opening with the verbalizer's "Since" boilerplate:
// monotony penalty.
double MonotonyRatio(const std::string& text) {
  const std::vector<std::string> sentences = SplitSentences(text);
  if (sentences.empty()) return 0.0;
  int since = 0;
  for (const std::string& s : sentences) {
    if (s.starts_with("Since ") || s.starts_with("Given that ")) ++since;
  }
  return static_cast<double>(since) / static_cast<double>(sentences.size());
}

}  // namespace

double TextQualityScore(const std::string& text,
                        const std::string& deterministic_reference,
                        double completeness) {
  if (text.empty()) return 0.0;
  // Compactness as a reader perceives it: a saturating judgment, not a
  // ruler. Anything noticeably shorter than the verbose reference (< ~90%)
  // reads as "concise"; only texts nearly as long as (or longer than) the
  // reference get marked down.
  double compactness = 1.0;
  if (!deterministic_reference.empty()) {
    const double ratio = static_cast<double>(text.size()) /
                         static_cast<double>(deterministic_reference.size());
    compactness = std::clamp((1.05 - ratio) / 0.15, 0.0, 1.0);
  }
  // Vague placeholders ("some amount", "another party") read evasive: a
  // grader marks them down even before checking completeness.
  const double vagueness =
      0.15 * (CountOccurrences(text, "some amount") +
              CountOccurrences(text, "another party") +
              CountOccurrences(text, "a certain amount"));
  const double fluency =
      std::clamp(1.0 - 1.5 * RepetitionRatio(text) -
                     0.45 * MonotonyRatio(text) - vagueness,
                 0.0, 1.0);
  const double completeness_clamped = std::clamp(completeness, 0.0, 1.0);
  // Experts value completeness most, then fluency, then compactness.
  return 0.50 * completeness_clamped + 0.30 * fluency + 0.20 * compactness;
}

std::string ExpertStudyResult::ToTable() const {
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "          | Paraphrasis | Summary | Templates\n"
      "Mean      |   %5.2f     |  %5.2f  |  %5.2f\n"
      "Std. Dev. |   %5.2f     |  %5.2f  |  %5.2f\n"
      "Wilcoxon p (paraphrasis vs templates): %.4f\n"
      "Wilcoxon p (summary vs templates):     %.4f\n"
      "Wilcoxon p (paraphrasis vs summary):   %.4f\n",
      mean[0], mean[1], mean[2], stddev[0], stddev[1], stddev[2],
      paraphrase_vs_templates.p_value, summary_vs_templates.p_value,
      paraphrase_vs_summary.p_value);
  return buffer;
}

Result<ExpertStudyResult> RunExpertStudy(
    const std::vector<ExpertScenario>& scenarios,
    const ExpertStudyOptions& options) {
  if (scenarios.empty()) {
    return Status::InvalidArgument("expert study needs at least one scenario");
  }
  Rng rng(options.seed);
  ExpertStudyResult result;
  for (int expert = 0; expert < options.experts; ++expert) {
    const double bias = rng.NextGaussian(0.0, options.expert_bias_stddev);
    for (const ExpertScenario& scenario : scenarios) {
      for (int m = 0; m < 3; ++m) {
        const double quality = TextQualityScore(
            scenario.texts[m], scenario.deterministic,
            scenario.completeness[m]);
        // Latent grade: quality in [0,1] stretched over the Likert range,
        // calibrated so the study's texts land in the paper's high-3s.
        double latent = 0.45 + 4.3 * quality + bias +
                        rng.NextGaussian(0.0, options.grade_noise_stddev);
        double grade = std::clamp(std::round(latent), 1.0, 5.0);
        result.grades[m].push_back(grade);
      }
    }
  }
  for (int m = 0; m < 3; ++m) {
    result.mean[m] = Mean(result.grades[m]);
    result.stddev[m] = StdDev(result.grades[m]);
  }
  // When nearly all paired grades coincide the test has fewer than the
  // minimum effective pairs; that is the strongest possible evidence of "no
  // difference", reported as p = 1.
  auto test_or_unity = [](const std::vector<double>& a,
                          const std::vector<double>& b) {
    Result<WilcoxonResult> r = WilcoxonSignedRank(a, b);
    if (r.ok()) return r.value();
    WilcoxonResult unity;
    unity.p_value = 1.0;
    return unity;
  };
  result.paraphrase_vs_templates =
      test_or_unity(result.grades[0], result.grades[2]);
  result.summary_vs_templates =
      test_or_unity(result.grades[1], result.grades[2]);
  result.paraphrase_vs_summary =
      test_or_unity(result.grades[0], result.grades[1]);
  return result;
}

}  // namespace templex
