#ifndef TEMPLEX_STUDIES_EXPERT_STUDY_H_
#define TEMPLEX_STUDIES_EXPERT_STUDY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "stats/wilcoxon.h"

namespace templex {

// The three explanation methodologies compared in the expert study (§6.2).
enum class ExplanationMethod {
  kGptParaphrase = 0,
  kGptSummary = 1,
  kTemplateBased = 2,
};

const char* ExplanationMethodToString(ExplanationMethod method);

// One scenario shown to every expert: the three candidate texts explaining
// the same proof, plus the reference data a grader needs (the verbose
// deterministic explanation as the length baseline, and each text's
// completeness = 1 - omitted-information ratio).
struct ExpertScenario {
  std::string name;
  std::string deterministic;  // reference verbose explanation
  std::string texts[3];       // indexed by ExplanationMethod
  double completeness[3] = {1.0, 1.0, 1.0};
};

struct ExpertStudyOptions {
  int experts = 14;
  uint64_t seed = 7;
  // Grader model spread: per-expert leniency bias and per-grade noise (on
  // the latent quality score before rounding to the 5-point Likert scale).
  double expert_bias_stddev = 0.45;
  double grade_noise_stddev = 0.85;
};

// Intrinsic text quality in [0, 1] as a grader perceives it: a weighted
// blend of completeness, compactness w.r.t. the deterministic reference,
// and a fluency proxy (penalizing monotonous "Since ... then ..." chains
// and repeated fragments). Exposed for tests and ablations.
double TextQualityScore(const std::string& text,
                        const std::string& deterministic_reference,
                        double completeness);

struct ExpertStudyResult {
  // Likert grades per method, one entry per (expert, scenario) pair.
  std::vector<double> grades[3];
  double mean[3] = {0, 0, 0};
  double stddev[3] = {0, 0, 0};
  // Pairwise two-sided Wilcoxon signed-rank tests.
  WilcoxonResult paraphrase_vs_templates;
  WilcoxonResult summary_vs_templates;
  WilcoxonResult paraphrase_vs_summary;

  // Figure 16-style table plus the p-values.
  std::string ToTable() const;
};

// Runs the simulated expert study: every expert grades every scenario's
// three texts on a 5-point Likert scale; grades derive from the texts'
// intrinsic quality plus expert bias and noise. Requires a non-empty
// scenario list.
Result<ExpertStudyResult> RunExpertStudy(
    const std::vector<ExpertScenario>& scenarios,
    const ExpertStudyOptions& options);

}  // namespace templex

#endif  // TEMPLEX_STUDIES_EXPERT_STUDY_H_
