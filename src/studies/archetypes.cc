#include "studies/archetypes.h"

#include <algorithm>

namespace templex {

namespace {

// Perturbs a numeric value into a clearly different one, far enough away
// that it will not coincide with another value mentioned in the same
// explanation (values in our instances are small).
double PerturbValue(double value, Rng* rng) {
  double changed = value * 3.0 + static_cast<double>(rng->NextInt(31, 67));
  if (changed == value) changed = value + 41.0;
  return changed;
}

bool TryFalseEdge(KgVisualization* viz, Rng* rng) {
  if (viz->nodes.size() < 2) return false;
  for (int attempt = 0; attempt < 32; ++attempt) {
    const std::string& from =
        viz->nodes[rng->NextUint64(viz->nodes.size())].id;
    const std::string& to = viz->nodes[rng->NextUint64(viz->nodes.size())].id;
    if (from == to) continue;
    std::string label =
        viz->edges.empty() ? "Own" : viz->edges[rng->NextUint64(
                                                    viz->edges.size())]
                                         .label;
    bool duplicate = false;
    for (const VizEdge& e : viz->edges) {
      if (e.from == from && e.to == to && e.label == label) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    VizEdge edge;
    edge.from = from;
    edge.to = to;
    edge.label = label;
    edge.value = static_cast<double>(rng->NextInt(1, 9));
    edge.has_value = true;
    viz->edges.push_back(std::move(edge));
    return true;
  }
  return false;
}

bool TryWrongValue(KgVisualization* viz, Rng* rng) {
  // Candidates: valued edges and node properties.
  std::vector<VizEdge*> valued;
  for (VizEdge& e : viz->edges) {
    if (e.has_value) valued.push_back(&e);
  }
  std::vector<std::pair<VizNode*, std::string>> properties;
  for (VizNode& n : viz->nodes) {
    for (auto& [key, value] : n.properties) properties.emplace_back(&n, key);
  }
  const size_t total = valued.size() + properties.size();
  if (total == 0) return false;
  size_t pick = rng->NextUint64(total);
  if (pick < valued.size()) {
    valued[pick]->value = PerturbValue(valued[pick]->value, rng);
  } else {
    auto& [node, key] = properties[pick - valued.size()];
    node->properties[key] = PerturbValue(node->properties[key], rng);
  }
  return true;
}

bool TryWrongAggregationOrder(KgVisualization* viz, Rng* rng) {
  // Find two same-label valued edges into the same target from *different*
  // sources with different values (aggregation contributors) and swap their
  // values. Same-source pairs are excluded: swapping them yields a
  // semantically identical graph, not an error.
  std::vector<std::pair<VizEdge*, VizEdge*>> pairs;
  for (size_t i = 0; i < viz->edges.size(); ++i) {
    for (size_t j = i + 1; j < viz->edges.size(); ++j) {
      VizEdge& a = viz->edges[i];
      VizEdge& b = viz->edges[j];
      if (a.to == b.to && a.from != b.from && a.label == b.label &&
          a.has_value && b.has_value && a.value != b.value) {
        pairs.emplace_back(&a, &b);
      }
    }
  }
  if (pairs.empty()) return false;
  auto& [a, b] = pairs[rng->NextUint64(pairs.size())];
  std::swap(a->value, b->value);
  return true;
}

bool TryWrongChain(KgVisualization* viz, Rng* rng) {
  // Rewire one *extensional* (valued) edge — an ownership share or a debt —
  // to a wrong endpoint, breaking a chain. Unvalued derived edges are not
  // rewired: a bare Control edge between two mentioned entities would not
  // contradict any sentence of the report.
  if (viz->nodes.size() < 3) return false;
  std::vector<VizEdge*> valued;
  for (VizEdge& e : viz->edges) {
    if (e.has_value) valued.push_back(&e);
  }
  if (valued.empty()) return false;
  for (int attempt = 0; attempt < 32; ++attempt) {
    VizEdge& edge = *valued[rng->NextUint64(valued.size())];
    const std::string& new_to =
        viz->nodes[rng->NextUint64(viz->nodes.size())].id;
    if (new_to == edge.to || new_to == edge.from) continue;
    edge.to = new_to;
    return true;
  }
  return false;
}

}  // namespace

const char* ErrorArchetypeToString(ErrorArchetype archetype) {
  switch (archetype) {
    case ErrorArchetype::kFalseEdge:
      return "wrong edge";
    case ErrorArchetype::kWrongValue:
      return "wrong value";
    case ErrorArchetype::kWrongAggregationOrder:
      return "incorrect aggregation";
    case ErrorArchetype::kWrongChain:
      return "incorrect chain";
  }
  return "?";
}

KgVisualization ApplyArchetype(const KgVisualization& truth,
                               ErrorArchetype archetype, Rng* rng,
                               ErrorArchetype* applied) {
  KgVisualization mutated = truth;
  ErrorArchetype used = archetype;
  bool done = false;
  switch (archetype) {
    case ErrorArchetype::kFalseEdge:
      done = TryFalseEdge(&mutated, rng);
      break;
    case ErrorArchetype::kWrongValue:
      done = TryWrongValue(&mutated, rng);
      break;
    case ErrorArchetype::kWrongAggregationOrder:
      done = TryWrongAggregationOrder(&mutated, rng);
      break;
    case ErrorArchetype::kWrongChain:
      done = TryWrongChain(&mutated, rng);
      break;
  }
  if (!done) {
    used = ErrorArchetype::kWrongValue;
    done = TryWrongValue(&mutated, rng);
  }
  if (!done) {
    used = ErrorArchetype::kFalseEdge;
    done = TryFalseEdge(&mutated, rng);
  }
  if (applied != nullptr) *applied = used;
  return mutated;
}

}  // namespace templex
