#ifndef TEMPLEX_STUDIES_COMPREHENSION_STUDY_H_
#define TEMPLEX_STUDIES_COMPREHENSION_STUDY_H_

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "studies/archetypes.h"
#include "studies/visualization.h"

namespace templex {

// One multiple-choice question of the comprehension study (§6.1): a textual
// explanation ("business report") plus three candidate KG visualizations —
// the correct one and two archetype-mutated distractors.
struct ComprehensionCase {
  std::string name;  // "control via aggregation", ...
  std::string explanation;
  KgVisualization truth;
  std::vector<std::pair<ErrorArchetype, KgVisualization>> distractors;
};

// Per-case tally over all participants.
struct ComprehensionCaseResult {
  std::string name;
  int participants = 0;
  int correct = 0;
  std::map<ErrorArchetype, int> errors;  // wrong picks, by archetype

  double accuracy() const {
    return participants == 0
               ? 0.0
               : static_cast<double>(correct) / participants;
  }
};

struct ComprehensionStudyOptions {
  int participants = 24;
  // Probability that a participant overlooks one consistency check
  // (attention noise; the source of the paper's occasional wrong answers).
  double inattention = 0.08;
  uint64_t seed = 42;
};

// The simulated lay reader: scores how consistent a candidate visualization
// is with the explanation text by sentence-level co-occurrence of the
// visualization's elements (edge endpoints + value in one sentence, with a
// proximity bonus that resolves "respectively"-style contributor
// orderings). Exposed for tests.
double ScoreVisualizationAgainstText(const std::string& explanation,
                                     const KgVisualization& viz,
                                     double inattention, Rng* rng);

// Runs the study: every participant answers every case by picking the
// highest-scoring candidate (ties broken at random). Returns one result per
// case, in input order.
std::vector<ComprehensionCaseResult> RunComprehensionStudy(
    const std::vector<ComprehensionCase>& cases,
    const ComprehensionStudyOptions& options);

// Figure 14-style table.
std::string ComprehensionTable(
    const std::vector<ComprehensionCaseResult>& results);

}  // namespace templex

#endif  // TEMPLEX_STUDIES_COMPREHENSION_STUDY_H_
