#include "studies/visualization.h"

#include <algorithm>

#include "common/number_format.h"
#include "common/string_util.h"

namespace templex {

VizNode* KgVisualization::FindNode(const std::string& id) {
  for (VizNode& node : nodes) {
    if (node.id == id) return &node;
  }
  return nullptr;
}

const VizNode* KgVisualization::FindNode(const std::string& id) const {
  for (const VizNode& node : nodes) {
    if (node.id == id) return &node;
  }
  return nullptr;
}

VizNode* KgVisualization::EnsureNode(const std::string& id) {
  if (VizNode* existing = FindNode(id)) return existing;
  nodes.push_back(VizNode{id, {}, {}});
  return &nodes.back();
}

std::string KgVisualization::ToString() const {
  std::string text;
  for (const VizNode& node : nodes) {
    text += node.id;
    for (const auto& [key, value] : node.properties) {
      text += " " + key + "=" + FormatDouble(value);
    }
    for (const std::string& marker : node.markers) {
      text += " [" + marker + "]";
    }
    text += "\n";
  }
  for (const VizEdge& edge : edges) {
    text += edge.from + " -" + edge.label;
    if (edge.has_value) text += "(" + FormatDouble(edge.value) + ")";
    text += "-> " + edge.to + "\n";
  }
  return text;
}

bool KgVisualization::operator==(const KgVisualization& other) const {
  return ToString() == other.ToString();
}

KgVisualization BuildVisualization(const Proof& proof) {
  KgVisualization viz;
  auto add_fact = [&viz](const Fact& fact, bool derived) {
    std::vector<std::string> entities;
    std::vector<double> numbers;
    for (const Value& arg : fact.args) {
      if (arg.is_string()) {
        entities.push_back(arg.string_value());
      } else if (arg.is_numeric()) {
        numbers.push_back(arg.AsDouble());
      }
    }
    if (entities.empty()) return;
    if (entities.size() == 1) {
      VizNode* node = viz.EnsureNode(entities[0]);
      if (!numbers.empty()) {
        node->properties[ToLower(fact.predicate)] = numbers[0];
      } else if (derived) {
        if (std::find(node->markers.begin(), node->markers.end(),
                      ToLower(fact.predicate)) == node->markers.end()) {
          node->markers.push_back(ToLower(fact.predicate));
        }
      }
      return;
    }
    viz.EnsureNode(entities[0]);
    viz.EnsureNode(entities[1]);
    VizEdge edge;
    edge.from = entities[0];
    edge.to = entities[1];
    edge.label = fact.predicate;
    if (!numbers.empty()) {
      edge.value = numbers[0];
      edge.has_value = true;
    }
    viz.edges.push_back(std::move(edge));
  };
  for (FactId id : proof.edb_facts()) {
    add_fact(proof.graph().node(id).fact, /*derived=*/false);
  }
  for (FactId id : proof.steps()) {
    add_fact(proof.graph().node(id).fact, /*derived=*/true);
  }
  return viz;
}

}  // namespace templex
