#include "explain/anonymizer.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/number_format.h"

namespace templex {

namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

// Whole-word replacement of `from` by `to`.
std::string ReplaceWholeWord(const std::string& text, const std::string& from,
                             const std::string& to) {
  if (from.empty()) return text;
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(from, start);
    if (pos == std::string::npos) {
      out.append(text, start, std::string::npos);
      break;
    }
    const bool left_ok = pos == 0 || !IsWordChar(text[pos - 1]);
    const size_t end = pos + from.size();
    const bool right_ok = end >= text.size() || !IsWordChar(text[end]);
    out.append(text, start, pos - start);
    if (left_ok && right_ok) {
      out += to;
    } else {
      out.append(from);
    }
    start = end;
  }
  return out;
}

// "~10M"-style order-of-magnitude bucket for a number rendered with
// `suffix`: the exact amount is replaced by the nearest power of ten, so
// no precise figure survives in the anonymized text.
std::string Bucket(double value, const std::string& suffix) {
  if (value == 0.0) return "~0" + suffix;
  const double bucket =
      std::pow(10.0, std::round(std::log10(std::fabs(value))));
  const double sign = value < 0.0 ? -1.0 : 1.0;
  return "~" + FormatDouble(sign * bucket) + suffix;
}

}  // namespace

AnonymizedText AnonymizeEntities(const std::string& text,
                                 const std::vector<std::string>& entities,
                                 const AnonymizerOptions& options) {
  AnonymizedText result;
  result.text = text;
  // Longest-first so an entity that is a prefix of another ("Banca1" vs
  // "Banca12") cannot clobber it; whole-word matching already prevents
  // most collisions, this makes the order deterministic regardless.
  std::vector<std::pair<std::string, int>> ordered;
  for (size_t i = 0; i < entities.size(); ++i) {
    ordered.emplace_back(entities[i], static_cast<int>(i));
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const auto& a, const auto& b) {
                     return a.first.size() > b.first.size();
                   });
  for (const auto& [entity, index] : ordered) {
    const std::string pseudonym =
        options.pseudonym_prefix + std::to_string(index + 1);
    std::string replaced = ReplaceWholeWord(result.text, entity, pseudonym);
    if (replaced != result.text) {
      result.text = std::move(replaced);
    }
  }
  for (size_t i = 0; i < entities.size(); ++i) {
    result.mapping.emplace_back(
        options.pseudonym_prefix + std::to_string(i + 1), entities[i]);
  }
  return result;
}

AnonymizedText AnonymizeExplanation(const std::string& text,
                                    const Proof& proof,
                                    const AnonymizerOptions& options) {
  std::vector<std::string> entities;
  std::vector<double> numbers;
  for (const Value& constant : proof.Constants()) {
    if (constant.is_string()) {
      entities.push_back(constant.string_value());
    } else if (constant.is_numeric()) {
      numbers.push_back(constant.AsDouble());
    }
  }
  AnonymizedText result = AnonymizeEntities(text, entities, options);
  if (options.coarsen_numbers) {
    for (double value : numbers) {
      result.text = ReplaceWholeWord(
          result.text, FormatNumber(value, NumberStyle::kMillions),
          Bucket(value, "M"));
      result.text = ReplaceWholeWord(
          result.text, FormatNumber(value, NumberStyle::kPercent),
          Bucket(value * 100.0, "%"));
      result.text =
          ReplaceWholeWord(result.text, FormatDouble(value), Bucket(value, ""));
    }
  }
  return result;
}

}  // namespace templex
