#include "explain/template_generator.h"

namespace templex {

Result<std::vector<ExplanationTemplate>> TemplateGenerator::Generate(
    const StructuralAnalysis& analysis) const {
  std::vector<ExplanationTemplate> templates;
  templates.reserve(analysis.catalog.size());
  for (const ReasoningPath& path : analysis.catalog) {
    Result<ExplanationTemplate> tmpl = GenerateForPath(path);
    if (!tmpl.ok()) return tmpl.status();
    templates.push_back(std::move(tmpl).value());
  }
  return templates;
}

Result<ExplanationTemplate> TemplateGenerator::GenerateForPath(
    const ReasoningPath& path) const {
  ExplanationTemplate tmpl;
  tmpl.name = path.name;
  tmpl.path = path;
  for (const std::string& label : path.rules) {
    const Rule* rule = program_->FindRule(label);
    if (rule == nullptr) {
      return Status::Internal("reasoning path references unknown rule '" +
                              label + "'");
    }
    Result<TemplateSegment> segment =
        verbalizer_.VerbalizeRule(*rule, path.IsMultiAggregation(label));
    if (!segment.ok()) return segment.status();
    tmpl.segments.push_back(std::move(segment).value());
  }
  return tmpl;
}

}  // namespace templex
