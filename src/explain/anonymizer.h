#ifndef TEMPLEX_EXPLAIN_ANONYMIZER_H_
#define TEMPLEX_EXPLAIN_ANONYMIZER_H_

#include <string>
#include <utility>
#include <vector>

#include "engine/proof.h"

namespace templex {

// Pseudonymization of explanations (§1 of the paper motivates why
// anonymizing unstructured explanation text is hard and why their approach
// avoids the need — this utility covers the remaining case where an
// explanation must leave the trust boundary, e.g. for an external audit or
// a bug report).
//
// The entity constants of the underlying proof are replaced, consistently
// and whole-word, by stable pseudonyms ("Entity-1", "Entity-2", ... in
// order of first appearance in the proof). Numeric amounts are left intact
// by default — they carry the reasoning — or coarsened to buckets when
// `coarsen_numbers` is set.
struct AnonymizerOptions {
  std::string pseudonym_prefix = "Entity-";
  // Replace numeric renderings ("7M", "83%") with magnitude buckets
  // ("~10M", "~80%").
  bool coarsen_numbers = false;
};

struct AnonymizedText {
  std::string text;
  // pseudonym -> original, in pseudonym order (the re-identification key;
  // keep it inside the trust boundary).
  std::vector<std::pair<std::string, std::string>> mapping;
};

// Anonymizes `text` using the entity constants of `proof`.
AnonymizedText AnonymizeExplanation(const std::string& text,
                                    const Proof& proof,
                                    const AnonymizerOptions& options =
                                        AnonymizerOptions());

// Lower-level variant with an explicit entity list (first-appearance order
// defines pseudonym numbering).
AnonymizedText AnonymizeEntities(const std::string& text,
                                 const std::vector<std::string>& entities,
                                 const AnonymizerOptions& options =
                                     AnonymizerOptions());

}  // namespace templex

#endif  // TEMPLEX_EXPLAIN_ANONYMIZER_H_
