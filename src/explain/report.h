#ifndef TEMPLEX_EXPLAIN_REPORT_H_
#define TEMPLEX_EXPLAIN_REPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "engine/chase.h"
#include "explain/explainer.h"

namespace templex {

// Assembles the "natural language business report" the paper's analysts
// consume (§1, §5): a markdown document with the scenario header, one
// section per explanation query, and an appendix with data-quality
// (constraint) findings. Everything is generated locally from the chase —
// no data crosses the trust boundary.
class ReportBuilder {
 public:
  // `explainer` and `chase` must outlive the builder.
  ReportBuilder(const Explainer* explainer, const ChaseResult* chase)
      : explainer_(explainer), chase_(chase) {}

  ReportBuilder& Title(std::string title);
  ReportBuilder& Preamble(std::string text);

  // Adds a section explaining Q_e = {fact}; the heading defaults to the
  // fact's glossary verbalization. Errors are deferred to Build().
  ReportBuilder& AddExplanation(const Fact& fact);
  ReportBuilder& AddExplanation(const Fact& fact, std::string heading);

  // Appends the constraint-violation appendix (verbalized when the
  // glossary covers the facts, raw otherwise).
  ReportBuilder& AddViolationsAppendix();

  // Appends a "Run metrics" appendix with the snapshot's counters and
  // latency-histogram percentiles — so a report carries the provenance of
  // how long its reasoning took. Pass `chase->metrics`, or a fresher
  // registry snapshot covering the explanation queries too.
  ReportBuilder& AddMetricsAppendix(obs::MetricsSnapshot snapshot);

  // Renders the markdown document; fails on the first explanation error.
  Result<std::string> Build() const;

 private:
  struct Section {
    Fact fact;
    std::string heading;  // may be empty: derive from the glossary
  };

  const Explainer* explainer_;
  const ChaseResult* chase_;
  std::string title_ = "Reasoning report";
  std::string preamble_;
  std::vector<Section> sections_;
  bool violations_appendix_ = false;
  bool metrics_appendix_ = false;
  obs::MetricsSnapshot metrics_;
};

}  // namespace templex

#endif  // TEMPLEX_EXPLAIN_REPORT_H_
