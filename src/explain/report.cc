#include "explain/report.h"

#include "common/number_format.h"
#include "common/string_util.h"

namespace templex {

ReportBuilder& ReportBuilder::Title(std::string title) {
  title_ = std::move(title);
  return *this;
}

ReportBuilder& ReportBuilder::Preamble(std::string text) {
  preamble_ = std::move(text);
  return *this;
}

ReportBuilder& ReportBuilder::AddExplanation(const Fact& fact) {
  sections_.push_back(Section{fact, ""});
  return *this;
}

ReportBuilder& ReportBuilder::AddExplanation(const Fact& fact,
                                             std::string heading) {
  sections_.push_back(Section{fact, std::move(heading)});
  return *this;
}

ReportBuilder& ReportBuilder::AddViolationsAppendix() {
  violations_appendix_ = true;
  return *this;
}

ReportBuilder& ReportBuilder::AddMetricsAppendix(
    obs::MetricsSnapshot snapshot) {
  metrics_appendix_ = true;
  metrics_ = std::move(snapshot);
  return *this;
}

Result<std::string> ReportBuilder::Build() const {
  std::string doc = "# " + title_ + "\n\n";
  if (!preamble_.empty()) {
    doc += preamble_ + "\n\n";
  }
  doc += "_" + std::to_string(chase_->graph.size()) + " facts (" +
         std::to_string(chase_->stats.derived_facts) +
         " derived) over " + std::to_string(chase_->stats.rounds) +
         " reasoning rounds._\n\n";
  for (const Section& section : sections_) {
    std::string heading = section.heading;
    if (heading.empty()) {
      Result<std::string> verbalized =
          explainer_->glossary().VerbalizeFact(section.fact);
      heading = verbalized.ok() ? Capitalize(verbalized.value())
                                : section.fact.ToString();
    }
    doc += "## " + heading + "\n\n";
    Result<std::string> text = explainer_->Explain(*chase_, section.fact);
    if (!text.ok()) return text.status();
    doc += text.value() + "\n\n";
  }
  if (violations_appendix_) {
    doc += "## Data-quality findings\n\n";
    if (chase_->violations.empty()) {
      doc += "No constraint violations detected.\n";
    } else {
      for (const ConstraintViolation& violation : chase_->violations) {
        doc += "- `" + violation.rule_label + "`";
        // Name the facts of the violating match where the glossary can.
        std::vector<std::string> described;
        for (FactId id : violation.facts) {
          Result<std::string> text =
              explainer_->glossary().VerbalizeFact(chase_->graph.node(id).fact);
          described.push_back(text.ok()
                                  ? text.value()
                                  : chase_->graph.node(id).fact.ToString());
        }
        doc += ": " + JoinWithConjunction(described, "; ", "; and ") + "\n";
      }
    }
  }
  // Degradation contract (§4.4 extended): a report built from templates
  // whose enhancement fell back to deterministic wording says so — the
  // degradation is part of the answer, never silently swallowed.
  if (const int64_t degraded = explainer_->degraded_segment_count();
      degraded > 0) {
    doc += "## Degraded explanations\n\n";
    doc += "_" + std::to_string(degraded) +
           " template segment(s) fell back to their deterministic wording "
           "after enhancement failures; the explanations above are complete "
           "but less fluent._\n\n";
    for (const ExplanationTemplate& tmpl : explainer_->templates()) {
      for (const TemplateSegment& segment : tmpl.segments) {
        if (!segment.degraded) continue;
        doc += "- `" + tmpl.name + "` / rule `" + segment.rule_label +
               "`: " + segment.degradation_reason + "\n";
      }
    }
    doc += "\n";
  }
  if (metrics_appendix_ && !metrics_.empty()) {
    doc += "\n## Run metrics\n\n";
    if (!metrics_.counters.empty()) {
      doc += "| counter | value |\n|---|---|\n";
      for (const obs::CounterSnapshot& c : metrics_.counters) {
        doc += "| `" + c.name + "` | " + std::to_string(c.value) + " |\n";
      }
      doc += "\n";
    }
    if (!metrics_.histograms.empty()) {
      doc += "| phase | samples | p50 | p95 | p99 |\n|---|---|---|---|---|\n";
      for (const obs::HistogramSnapshot& h : metrics_.histograms) {
        auto millis = [](double seconds) {
          return FormatDouble(seconds * 1e3) + "ms";
        };
        doc += "| `" + h.name + "` | " + std::to_string(h.count) + " | " +
               millis(h.p50) + " | " + millis(h.p95) + " | " + millis(h.p99) +
               " |\n";
      }
    }
  }
  return doc;
}

}  // namespace templex
