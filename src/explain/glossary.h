#ifndef TEMPLEX_EXPLAIN_GLOSSARY_H_
#define TEMPLEX_EXPLAIN_GLOSSARY_H_

#include <map>
#include <string>
#include <vector>

#include "common/number_format.h"
#include "common/status.h"
#include "datalog/atom.h"
#include "engine/fact.h"

namespace templex {

class Program;  // datalog/program.h

// Glossary entry for one predicate: its natural-language pattern, with one
// token per argument position (Figure 7 / Figure 11). `arg_styles` carries
// how numeric arguments are rendered in explanations (plain, "7M" for
// amounts in millions, "83%" for fractional shares).
struct GlossaryEntry {
  // "A shock amounting to <s> euro affects <f>" — tokens in angle brackets,
  // no trailing period.
  std::string pattern;
  // Per argument position, the token name used in `pattern` ({"f", "s"}).
  std::vector<std::string> arg_tokens;
  // Per argument position, how numbers are formatted. Defaults to kPlain.
  std::vector<NumberStyle> arg_styles;
};

// The domain glossary (§4.2): a map from the predicates of the domain
// schema to their natural-language equivalents, sourced from the
// organization's data dictionary.
class DomainGlossary {
 public:
  DomainGlossary() = default;

  // Registers the entry for `predicate`. Fails if the pattern does not
  // mention every arg token exactly, or sizes are inconsistent.
  Status Register(const std::string& predicate, GlossaryEntry entry);

  const GlossaryEntry* Find(const std::string& predicate) const;

  bool Has(const std::string& predicate) const {
    return Find(predicate) != nullptr;
  }

  // Rendering style for argument `position` of `predicate` (kPlain when
  // unknown).
  NumberStyle StyleFor(const std::string& predicate, int position) const;

  // Formats a value for explanation text according to `style`.
  static std::string FormatValue(const Value& value, NumberStyle style);

  // Verbalizes a rule atom symbolically: variable arguments stay as
  // "<variable>" tokens (named after the *rule's* variables), constant
  // arguments are substituted with their formatted text.
  //   VerbalizeAtom(HasCapital(f, p1)) = "<f> is a ... with capital <p1>"
  Result<std::string> VerbalizeAtom(const Atom& atom) const;

  // Verbalizes a ground fact: all tokens substituted with formatted values.
  Result<std::string> VerbalizeFact(const Fact& fact) const;

  // Styles by variable name for an atom's variable arguments, used to carry
  // formatting hints into templates (a variable inherits the style of the
  // position it occurs in).
  std::map<std::string, NumberStyle> VariableStyles(const Atom& atom) const;

  // Figure 7/11-style table.
  std::string ToTable() const;

  // Predicates registered, in registration order.
  const std::vector<std::string>& predicates() const { return order_; }

 private:
  std::map<std::string, GlossaryEntry> entries_;
  std::vector<std::string> order_;
};

// Minimal fallback glossary when no domain glossary is supplied: every
// predicate mentioned by `program`'s rules verbalizes as itself
// ("Own holds for <a1>, <a2>, <a3>"). Used by templex_cli and
// templex_serve so explanations degrade identically in both.
DomainGlossary MinimalFallbackGlossary(const Program& program);

}  // namespace templex

#endif  // TEMPLEX_EXPLAIN_GLOSSARY_H_
