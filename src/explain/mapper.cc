#include "explain/mapper.h"

#include <algorithm>
#include <map>
#include <set>

namespace templex {

namespace {

bool IsCriticalPredicate(const StructuralAnalysis& analysis,
                         const std::string& predicate) {
  const std::vector<std::string> criticals = analysis.graph.CriticalNodes();
  return std::find(criticals.begin(), criticals.end(), predicate) !=
         criticals.end();
}

// Rule labels of `steps`, deduplicated, plus per-label step lists.
std::map<std::string, std::vector<FactId>> GroupByRule(
    const ChaseGraph& graph, const std::vector<FactId>& steps) {
  std::map<std::string, std::vector<FactId>> groups;
  for (FactId id : steps) {
    groups[graph.node(id).rule_label].push_back(id);
  }
  return groups;
}

// When a rule label occurs on several steps, the duplication is legitimate
// only if all those steps feed (as contributor parents) one common
// aggregation step within `steps` — the pattern of several σ1-derived
// controls jointly contributing to σ3. Any other duplication (e.g. two σ3
// iterations of a control chain) cannot be covered by one path, whose rules
// are distinct.
bool DuplicatesAreContributorParallel(const ChaseGraph& graph,
                                      const std::vector<FactId>& steps,
                                      const std::vector<FactId>& duplicated) {
  for (FactId agg_step : steps) {
    const ChaseNode& node = graph.node(agg_step);
    if (node.contributions.size() < 2) continue;
    std::set<FactId> contributor_parents;
    for (const AggregateContribution& c : node.contributions) {
      contributor_parents.insert(c.parents.begin(), c.parents.end());
    }
    bool all_covered = true;
    for (FactId dup : duplicated) {
      if (contributor_parents.count(dup) == 0) {
        all_covered = false;
        break;
      }
    }
    if (all_covered) return true;
  }
  return false;
}

}  // namespace

std::vector<ChaseMapper::Segment> ChaseMapper::SplitIntoSegments(
    const Proof& proof) const {
  const ChaseGraph& graph = proof.graph();
  std::vector<Segment> segments;
  std::set<FactId> claimed;
  for (FactId step : proof.steps()) {
    const ChaseNode& node = graph.node(step);
    if (!IsCriticalPredicate(*analysis_, node.fact.predicate)) continue;
    Segment segment;
    segment.critical = step;
    // Walk parents from the critical fact, stopping at extensional facts,
    // at other critical facts (anchors), and at steps already claimed by an
    // earlier segment.
    std::vector<FactId> stack = {step};
    std::set<FactId> visited;
    while (!stack.empty()) {
      FactId current = stack.back();
      stack.pop_back();
      if (!visited.insert(current).second) continue;
      const ChaseNode& n = graph.node(current);
      if (n.is_extensional()) continue;
      if (current != step) {
        if (IsCriticalPredicate(*analysis_, n.fact.predicate)) {
          segment.anchors.push_back(current);
          continue;
        }
        if (claimed.count(current) > 0) continue;
      }
      segment.steps.push_back(current);
      claimed.insert(current);
      for (FactId parent : n.parents) stack.push_back(parent);
    }
    std::sort(segment.steps.begin(), segment.steps.end());
    std::sort(segment.anchors.begin(), segment.anchors.end());
    segments.push_back(std::move(segment));
  }
  return segments;
}

const ExplanationTemplate* ChaseMapper::MatchSteps(
    const Proof& proof, const std::vector<FactId>& steps,
    ReasoningPath::Kind kind, const std::string& target_predicate,
    const std::string& anchor_predicate) const {
  const ChaseGraph& graph = proof.graph();
  std::map<std::string, std::vector<FactId>> groups =
      GroupByRule(graph, steps);
  std::vector<std::string> label_set;
  for (const auto& [label, ids] : groups) {
    label_set.push_back(label);
    if (ids.size() > 1 &&
        !DuplicatesAreContributorParallel(graph, steps, ids)) {
      return nullptr;
    }
  }
  // Aggregation rules whose step really received multiple contributions:
  // these demand the dashed (multi) variant.
  std::set<std::string> multi_rules;
  for (FactId id : steps) {
    const ChaseNode& node = graph.node(id);
    if (node.contributions.size() > 1) multi_rules.insert(node.rule_label);
  }
  const ExplanationTemplate* base_match = nullptr;
  const ExplanationTemplate* any_match = nullptr;
  for (const ExplanationTemplate& tmpl : *templates_) {
    const ReasoningPath& path = tmpl.path;
    if (path.kind != kind) continue;
    if (path.target != target_predicate) continue;
    if (kind == ReasoningPath::Kind::kCycle &&
        path.anchor != anchor_predicate) {
      continue;
    }
    std::vector<std::string> path_rules = path.rules;
    std::sort(path_rules.begin(), path_rules.end());
    if (path_rules != label_set) continue;  // label_set is sorted (std::map)
    std::set<std::string> path_multi(path.multi_agg_rules.begin(),
                                     path.multi_agg_rules.end());
    if (path_multi == multi_rules) return &tmpl;  // exact variant
    if (!path.is_aggregation_variant()) base_match = &tmpl;
    if (any_match == nullptr) any_match = &tmpl;
  }
  return base_match != nullptr ? base_match : any_match;
}

TemplateInstance ChaseMapper::AlignSteps(
    const ExplanationTemplate& tmpl, const Proof& proof,
    const std::vector<FactId>& steps) const {
  std::map<std::string, std::vector<FactId>> groups =
      GroupByRule(proof.graph(), steps);
  TemplateInstance instance;
  instance.tmpl = &tmpl;
  instance.alignment.reserve(tmpl.segments.size());
  for (const TemplateSegment& segment : tmpl.segments) {
    instance.alignment.push_back(groups[segment.rule_label]);
  }
  return instance;
}

Result<std::vector<MappedUnit>> ChaseMapper::Map(const Proof& proof) const {
  const ChaseGraph& graph = proof.graph();
  std::vector<MappedUnit> units;
  auto emit_fallbacks = [&units](const std::vector<FactId>& steps) {
    for (FactId id : steps) {
      MappedUnit unit;
      unit.fallback_step = id;
      units.push_back(std::move(unit));
    }
  };

  std::vector<Segment> segments = SplitIntoSegments(proof);
  if (segments.empty()) {
    emit_fallbacks(proof.steps());
    return units;
  }

  // Greedily grow the leading root-grounded composite: absorb as many
  // following segments as a single simple reasoning path can instantiate
  // ("the simple reasoning path that could be applied to the highest number
  // of chase steps", §4.3). Longest extensions are tried first.
  std::vector<FactId> composite = segments[0].steps;
  std::set<FactId> covered_criticals = {segments[0].critical};
  const std::string target_pred =
      graph.node(segments[0].critical).fact.predicate;
  size_t next = 1;
  while (next < segments.size()) {
    size_t best_len = 0;
    for (size_t len = segments.size() - next; len >= 1; --len) {
      std::vector<FactId> candidate = composite;
      std::set<FactId> candidate_criticals = covered_criticals;
      bool anchors_ok = true;
      for (size_t j = next; j < next + len; ++j) {
        for (FactId anchor : segments[j].anchors) {
          if (candidate_criticals.count(anchor) == 0) {
            anchors_ok = false;
            break;
          }
        }
        if (!anchors_ok) break;
        candidate.insert(candidate.end(), segments[j].steps.begin(),
                         segments[j].steps.end());
        candidate_criticals.insert(segments[j].critical);
      }
      if (!anchors_ok) continue;
      std::sort(candidate.begin(), candidate.end());
      const std::string candidate_target =
          graph.node(segments[next + len - 1].critical).fact.predicate;
      if (MatchSteps(proof, candidate, ReasoningPath::Kind::kSimplePath,
                     candidate_target, "") != nullptr) {
        best_len = len;
        break;
      }
    }
    if (best_len == 0) break;
    for (size_t j = next; j < next + best_len; ++j) {
      composite.insert(composite.end(), segments[j].steps.begin(),
                       segments[j].steps.end());
      covered_criticals.insert(segments[j].critical);
    }
    std::sort(composite.begin(), composite.end());
    next += best_len;
  }

  // Close the composite.
  const std::string composite_target =
      graph.node(segments[next - 1].critical).fact.predicate;
  const bool composite_has_anchors = !segments[0].anchors.empty();
  const ExplanationTemplate* composite_tmpl = nullptr;
  if (!composite_has_anchors) {
    composite_tmpl = MatchSteps(proof, composite,
                                ReasoningPath::Kind::kSimplePath,
                                composite_target, "");
  }
  if (composite_tmpl != nullptr) {
    MappedUnit unit;
    unit.instance = AlignSteps(*composite_tmpl, proof, composite);
    units.push_back(std::move(unit));
  } else {
    emit_fallbacks(composite);
  }

  // Remaining segments are cycle applications.
  for (size_t i = next; i < segments.size(); ++i) {
    const Segment& segment = segments[i];
    std::string anchor_pred =
        segment.anchors.empty()
            ? ""
            : graph.node(segment.anchors.front()).fact.predicate;
    const std::string seg_target =
        graph.node(segment.critical).fact.predicate;
    const ExplanationTemplate* tmpl = nullptr;
    if (!segment.anchors.empty()) {
      tmpl = MatchSteps(proof, segment.steps, ReasoningPath::Kind::kCycle,
                        seg_target, anchor_pred);
    } else {
      // A root-grounded segment past the head of the proof (e.g. a second
      // independent shock): match it as a simple path.
      tmpl = MatchSteps(proof, segment.steps,
                        ReasoningPath::Kind::kSimplePath, seg_target, "");
    }
    if (tmpl != nullptr) {
      MappedUnit unit;
      unit.instance = AlignSteps(*tmpl, proof, segment.steps);
      units.push_back(std::move(unit));
    } else {
      emit_fallbacks(segment.steps);
    }
  }
  (void)program_;
  return units;
}

}  // namespace templex
