#include "explain/template.h"

namespace templex {

std::string ExplanationTemplate::DeterministicText() const {
  std::string text;
  for (const TemplateSegment& segment : segments) {
    if (!text.empty()) text += " ";
    text += segment.text;
  }
  return text;
}

std::string ExplanationTemplate::EffectiveText() const {
  std::string text;
  for (const TemplateSegment& segment : segments) {
    if (!text.empty()) text += " ";
    text += segment.effective_text();
  }
  return text;
}

}  // namespace templex
