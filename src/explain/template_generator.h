#ifndef TEMPLEX_EXPLAIN_TEMPLATE_GENERATOR_H_
#define TEMPLEX_EXPLAIN_TEMPLATE_GENERATOR_H_

#include <vector>

#include "common/status.h"
#include "core/structural_analyzer.h"
#include "explain/template.h"
#include "explain/verbalizer.h"

namespace templex {

// Turns the reasoning paths of a structural analysis into deterministic
// explanation templates (§4.2) by verbalizing each rule of each path.
// Aggregation rules marked multi-contributor in the path (dashed variants)
// get the explicit aggregation wording; in base paths the aggregation is
// truncated.
class TemplateGenerator {
 public:
  TemplateGenerator(const Program* program, const DomainGlossary* glossary)
      : program_(program), verbalizer_(program, glossary) {}

  // One template per catalog path, in catalog order.
  Result<std::vector<ExplanationTemplate>> Generate(
      const StructuralAnalysis& analysis) const;

  Result<ExplanationTemplate> GenerateForPath(const ReasoningPath& path) const;

 private:
  const Program* program_;
  Verbalizer verbalizer_;
};

}  // namespace templex

#endif  // TEMPLEX_EXPLAIN_TEMPLATE_GENERATOR_H_
