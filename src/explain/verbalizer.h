#ifndef TEMPLEX_EXPLAIN_VERBALIZER_H_
#define TEMPLEX_EXPLAIN_VERBALIZER_H_

#include <map>
#include <string>

#include "common/status.h"
#include "datalog/program.h"
#include "engine/proof.h"
#include "explain/glossary.h"
#include "explain/template.h"

namespace templex {

// The verbalizer (§4.2): algorithmically translates Vadalog syntax into
// natural-language sentences of the form "Since {body}, then {head}." using
// the domain glossary. It is used in two modes:
//  - symbolically, on the rules of a reasoning path, producing explanation
//    template segments whose <tokens> map back to rule variables;
//  - on a ground proof, producing the verbose deterministic explanation of
//    an actual instance (the input the LLM baselines paraphrase/summarize).
class Verbalizer {
 public:
  Verbalizer(const Program* program, const DomainGlossary* glossary)
      : program_(program), glossary_(glossary) {}

  // Verbalizes one rule into a template segment. When `multi_aggregation`
  // is true the rule's aggregation is verbalized with a contributor list
  // ("with <e> given by the sum of <v>"); otherwise the aggregation is
  // truncated (not verbalized), as for non-dashed reasoning paths.
  Result<TemplateSegment> VerbalizeRule(const Rule& rule,
                                        bool multi_aggregation) const;

  // Verbalizes one intensional chase step of a proof into a ground
  // sentence.
  Result<std::string> VerbalizeStep(const ChaseGraph& graph,
                                    FactId step) const;

  // The deterministic explanation of a proof: every chase step verbalized,
  // one sentence per step, in derivation order.
  Result<std::string> VerbalizeProof(const Proof& proof) const;

  // Formatting style for a variable of `rule` (looked up across the body
  // and head atoms; aggregate results and assignments inherit the style of
  // their input variables).
  std::map<std::string, NumberStyle> RuleVariableStyles(
      const Rule& rule) const;

 private:
  const Program* program_;
  const DomainGlossary* glossary_;
};

// Natural-language rendering of a comparator ("is higher than").
std::string ComparatorToText(Comparator cmp);

// Natural-language rendering of an aggregate function name ("sum").
std::string AggregateFunctionToText(AggregateFunction fn);

}  // namespace templex

#endif  // TEMPLEX_EXPLAIN_VERBALIZER_H_
