#include "explain/verbalizer.h"

#include <algorithm>

#include "common/string_util.h"

namespace templex {

namespace {

// Extracts the <token> names occurring in `text`, in order of first
// occurrence.
std::vector<std::string> ExtractTokenNames(const std::string& text) {
  std::vector<std::string> names;
  size_t pos = 0;
  while ((pos = text.find('<', pos)) != std::string::npos) {
    size_t end = text.find('>', pos);
    if (end == std::string::npos) break;
    std::string name = text.substr(pos + 1, end - pos - 1);
    if (!name.empty() &&
        std::find(names.begin(), names.end(), name) == names.end()) {
      names.push_back(name);
    }
    pos = end + 1;
  }
  return names;
}

// Verbalizes an arithmetic expression symbolically: variables become
// <tokens>, constants are formatted with `style`.
std::string ExprToText(const Expr& expr, NumberStyle style) {
  if (expr.is_leaf()) {
    const Term& term = expr.term();
    if (term.is_variable()) return "<" + term.variable_name() + ">";
    return DomainGlossary::FormatValue(term.constant_value(), style);
  }
  // Binary node: recover operands via ToString-free recursion.
  std::string op_text;
  switch (expr.op()) {
    case Expr::Op::kAdd:
      op_text = " plus ";
      break;
    case Expr::Op::kSub:
      op_text = " minus ";
      break;
    case Expr::Op::kMul:
      op_text = " times ";
      break;
    case Expr::Op::kDiv:
      op_text = " divided by ";
      break;
  }
  return ExprToText(expr.lhs(), style) + op_text + ExprToText(expr.rhs(), style);
}

}  // namespace

std::string ComparatorToText(Comparator cmp) {
  switch (cmp) {
    case Comparator::kLt:
      return "is lower than";
    case Comparator::kLe:
      return "is at most";
    case Comparator::kGt:
      return "is higher than";
    case Comparator::kGe:
      return "is at least";
    case Comparator::kEq:
      return "is equal to";
    case Comparator::kNe:
      return "is different from";
  }
  return "compares to";
}

std::string AggregateFunctionToText(AggregateFunction fn) {
  switch (fn) {
    case AggregateFunction::kSum:
      return "sum";
    case AggregateFunction::kProd:
      return "product";
    case AggregateFunction::kMin:
      return "minimum";
    case AggregateFunction::kMax:
      return "maximum";
    case AggregateFunction::kCount:
      return "count";
  }
  return "aggregate";
}

std::map<std::string, NumberStyle> Verbalizer::RuleVariableStyles(
    const Rule& rule) const {
  std::map<std::string, NumberStyle> styles;
  auto merge_atom = [this, &styles](const Atom& atom) {
    for (const auto& [var, style] : glossary_->VariableStyles(atom)) {
      // Prefer a non-plain style when positions disagree.
      auto it = styles.find(var);
      if (it == styles.end() || it->second == NumberStyle::kPlain) {
        styles[var] = style;
      }
    }
  };
  for (const Atom& atom : rule.body) merge_atom(atom);
  merge_atom(rule.head);
  // The aggregate result inherits the input variable's style.
  if (rule.has_aggregate()) {
    auto it = styles.find(rule.aggregate->input_variable);
    NumberStyle input_style =
        it == styles.end() ? NumberStyle::kPlain : it->second;
    auto result_it = styles.find(rule.aggregate->result_variable);
    if (result_it == styles.end() ||
        result_it->second == NumberStyle::kPlain) {
      styles[rule.aggregate->result_variable] = input_style;
    }
  }
  // Assigned variables inherit the style of the first styled variable in
  // their expression.
  for (const Assignment& a : rule.assignments) {
    if (styles.count(a.variable) > 0) continue;
    NumberStyle style = NumberStyle::kPlain;
    for (const std::string& v : a.expr->VariableNames()) {
      auto it = styles.find(v);
      if (it != styles.end() && it->second != NumberStyle::kPlain) {
        style = it->second;
        break;
      }
    }
    styles[a.variable] = style;
  }
  return styles;
}

Result<TemplateSegment> Verbalizer::VerbalizeRule(
    const Rule& rule, bool multi_aggregation) const {
  std::map<std::string, NumberStyle> styles = RuleVariableStyles(rule);
  auto style_of = [&styles](const std::string& var) {
    auto it = styles.find(var);
    return it == styles.end() ? NumberStyle::kPlain : it->second;
  };
  auto side_text = [&style_of](const Expr& expr,
                               const Expr& other) -> std::string {
    // A constant side borrows the style of a bare-variable other side, so
    // "s > 0.5" over percent-styled s verbalizes as "... is higher than
    // 50%".
    NumberStyle style = NumberStyle::kPlain;
    if (other.is_variable_leaf()) {
      style = style_of(other.term().variable_name());
    }
    return ExprToText(expr, style);
  };

  std::vector<std::string> clauses;
  for (const Atom& atom : rule.body) {
    Result<std::string> text = glossary_->VerbalizeAtom(atom);
    if (!text.ok()) return text.status();
    clauses.push_back(std::move(text).value());
  }
  for (const Atom& atom : rule.negative_body) {
    Result<std::string> text = glossary_->VerbalizeAtom(atom);
    if (!text.ok()) return text.status();
    clauses.push_back("it is not the case that " + text.value());
  }
  for (const Assignment& a : rule.assignments) {
    clauses.push_back("<" + a.variable + "> is " +
                      ExprToText(*a.expr, style_of(a.variable)));
  }
  if (rule.has_aggregate() && multi_aggregation) {
    const Aggregate& agg = *rule.aggregate;
    clauses.push_back("with <" + agg.result_variable + "> given by the " +
                      AggregateFunctionToText(agg.function) + " of <" +
                      agg.input_variable + ">");
  }
  for (const Condition& c : rule.conditions) {
    clauses.push_back(side_text(*c.lhs, *c.rhs) + " " +
                      ComparatorToText(c.cmp) + " " +
                      side_text(*c.rhs, *c.lhs));
  }
  Result<std::string> head_text = glossary_->VerbalizeAtom(rule.head);
  if (!head_text.ok()) return head_text.status();

  TemplateSegment segment;
  segment.rule_label = rule.label;
  segment.multi_aggregation = rule.has_aggregate() && multi_aggregation;
  if (segment.multi_aggregation) {
    segment.aggregate_input_variable = rule.aggregate->input_variable;
  }
  segment.text = "Since " + Join(clauses, ", and ") + ", then " +
                 head_text.value() + ".";
  for (const std::string& name : ExtractTokenNames(segment.text)) {
    segment.tokens.push_back(TemplateToken{name, style_of(name)});
  }
  return segment;
}

Result<std::string> Verbalizer::VerbalizeStep(const ChaseGraph& graph,
                                              FactId step) const {
  const ChaseNode& node = graph.node(step);
  if (node.is_extensional()) {
    return Status::InvalidArgument("cannot verbalize an extensional fact as "
                                   "a chase step: " +
                                   node.fact.ToString());
  }
  const Rule* rule = program_->FindRule(node.rule_label);
  if (rule == nullptr) {
    return Status::Internal("rule not found: " + node.rule_label);
  }
  std::map<std::string, NumberStyle> styles = RuleVariableStyles(*rule);
  auto style_of = [&styles](const std::string& var) {
    auto it = styles.find(var);
    return it == styles.end() ? NumberStyle::kPlain : it->second;
  };
  std::vector<std::string> clauses;
  for (FactId parent : node.parents) {
    Result<std::string> text =
        glossary_->VerbalizeFact(graph.node(parent).fact);
    if (!text.ok()) return text.status();
    clauses.push_back(std::move(text).value());
  }
  // Ground negated atoms ("and it is not the case that X owns ..."): all
  // their variables are bound by the positive body.
  for (const Atom& atom : rule->negative_body) {
    Fact absent;
    absent.predicate = atom.predicate;
    for (const Term& term : atom.terms) {
      if (term.is_constant()) {
        absent.args.push_back(term.constant_value());
      } else {
        absent.args.push_back(
            node.binding.Get(term.variable_name()).value_or(Value::Null()));
      }
    }
    Result<std::string> text = glossary_->VerbalizeFact(absent);
    if (!text.ok()) return text.status();
    clauses.push_back("it is not the case that " + text.value());
  }
  // Multi-contributor aggregations get the explicit "given by the sum of"
  // clause; single-contributor ones are explained as plain rules.
  if (rule->has_aggregate() && node.contributions.size() > 1) {
    NumberStyle input_style = style_of(rule->aggregate->input_variable);
    std::optional<Value> result =
        node.binding.Get(rule->aggregate->result_variable);
    std::vector<std::string> inputs;
    for (const AggregateContribution& c : node.contributions) {
      inputs.push_back(DomainGlossary::FormatValue(c.input, input_style));
    }
    clauses.push_back(
        "with " +
        DomainGlossary::FormatValue(result.value_or(Value::Null()),
                                    input_style) +
        " given by the " + AggregateFunctionToText(rule->aggregate->function) +
        " of " + JoinWithConjunction(inputs, ", ", " and "));
  }
  // Ground condition clauses ("and 83% is higher than 50%") — the paper's
  // deterministic explanations spell them out, see Figure 15.
  for (const Condition& condition : rule->conditions) {
    auto ground_side = [&node, &style_of](const Expr& side,
                                          const Expr& other) -> std::string {
      NumberStyle style = NumberStyle::kPlain;
      if (side.is_variable_leaf()) {
        style = style_of(side.term().variable_name());
      } else if (other.is_variable_leaf()) {
        style = style_of(other.term().variable_name());
      }
      Result<Value> value = side.Eval(node.binding);
      if (!value.ok()) return side.ToString();
      return DomainGlossary::FormatValue(value.value(), style);
    };
    clauses.push_back(ground_side(*condition.lhs, *condition.rhs) + " " +
                      ComparatorToText(condition.cmp) + " " +
                      ground_side(*condition.rhs, *condition.lhs));
  }
  Result<std::string> head_text = glossary_->VerbalizeFact(node.fact);
  if (!head_text.ok()) return head_text.status();
  return "Since " + Join(clauses, ", and ") + ", then " + head_text.value() +
         ".";
}

Result<std::string> Verbalizer::VerbalizeProof(const Proof& proof) const {
  std::string text;
  for (FactId step : proof.steps()) {
    Result<std::string> sentence = VerbalizeStep(proof.graph(), step);
    if (!sentence.ok()) return sentence.status();
    if (!text.empty()) text += " ";
    text += sentence.value();
  }
  return text;
}

}  // namespace templex
