#ifndef TEMPLEX_EXPLAIN_TEMPLATE_H_
#define TEMPLEX_EXPLAIN_TEMPLATE_H_

#include <string>
#include <vector>

#include "common/number_format.h"
#include "core/reasoning_path.h"

namespace templex {

// A token of a template sentence: a rule variable that will be substituted
// with a constant (or a conjunction of constants, for aggregation
// contributors) when the template is instantiated.
struct TemplateToken {
  std::string variable;
  NumberStyle style = NumberStyle::kPlain;
};

// One sentence of an explanation template, covering one rule occurrence of
// the underlying reasoning path.
struct TemplateSegment {
  std::string rule_label;
  // "Since a shock amounting to <s> euro affects <f>, and ..., then <f> is
  // in default."
  std::string text;
  // Enhanced (rewritten) version of `text`; empty until enhancement, in
  // which case `text` is used. Must mention exactly the same tokens.
  std::string enhanced_text;
  std::vector<TemplateToken> tokens;
  // Whether this segment verbalizes its aggregation for multiple
  // contributors (the dashed variant).
  bool multi_aggregation = false;
  // The aggregate input variable (token that expands to the contributor
  // list), empty when the rule has no aggregate.
  std::string aggregate_input_variable;
  // Degradation accounting (§4.4 extended — DESIGN.md "Failure model"):
  // set when enhancement failed for this segment (LLM error surviving
  // retry, token-check omission, expired deadline) and it kept its
  // deterministic text. The reason names the failure so reports can
  // surface it instead of silently swallowing the fallback.
  bool degraded = false;
  std::string degradation_reason;

  const std::string& effective_text() const {
    return enhanced_text.empty() ? text : enhanced_text;
  }
};

// An explanation template (§4.2): the verbalization of one reasoning path,
// one segment per rule occurrence, in the path's bottom-up rule order.
struct ExplanationTemplate {
  std::string name;  // same as path.name
  ReasoningPath path;
  std::vector<TemplateSegment> segments;

  // Concatenation of the deterministic segment texts.
  std::string DeterministicText() const;

  // Concatenation of the enhanced (or deterministic, if not enhanced)
  // segment texts.
  std::string EffectiveText() const;
};

}  // namespace templex

#endif  // TEMPLEX_EXPLAIN_TEMPLATE_H_
