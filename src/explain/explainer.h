#ifndef TEMPLEX_EXPLAIN_EXPLAINER_H_
#define TEMPLEX_EXPLAIN_EXPLAINER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/structural_analyzer.h"
#include "engine/chase.h"
#include "engine/proof.h"
#include "explain/glossary.h"
#include "explain/mapper.h"
#include "explain/template.h"
#include "explain/verbalizer.h"

namespace templex {

class LlmClient;  // llm/llm_client.h

struct ExplainerOptions {
  // Apply the rule-based template enhancement (§4.2); when false,
  // explanations use the raw deterministic templates.
  bool enhance = true;
  // Optional observability sinks (may be null; must outlive the explainer).
  // With a registry, the pipeline maintains per-stage latency histograms
  // (analysis, template generation, enhancement at Create(); mapping and
  // rendering per query) plus query/unit/fallback counters; with a tracer,
  // each stage records a span. Both propagate into `analyzer` unless that
  // one carries its own.
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
  // Optional flight recorder (obs/event_log.h; may be null, must outlive
  // the explainer). Threaded into the LLM enhancement pass so degraded
  // segments leave warn-level "segment.degraded" events.
  obs::EventLog* event_log = nullptr;
  // Which interchangeable enhanced phrasing to use (the paper generates
  // several by re-prompting; we rotate sentence frames).
  int enhancement_variant = 0;
  // When set (and `enhance` is true), templates are enhanced by prompting
  // this LLM with the rules — the paper's §4.4 automated pipeline. Every
  // rewritten segment passes the token-preservation check; a segment whose
  // rewrite failed in ANY way (LLM error surviving retries, omission,
  // expired deadline) degrades to its deterministic text and is recorded
  // (TemplateSegment::degraded, explain.enhance.degraded_segments). The
  // client must outlive Create(). Wrap it in RetryingLlm
  // (llm/retrying_llm.h) for transient-failure tolerance.
  LlmClient* enhancement_llm = nullptr;
  // Failure model (common/deadline.h): Create() checks both at stage
  // boundaries and threads them through the enhancement pass; every
  // explanation query checks them at entry. An expired deadline fails the
  // required deterministic stages (analysis, template generation) with
  // kDeadlineExceeded but only degrades the optional enhancement;
  // cancellation aborts everything with kCancelled.
  Deadline deadline;
  CancellationToken cancel;
  // Limits for the structural analysis.
  AnalyzerOptions analyzer;
};

// The automated pipeline of §4.4: structural analysis of a deployed KG
// application, template generation and enhancement at creation time, and
// template-based answering of explanation queries at run time — all without
// the factual instance ever leaving the process.
//
//   auto explainer = Explainer::Create(program, glossary).value();
//   auto chase = ChaseEngine().Run(program, edb).value();
//   auto text = explainer->Explain(chase, Fact{"Default", {...}});
class Explainer {
 public:
  // Builds the pipeline. The program must carry a goal predicate and the
  // glossary must cover every predicate used by the program's rules.
  static Result<std::unique_ptr<Explainer>> Create(
      Program program, DomainGlossary glossary,
      ExplainerOptions options = ExplainerOptions());

  Explainer(const Explainer&) = delete;
  Explainer& operator=(const Explainer&) = delete;

  // Answers the explanation query Q_e = {fact}: extracts the fact's proof
  // from the chase graph, maps it to templates, and instantiates them.
  Result<std::string> Explain(const ChaseResult& chase,
                              const Fact& fact) const;

  // Same, for an already-extracted proof.
  Result<std::string> ExplainProof(const Proof& proof) const;

  // Every reasoning story for `fact`: the primary explanation first, then
  // one explanation per recorded alternative derivation of the fact (the
  // chase keeps bounded acyclic re-derivations — e.g. a control held both
  // directly and through subsidiaries). Extensional facts yield one entry.
  Result<std::vector<std::string>> ExplainAllDerivations(
      const ChaseResult& chase, const Fact& fact) const;

  // The verbose step-by-step verbalization of a proof — the deterministic
  // explanation the LLM baselines consume (§6.2–6.3).
  Result<std::string> DeterministicExplanation(const Proof& proof) const;

  // Exposed for benchmarks: the mapping stage alone.
  Result<std::vector<MappedUnit>> MapProof(const Proof& proof) const;

  // Instantiates one mapped unit (template instance or fallback step).
  Result<std::string> RenderUnit(const Proof& proof, const MappedUnit& unit,
                                 bool enhanced) const;

  const Program& program() const { return program_; }
  const DomainGlossary& glossary() const { return glossary_; }
  const StructuralAnalysis& analysis() const { return analysis_; }
  const std::vector<ExplanationTemplate>& templates() const {
    return templates_;
  }
  const Verbalizer& verbalizer() const { return *verbalizer_; }
  const ExplainerOptions& options() const { return options_; }

  // Segments across all templates whose enhancement degraded to
  // deterministic text (§4.4 extended contract); 0 when enhancement was
  // clean or disabled. Reports surface these (ReportBuilder::Build).
  int64_t degraded_segment_count() const;

 private:
  Explainer(Program program, DomainGlossary glossary,
            ExplainerOptions options);

  Program program_;
  DomainGlossary glossary_;
  ExplainerOptions options_;
  StructuralAnalysis analysis_;
  std::vector<ExplanationTemplate> templates_;
  std::unique_ptr<Verbalizer> verbalizer_;
  std::unique_ptr<ChaseMapper> mapper_;
};

}  // namespace templex

#endif  // TEMPLEX_EXPLAIN_EXPLAINER_H_
