#include "explain/glossary.h"

#include "common/string_util.h"
#include "datalog/program.h"
#include "datalog/rule.h"

namespace templex {

Status DomainGlossary::Register(const std::string& predicate,
                                GlossaryEntry entry) {
  if (entry.arg_styles.empty()) {
    entry.arg_styles.assign(entry.arg_tokens.size(), NumberStyle::kPlain);
  }
  if (entry.arg_styles.size() != entry.arg_tokens.size()) {
    return Status::InvalidArgument("glossary entry for '" + predicate +
                                   "': arg_styles/arg_tokens size mismatch");
  }
  for (const std::string& token : entry.arg_tokens) {
    if (!Contains(entry.pattern, "<" + token + ">")) {
      return Status::InvalidArgument("glossary entry for '" + predicate +
                                     "': pattern does not mention token <" +
                                     token + ">");
    }
  }
  if (entries_.count(predicate) == 0) order_.push_back(predicate);
  entries_[predicate] = std::move(entry);
  return Status::OK();
}

const GlossaryEntry* DomainGlossary::Find(const std::string& predicate) const {
  auto it = entries_.find(predicate);
  return it == entries_.end() ? nullptr : &it->second;
}

NumberStyle DomainGlossary::StyleFor(const std::string& predicate,
                                     int position) const {
  const GlossaryEntry* entry = Find(predicate);
  if (entry == nullptr || position < 0 ||
      position >= static_cast<int>(entry->arg_styles.size())) {
    return NumberStyle::kPlain;
  }
  return entry->arg_styles[position];
}

std::string DomainGlossary::FormatValue(const Value& value,
                                        NumberStyle style) {
  if (value.is_numeric()) return FormatNumber(value.AsDouble(), style);
  return value.ToDisplayString();
}

Result<std::string> DomainGlossary::VerbalizeAtom(const Atom& atom) const {
  const GlossaryEntry* entry = Find(atom.predicate);
  if (entry == nullptr) {
    return Status::NotFound("no glossary entry for predicate '" +
                            atom.predicate + "'");
  }
  if (static_cast<int>(entry->arg_tokens.size()) != atom.arity()) {
    return Status::InvalidArgument("glossary arity mismatch for '" +
                                   atom.predicate + "'");
  }
  std::string text = entry->pattern;
  for (int pos = 0; pos < atom.arity(); ++pos) {
    const std::string token = "<" + entry->arg_tokens[pos] + ">";
    const Term& term = atom.terms[pos];
    if (term.is_variable()) {
      text = ReplaceAll(text, token, "<" + term.variable_name() + ">");
    } else {
      text = ReplaceAll(
          text, token,
          FormatValue(term.constant_value(), entry->arg_styles[pos]));
    }
  }
  return text;
}

Result<std::string> DomainGlossary::VerbalizeFact(const Fact& fact) const {
  const GlossaryEntry* entry = Find(fact.predicate);
  if (entry == nullptr) {
    return Status::NotFound("no glossary entry for predicate '" +
                            fact.predicate + "'");
  }
  if (static_cast<int>(entry->arg_tokens.size()) != fact.arity()) {
    return Status::InvalidArgument("glossary arity mismatch for '" +
                                   fact.predicate + "'");
  }
  std::string text = entry->pattern;
  for (int pos = 0; pos < fact.arity(); ++pos) {
    text = ReplaceAll(text, "<" + entry->arg_tokens[pos] + ">",
                      FormatValue(fact.args[pos], entry->arg_styles[pos]));
  }
  return text;
}

std::map<std::string, NumberStyle> DomainGlossary::VariableStyles(
    const Atom& atom) const {
  std::map<std::string, NumberStyle> styles;
  const GlossaryEntry* entry = Find(atom.predicate);
  if (entry == nullptr) return styles;
  for (int pos = 0;
       pos < atom.arity() &&
       pos < static_cast<int>(entry->arg_styles.size());
       ++pos) {
    if (atom.terms[pos].is_variable()) {
      styles.emplace(atom.terms[pos].variable_name(),
                     entry->arg_styles[pos]);
    }
  }
  return styles;
}

DomainGlossary MinimalFallbackGlossary(const Program& program) {
  // Arities by predicate, over heads and both body polarities (constraint
  // heads excluded: they never verbalize).
  std::map<std::string, int> arities;
  for (const Rule& rule : program.rules()) {
    for (const Atom& atom : rule.body) {
      arities[atom.predicate] = atom.arity();
    }
    for (const Atom& atom : rule.negative_body) {
      arities[atom.predicate] = atom.arity();
    }
    if (!rule.is_constraint) {
      arities[rule.head.predicate] = rule.head.arity();
    }
  }
  DomainGlossary glossary;
  for (const auto& [predicate, arity] : arities) {
    GlossaryEntry entry;
    entry.pattern = predicate + " holds for";
    for (int a = 0; a < arity; ++a) {
      const std::string token = "a" + std::to_string(a + 1);
      entry.pattern += (a ? ", <" : " <") + token + ">";
      entry.arg_tokens.push_back(token);
    }
    if (arity == 0) entry.pattern = predicate + " holds";
    // Generated patterns mention every token exactly once by construction.
    Status registered = glossary.Register(predicate, std::move(entry));
    (void)registered;
  }
  return glossary;
}

std::string DomainGlossary::ToTable() const {
  std::string table;
  for (const std::string& predicate : order_) {
    const GlossaryEntry& entry = entries_.at(predicate);
    std::string atom = predicate + "(" + Join(entry.arg_tokens, ", ") + ")";
    table += atom;
    table.append(atom.size() < 36 ? 36 - atom.size() : 1, ' ');
    table += "| " + entry.pattern + ".\n";
  }
  return table;
}

}  // namespace templex
