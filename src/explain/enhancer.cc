#include "explain/enhancer.h"

#include <vector>

#include "common/string_util.h"
#include "llm/llm_client.h"
#include "obs/event_log.h"

namespace templex {

namespace {

// Splits "Since c1, and c2, ..., then head." into clauses + head. Returns
// false when the sentence does not follow the verbalizer's shape.
bool ParseDeterministicSentence(const std::string& sentence,
                                std::vector<std::string>* clauses,
                                std::string* head) {
  std::string text = Trim(sentence);
  if (!text.starts_with("Since ")) return false;
  if (text.ends_with(".")) text.pop_back();
  size_t then_pos = text.rfind(", then ");
  if (then_pos == std::string::npos) return false;
  *head = text.substr(then_pos + 7);
  std::string body = text.substr(6, then_pos - 6);
  // Clauses are joined with ", and ".
  std::string marker = ", and ";
  size_t start = 0;
  clauses->clear();
  while (true) {
    size_t pos = body.find(marker, start);
    if (pos == std::string::npos) {
      clauses->push_back(body.substr(start));
      break;
    }
    clauses->push_back(body.substr(start, pos - start));
    start = pos + marker.size();
  }
  return !clauses->empty() && !head->empty();
}

// Replaces every <token> with <*> so clauses can be compared across rules
// that name the same story element differently (<f> vs <d>).
std::string NormalizeTokens(const std::string& text) {
  std::string result;
  size_t i = 0;
  while (i < text.size()) {
    if (text[i] == '<') {
      size_t close = text.find('>', i);
      if (close != std::string::npos) {
        result += "<*>";
        i = close + 1;
        continue;
      }
    }
    result.push_back(text[i]);
    ++i;
  }
  return result;
}

// <token> names occurring in `text`.
std::vector<std::string> TokensIn(const std::string& text) {
  std::vector<std::string> tokens;
  size_t pos = 0;
  while ((pos = text.find('<', pos)) != std::string::npos) {
    size_t close = text.find('>', pos);
    if (close == std::string::npos) break;
    tokens.push_back(text.substr(pos, close - pos + 1));
    pos = close + 1;
  }
  return tokens;
}

// Leading "<x>" subject of a clause, or empty.
std::string LeadingToken(const std::string& clause) {
  if (clause.empty() || clause[0] != '<') return "";
  size_t end = clause.find('>');
  if (end == std::string::npos) return "";
  return clause.substr(0, end + 1);
}

// Merges consecutive clauses that share the same "<x> ..." subject:
// "<d> is in default" + "<d> has <v> euros of debts" ->
// "<d> is in default and has <v> euros of debts".
std::vector<std::string> MergeSharedSubjects(
    const std::vector<std::string>& clauses) {
  std::vector<std::string> merged;
  for (const std::string& clause : clauses) {
    std::string subject = LeadingToken(clause);
    if (!merged.empty() && !subject.empty() &&
        LeadingToken(merged.back()) == subject &&
        clause.size() > subject.size() + 1) {
      merged.back() += " and" + clause.substr(subject.size());
    } else {
      merged.push_back(clause);
    }
  }
  return merged;
}

std::string ComposeSentence(const std::vector<std::string>& clauses,
                            const std::string& head, int frame,
                            bool chained) {
  const std::string body = JoinWithConjunction(clauses, ", ", ", and ");
  if (chained) {
    // The clause linking to the previous sentence was elided; open with a
    // consequence connective instead.
    switch (frame % 4) {
      case 0:
        return "Thus, " + head + ", given " + body + ".";
      case 1:
        return "As a result, " + head + ", since " + body + ".";
      case 2:
        return Capitalize(head) + ", because " + body + ".";
      default:
        return "Consequently, " + head + ", as " + body + ".";
    }
  }
  switch (frame % 4) {
    case 0:
      return "Since " + body + ", " + head + ".";
    case 1:
      return Capitalize(head) + ", given that " + body + ".";
    case 2:
      return "As " + body + ", " + head + ".";
    default:
      return Capitalize(head) + " because " + body + ".";
  }
}

// Rewrites one segment sentence given the normalized head of the previous
// segment; returns the rewritten text and outputs this segment's normalized
// head for chaining.
std::string RewriteWithContext(const std::string& sentence, int frame,
                               const std::string& prev_head_normalized,
                               std::string* head_normalized) {
  std::vector<std::string> clauses;
  std::string head;
  if (!ParseDeterministicSentence(sentence, &clauses, &head)) {
    *head_normalized = "";
    return sentence;  // unknown shape: leave untouched
  }
  *head_normalized = NormalizeTokens(head);
  // Elide clauses that restate the previous sentence's conclusion — the
  // main source of redundancy in chained deterministic templates — but only
  // when their tokens survive elsewhere in the sentence (the §4.4
  // completeness requirement).
  bool chained = false;
  if (!prev_head_normalized.empty()) {
    std::vector<std::string> kept;
    for (size_t i = 0; i < clauses.size(); ++i) {
      if (NormalizeTokens(clauses[i]) == prev_head_normalized) {
        std::string rest = head;
        for (size_t j = 0; j < clauses.size(); ++j) {
          if (j != i) rest += " " + clauses[j];
        }
        bool tokens_survive = true;
        for (const std::string& token : TokensIn(clauses[i])) {
          if (!Contains(rest, token)) {
            tokens_survive = false;
            break;
          }
        }
        if (tokens_survive) {
          chained = true;
          continue;
        }
      }
      kept.push_back(clauses[i]);
    }
    if (chained) clauses = std::move(kept);
  }
  clauses = MergeSharedSubjects(clauses);
  if (clauses.empty()) {
    return Capitalize(head) + ".";
  }
  return ComposeSentence(clauses, head, frame, chained);
}

}  // namespace

std::string CompressDeterministicText(const std::string& text, int variant) {
  std::vector<std::string> sentences = SplitSentences(text);
  std::string result;
  std::string prev_head;
  for (size_t i = 0; i < sentences.size(); ++i) {
    std::string head_normalized;
    std::string rewritten =
        RewriteWithContext(sentences[i], static_cast<int>(i) + variant,
                           prev_head, &head_normalized);
    if (!result.empty()) result += " ";
    result += rewritten;
    prev_head = head_normalized;
  }
  return result;
}

Status VerifyTokensPreserved(const TemplateSegment& segment,
                             const std::string& candidate_text) {
  for (const TemplateToken& token : segment.tokens) {
    if (!Contains(candidate_text, "<" + token.variable + ">")) {
      return Status::FailedPrecondition(
          "enhanced text omits token <" + token.variable + "> of rule '" +
          segment.rule_label + "'");
    }
  }
  return Status::OK();
}

std::string TemplateEnhancer::RewriteSentence(const std::string& sentence,
                                              int frame) const {
  std::string unused;
  return RewriteWithContext(sentence, frame, "", &unused);
}

namespace {

// Applies the degradation contract to one segment: keep the deterministic
// text and record why, so reports can surface the fallback.
void DegradeSegment(TemplateSegment* segment, std::string reason) {
  segment->enhanced_text.clear();
  segment->degraded = true;
  segment->degradation_reason = std::move(reason);
}

}  // namespace

Status TemplateEnhancer::Enhance(ExplanationTemplate* tmpl,
                                 int variant) const {
  std::string prev_head;
  for (size_t i = 0; i < tmpl->segments.size(); ++i) {
    TemplateSegment& segment = tmpl->segments[i];
    segment.degraded = false;
    segment.degradation_reason.clear();
    std::string head_normalized;
    std::string candidate =
        RewriteWithContext(segment.text, static_cast<int>(i) + variant,
                           prev_head, &head_normalized);
    Status preserved = VerifyTokensPreserved(segment, candidate);
    if (preserved.ok()) {
      segment.enhanced_text = std::move(candidate);
    } else {
      DegradeSegment(&segment, preserved.ToString());
    }
    prev_head = head_normalized;
  }
  return Status::OK();
}

Status TemplateEnhancer::EnhanceWithLlm(ExplanationTemplate* tmpl,
                                        LlmClient* llm,
                                        int* num_fallbacks) const {
  return EnhanceWithLlm(tmpl, llm, LlmEnhancementOptions(), num_fallbacks);
}

Status TemplateEnhancer::EnhanceWithLlm(ExplanationTemplate* tmpl,
                                        LlmClient* llm,
                                        const LlmEnhancementOptions& options,
                                        int* num_fallbacks) const {
  int fallbacks = 0;
  // Degrade + count + flight-recorder event, in one place.
  auto degrade = [&options, &fallbacks](TemplateSegment* segment,
                                        std::string reason) {
    if (options.event_log != nullptr) {
      options.event_log->Log(obs::EventLevel::kWarn, "explain",
                             "segment.degraded",
                             {{"rule", segment->rule_label},
                              {"reason", reason}});
    }
    DegradeSegment(segment, std::move(reason));
    ++fallbacks;
  };
  for (TemplateSegment& segment : tmpl->segments) {
    segment.degraded = false;
    segment.degradation_reason.clear();
    if (options.cancel.cancelled()) {
      return Status::Cancelled("template enhancement cancelled");
    }
    if (options.deadline.expired()) {
      // Out of time: the remaining segments degrade without burning LLM
      // calls, and the template still completes.
      degrade(&segment, "deadline expired before enhancement");
      continue;
    }
    Result<std::string> candidate =
        llm->Complete(kRephrasePrompt + segment.text);
    if (!candidate.ok()) {
      if (candidate.status().code() == StatusCode::kCancelled) {
        return candidate.status();
      }
      degrade(&segment, candidate.status().ToString());
      continue;
    }
    Status preserved = VerifyTokensPreserved(segment, candidate.value());
    if (!preserved.ok()) {
      degrade(&segment, preserved.ToString());
      continue;
    }
    segment.enhanced_text = std::move(candidate).value();
  }
  if (num_fallbacks != nullptr) *num_fallbacks = fallbacks;
  return Status::OK();
}

}  // namespace templex
