#ifndef TEMPLEX_EXPLAIN_MAPPER_H_
#define TEMPLEX_EXPLAIN_MAPPER_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "core/structural_analyzer.h"
#include "engine/proof.h"
#include "explain/template.h"

namespace templex {

// One selected explanation template applied to a concrete portion of a
// proof. `alignment[i]` lists the chase steps covered by the template's
// i-th segment — usually one step; several when aggregation contributors
// replicate the same rule (e.g. two σ1-derived controls jointly feeding
// σ3's share sum), in which case the segment's tokens expand to
// conjunctions ("Fondo Italiano and FrenchPLC").
struct TemplateInstance {
  const ExplanationTemplate* tmpl = nullptr;
  std::vector<std::vector<FactId>> alignment;
};

// One unit of a mapped explanation: a template instance, or — when no
// catalog path covers a proof portion — a single chase step to be
// verbalized directly (deterministic fallback, which keeps explanations
// complete for arbitrary programs).
struct MappedUnit {
  std::optional<TemplateInstance> instance;
  FactId fallback_step = kInvalidFactId;

  bool is_fallback() const { return !instance.has_value(); }
};

// Maps a proof onto the template catalog (§4.3): decomposes the proof along
// its critical-predicate facts into a root-grounded segment and a sequence
// of cycle segments, greedily merges leading segments into the simple
// reasoning path covering the highest number of chase steps, and selects
// the aggregation variant of each template according to the actual number
// of contributors in the chase.
class ChaseMapper {
 public:
  // All pointers must outlive the mapper; `templates` must be the catalog
  // generated from `analysis`.
  ChaseMapper(const Program* program, const StructuralAnalysis* analysis,
              const std::vector<ExplanationTemplate>* templates)
      : program_(program), analysis_(analysis), templates_(templates) {}

  Result<std::vector<MappedUnit>> Map(const Proof& proof) const;

 private:
  struct Segment {
    FactId critical = kInvalidFactId;     // the derived critical fact
    std::vector<FactId> steps;            // intensional steps, ascending
    std::vector<FactId> anchors;          // earlier critical facts consumed
  };

  std::vector<Segment> SplitIntoSegments(const Proof& proof) const;

  // Finds the catalog template matching `steps` (see MatchSteps in the
  // implementation); nullptr when none does.
  const ExplanationTemplate* MatchSteps(const Proof& proof,
                                        const std::vector<FactId>& steps,
                                        ReasoningPath::Kind kind,
                                        const std::string& target_predicate,
                                        const std::string& anchor_predicate)
      const;

  TemplateInstance AlignSteps(const ExplanationTemplate& tmpl,
                              const Proof& proof,
                              const std::vector<FactId>& steps) const;

  const Program* program_;
  const StructuralAnalysis* analysis_;
  const std::vector<ExplanationTemplate>* templates_;
};

}  // namespace templex

#endif  // TEMPLEX_EXPLAIN_MAPPER_H_
