#include "explain/explainer.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"
#include "engine/fact_store.h"
#include "explain/enhancer.h"
#include "explain/template_generator.h"
#include "obs/stage.h"

namespace templex {

namespace {

// Recovers the variable binding of one aggregation contribution by
// re-matching the rule's body atoms against the contribution's parent
// facts (which are stored in body-atom order).
Binding ContributionBinding(const Rule& rule, const AggregateContribution& c,
                            const ChaseGraph& graph) {
  Binding binding;
  const size_t n = std::min(rule.body.size(), c.parents.size());
  for (size_t i = 0; i < n; ++i) {
    MatchAtom(rule.body[i], graph.node(c.parents[i]).fact, &binding);
  }
  for (const Assignment& a : rule.assignments) {
    Result<Value> v = a.expr->Eval(binding);
    if (v.ok()) binding.Set(a.variable, std::move(v).value());
  }
  return binding;
}

// Joins formatted values into "a", "a and b", or "a, b and c", collapsing
// the list when every element is identical.
std::string JoinValues(const std::vector<std::string>& values) {
  if (values.empty()) return "";
  bool all_equal = std::all_of(values.begin(), values.end(),
                               [&values](const std::string& v) {
                                 return v == values.front();
                               });
  if (all_equal) return values.front();
  return JoinWithConjunction(values, ", ", " and ");
}

}  // namespace

Explainer::Explainer(Program program, DomainGlossary glossary,
                     ExplainerOptions options)
    : program_(std::move(program)),
      glossary_(std::move(glossary)),
      options_(options) {}

Result<std::unique_ptr<Explainer>> Explainer::Create(
    Program program, DomainGlossary glossary, ExplainerOptions options) {
  // Every predicate of the program must have a glossary entry, or template
  // generation would fail later with a less direct error.
  for (const std::string& predicate : program.Predicates()) {
    if (!glossary.Has(predicate)) {
      return Status::InvalidArgument("glossary has no entry for predicate '" +
                                     predicate + "'");
    }
  }
  obs::Span create_span(options.tracer, "explain.create");
  TEMPLEX_RETURN_IF_ERROR(CheckInterruption(options.deadline, options.cancel,
                                            "explainer pipeline build"));
  if (options.analyzer.metrics == nullptr) {
    options.analyzer.metrics = options.metrics;
  }
  if (options.analyzer.tracer == nullptr) {
    options.analyzer.tracer = options.tracer;
  }
  std::unique_ptr<Explainer> explainer(
      new Explainer(std::move(program), std::move(glossary), options));

  Result<StructuralAnalysis> analysis = [&] {
    obs::StageScope stage(options.metrics, options.tracer, "explain.analyze",
                          "explain.phase.analysis.seconds");
    return AnalyzeProgram(explainer->program_, options.analyzer);
  }();
  if (!analysis.ok()) return analysis.status();
  explainer->analysis_ = std::move(analysis).value();
  TEMPLEX_RETURN_IF_ERROR(CheckInterruption(options.deadline, options.cancel,
                                            "template generation"));

  TemplateGenerator generator(&explainer->program_, &explainer->glossary_);
  Result<std::vector<ExplanationTemplate>> templates = [&] {
    obs::StageScope stage(options.metrics, options.tracer,
                          "explain.generate_templates",
                          "explain.phase.template_generation.seconds");
    return generator.Generate(explainer->analysis_);
  }();
  if (!templates.ok()) return templates.status();
  explainer->templates_ = std::move(templates).value();
  if (options.metrics != nullptr) {
    options.metrics->counter("explain.templates.generated")
        ->Increment(static_cast<int64_t>(explainer->templates_.size()));
  }

  if (options.enhance) {
    obs::StageScope stage(options.metrics, options.tracer, "explain.enhance",
                          "explain.phase.enhancement.seconds");
    TemplateEnhancer enhancer;
    LlmEnhancementOptions enhancement;
    enhancement.deadline = options.deadline;
    enhancement.cancel = options.cancel;
    enhancement.event_log = options.event_log;
    // Segments whose LLM rewrite failed the token-preservation (omission)
    // check and kept their deterministic text.
    int omission_fallbacks = 0;
    for (ExplanationTemplate& tmpl : explainer->templates_) {
      if (options.enhancement_llm != nullptr) {
        int fallbacks = 0;
        TEMPLEX_RETURN_IF_ERROR(enhancer.EnhanceWithLlm(
            &tmpl, options.enhancement_llm, enhancement, &fallbacks));
        omission_fallbacks += fallbacks;
      } else {
        TEMPLEX_RETURN_IF_ERROR(
            enhancer.Enhance(&tmpl, options.enhancement_variant));
      }
    }
    if (options.metrics != nullptr) {
      options.metrics->counter("explain.enhance.omission_fallbacks")
          ->Increment(omission_fallbacks);
      // Full degradation accounting (§4.4 extended): every segment that
      // kept deterministic text because its enhancement failed, whatever
      // the failure mode.
      options.metrics->counter("explain.enhance.degraded_segments")
          ->Increment(explainer->degraded_segment_count());
    }
  }

  explainer->verbalizer_ = std::make_unique<Verbalizer>(
      &explainer->program_, &explainer->glossary_);
  explainer->mapper_ = std::make_unique<ChaseMapper>(
      &explainer->program_, &explainer->analysis_, &explainer->templates_);
  return explainer;
}

Result<std::string> Explainer::Explain(const ChaseResult& chase,
                                       const Fact& fact) const {
  Result<FactId> id = chase.Find(fact);
  if (!id.ok()) return id.status();
  if (chase.graph.node(id.value()).is_extensional()) {
    Result<std::string> text = glossary_.VerbalizeFact(fact);
    if (!text.ok()) return text.status();
    return text.value() + " This is part of the factual knowledge.";
  }
  return ExplainProof(Proof::Extract(chase.graph, id.value()));
}

Result<std::string> Explainer::ExplainProof(const Proof& proof) const {
  obs::Span query_span(options_.tracer, "explain.query");
  TEMPLEX_RETURN_IF_ERROR(CheckInterruption(options_.deadline,
                                            options_.cancel,
                                            "explanation query"));
  if (options_.metrics != nullptr) {
    options_.metrics->counter("explain.queries")->Increment();
  }
  Result<std::vector<MappedUnit>> units = [&] {
    obs::StageScope stage(options_.metrics, options_.tracer, "explain.map",
                          "explain.phase.map.seconds");
    return MapProof(proof);
  }();
  if (!units.ok()) return units.status();
  obs::StageScope render_stage(options_.metrics, options_.tracer,
                               "explain.render",
                               "explain.phase.render.seconds");
  obs::Counter* template_units = nullptr;
  obs::Counter* fallback_units = nullptr;
  if (options_.metrics != nullptr) {
    template_units = options_.metrics->counter("explain.units.template");
    fallback_units = options_.metrics->counter("explain.units.fallback");
  }
  std::string text;
  for (const MappedUnit& unit : units.value()) {
    if (template_units != nullptr) {
      (unit.is_fallback() ? fallback_units : template_units)->Increment();
    }
    Result<std::string> rendered =
        RenderUnit(proof, unit, options_.enhance);
    if (!rendered.ok()) return rendered.status();
    if (!text.empty()) text += " ";
    text += rendered.value();
  }
  return text;
}

Result<std::vector<std::string>> Explainer::ExplainAllDerivations(
    const ChaseResult& chase, const Fact& fact) const {
  Result<FactId> id = chase.Find(fact);
  if (!id.ok()) return id.status();
  std::vector<std::string> stories;
  Result<std::string> primary = Explain(chase, fact);
  if (!primary.ok()) return primary.status();
  stories.push_back(std::move(primary).value());
  const ChaseNode& node = chase.graph.node(id.value());
  for (size_t i = 0; i < node.alternatives.size(); ++i) {
    ChaseGraph variant = chase.graph.WithAlternative(id.value(), i);
    Result<std::string> text =
        ExplainProof(Proof::Extract(variant, id.value()));
    if (!text.ok()) return text.status();
    stories.push_back(std::move(text).value());
  }
  return stories;
}

Result<std::string> Explainer::DeterministicExplanation(
    const Proof& proof) const {
  return verbalizer_->VerbalizeProof(proof);
}

Result<std::vector<MappedUnit>> Explainer::MapProof(const Proof& proof) const {
  return mapper_->Map(proof);
}

int64_t Explainer::degraded_segment_count() const {
  int64_t degraded = 0;
  for (const ExplanationTemplate& tmpl : templates_) {
    for (const TemplateSegment& segment : tmpl.segments) {
      if (segment.degraded) ++degraded;
    }
  }
  return degraded;
}

Result<std::string> Explainer::RenderUnit(const Proof& proof,
                                          const MappedUnit& unit,
                                          bool enhanced) const {
  const ChaseGraph& graph = proof.graph();
  if (unit.is_fallback()) {
    return verbalizer_->VerbalizeStep(graph, unit.fallback_step);
  }
  const TemplateInstance& instance = *unit.instance;
  const ExplanationTemplate& tmpl = *instance.tmpl;
  std::string text;
  for (size_t si = 0; si < tmpl.segments.size(); ++si) {
    const TemplateSegment& segment = tmpl.segments[si];
    const std::vector<FactId>& steps = instance.alignment[si];
    if (steps.empty()) {
      return Status::Internal("template segment for rule '" +
                              segment.rule_label +
                              "' aligned to no chase step");
    }
    const Rule* rule = program_.FindRule(segment.rule_label);
    if (rule == nullptr) {
      return Status::Internal("unknown rule '" + segment.rule_label + "'");
    }
    // Per-contribution bindings for multi-aggregation segments: tokens of
    // body variables expand to one value per contributor.
    std::vector<Binding> contribution_bindings;
    if (segment.multi_aggregation && steps.size() == 1) {
      for (const AggregateContribution& c :
           graph.node(steps.front()).contributions) {
        contribution_bindings.push_back(ContributionBinding(*rule, c, graph));
      }
    }
    std::string sentence = segment.effective_text();
    if (enhanced && segment.enhanced_text.empty()) {
      sentence = segment.text;  // enhancement fell back on this segment
    } else if (!enhanced) {
      sentence = segment.text;
    }
    for (const TemplateToken& token : segment.tokens) {
      std::vector<std::string> values;
      if (!contribution_bindings.empty()) {
        for (const Binding& cb : contribution_bindings) {
          std::optional<Value> v = cb.Get(token.variable);
          if (v.has_value()) {
            values.push_back(
                DomainGlossary::FormatValue(*v, token.style));
          }
        }
      }
      if (values.empty()) {
        for (FactId step : steps) {
          std::optional<Value> v =
              graph.node(step).binding.Get(token.variable);
          if (v.has_value()) {
            values.push_back(DomainGlossary::FormatValue(*v, token.style));
          }
        }
      }
      if (values.empty()) {
        return Status::Internal("token <" + token.variable +
                                "> of rule '" + segment.rule_label +
                                "' has no bound value");
      }
      sentence =
          ReplaceAll(sentence, "<" + token.variable + ">", JoinValues(values));
    }
    if (!text.empty()) text += " ";
    text += sentence;
  }
  return text;
}

}  // namespace templex
