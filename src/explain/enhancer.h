#ifndef TEMPLEX_EXPLAIN_ENHANCER_H_
#define TEMPLEX_EXPLAIN_ENHANCER_H_

#include <string>

#include "common/deadline.h"
#include "common/status.h"
#include "explain/template.h"

namespace templex {

class LlmClient;  // llm/llm_client.h

namespace obs {
class EventLog;  // obs/event_log.h
}

// Run-scoped failure-model controls for the LLM enhancement pass
// (common/deadline.h). Defaults are inert: no deadline, no cancellation,
// no flight recorder.
struct LlmEnhancementOptions {
  Deadline deadline;
  CancellationToken cancel;
  // When set, every degraded segment is recorded as a warn-level
  // "segment.degraded" event (component "explain") naming the rule and the
  // degradation reason, so an enhancement pass gone wrong shows up in
  // crash reports next to the LLM retry events. May be null; must outlive
  // the pass.
  obs::EventLog* event_log = nullptr;
};

// The automatic preventive check of §4.4: every token of the deterministic
// segment must still occur (as "<name>") in the candidate enhanced text.
// Returns FailedPrecondition naming the first missing token otherwise.
Status VerifyTokensPreserved(const TemplateSegment& segment,
                             const std::string& candidate_text);

// Enhances the deterministic explanation templates into more fluent,
// compact wording (§4.2, "Enhancement of templates").
//
// The paper performs this step once, offline, with an LLM applied to the
// *rules only* (never to data) and a human-in-the-loop/token check. Since
// this reproduction has no LLM API, the default enhancer is a deterministic
// rule-based rewriter that applies the same classes of transformation the
// paper reports the LLM performing: merging clauses that share a subject,
// rotating sentence frames so consecutive sentences do not all read "Since
// ..., then ...", and varying connectives. Different `variant` values yield
// different but interchangeable phrasings (the paper's repeated-prompt
// trick to increase textual richness).
//
// Every rewritten segment is passed through VerifyTokensPreserved; a
// failing segment silently keeps its deterministic text (the paper's
// fallback for template hallucinations/omissions).
class TemplateEnhancer {
 public:
  TemplateEnhancer() = default;

  // Rewrites every segment of `tmpl` in place (fills enhanced_text).
  Status Enhance(ExplanationTemplate* tmpl, int variant = 0) const;

  // Same, but the rewriting is delegated to an LLM ("Rephrase the following
  // text: ..."), mirroring the paper's automated pipeline. Graceful
  // degradation contract (§4.4 extended): ANY per-segment failure — an LLM
  // error that survived its retry policy, a token-check omission, or the
  // deadline expiring before the segment's turn — degrades that segment to
  // its deterministic text, marks it (TemplateSegment::degraded + reason),
  // and the pass continues; a complete template always comes back. Only
  // cancellation aborts the pass (kCancelled). Returns the number of
  // degraded segments via `num_fallbacks`.
  Status EnhanceWithLlm(ExplanationTemplate* tmpl, LlmClient* llm,
                        int* num_fallbacks) const;
  Status EnhanceWithLlm(ExplanationTemplate* tmpl, LlmClient* llm,
                        const LlmEnhancementOptions& options,
                        int* num_fallbacks) const;

  // Rewrites one deterministic sentence (exposed for tests).
  std::string RewriteSentence(const std::string& sentence, int frame) const;
};

// Rewrites a whole deterministic explanation — symbolic (template) or
// ground — into more fluent prose with the same clause elision and sentence
// frame rotation the enhancer applies per segment. The simulated LLM uses
// this to model the fluency of a GPT paraphrase.
std::string CompressDeterministicText(const std::string& text,
                                      int variant = 0);

}  // namespace templex

#endif  // TEMPLEX_EXPLAIN_ENHANCER_H_
