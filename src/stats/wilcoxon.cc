#include "stats/wilcoxon.h"

#include <algorithm>
#include <cmath>

namespace templex {

double StandardNormalCdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

Result<WilcoxonResult> WilcoxonSignedRank(const std::vector<double>& a,
                                          const std::vector<double>& b) {
  if (a.size() != b.size() || a.empty()) {
    return Status::InvalidArgument(
        "Wilcoxon signed-rank requires equal-length, non-empty samples");
  }
  struct Diff {
    double abs;
    int sign;
  };
  std::vector<Diff> diffs;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    if (d == 0.0) continue;  // standard practice: drop zero differences
    diffs.push_back(Diff{std::fabs(d), d > 0 ? 1 : -1});
  }
  const int n = static_cast<int>(diffs.size());
  if (n < 5) {
    return Status::InvalidArgument(
        "Wilcoxon normal approximation needs at least 5 non-zero pairs, got " +
        std::to_string(n));
  }
  std::sort(diffs.begin(), diffs.end(),
            [](const Diff& x, const Diff& y) { return x.abs < y.abs; });

  WilcoxonResult result;
  result.n_effective = n;
  double tie_correction = 0.0;
  size_t i = 0;
  while (i < diffs.size()) {
    size_t j = i;
    while (j < diffs.size() && diffs[j].abs == diffs[i].abs) ++j;
    // Average rank for the tie group [i, j).
    const double avg_rank =
        (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
    const double t = static_cast<double>(j - i);
    if (t > 1.0) tie_correction += t * t * t - t;
    for (size_t k = i; k < j; ++k) {
      if (diffs[k].sign > 0) {
        result.w_plus += avg_rank;
      } else {
        result.w_minus += avg_rank;
      }
    }
    i = j;
  }
  const double nn = static_cast<double>(n);
  const double mean = nn * (nn + 1.0) / 4.0;
  const double variance =
      nn * (nn + 1.0) * (2.0 * nn + 1.0) / 24.0 - tie_correction / 48.0;
  const double w = std::min(result.w_plus, result.w_minus);
  if (variance <= 0.0) {
    result.z = 0.0;
    result.p_value = 1.0;
    return result;
  }
  // Continuity correction toward the mean.
  result.z = (w - mean + 0.5) / std::sqrt(variance);
  result.p_value = std::min(1.0, 2.0 * StandardNormalCdf(result.z));
  return result;
}

}  // namespace templex
