#include "stats/descriptive.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace templex {

double Mean(const std::vector<double>& sample) {
  assert(!sample.empty());
  double sum = 0.0;
  for (double v : sample) sum += v;
  return sum / static_cast<double>(sample.size());
}

double StdDev(const std::vector<double>& sample) {
  if (sample.size() < 2) return 0.0;
  const double mean = Mean(sample);
  double ss = 0.0;
  for (double v : sample) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(sample.size() - 1));
}

double Quantile(std::vector<double> sample, double q) {
  assert(!sample.empty());
  std::sort(sample.begin(), sample.end());
  q = std::clamp(q, 0.0, 1.0);
  const double position = q * static_cast<double>(sample.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(position));
  const size_t hi = static_cast<size_t>(std::ceil(position));
  const double fraction = position - static_cast<double>(lo);
  return sample[lo] + (sample[hi] - sample[lo]) * fraction;
}

double Median(std::vector<double> sample) {
  return Quantile(std::move(sample), 0.5);
}

BoxStats Summarize(const std::vector<double>& sample) {
  assert(!sample.empty());
  BoxStats stats;
  stats.min = *std::min_element(sample.begin(), sample.end());
  stats.max = *std::max_element(sample.begin(), sample.end());
  stats.q1 = Quantile(sample, 0.25);
  stats.median = Quantile(sample, 0.5);
  stats.q3 = Quantile(sample, 0.75);
  stats.mean = Mean(sample);
  stats.n = static_cast<int>(sample.size());
  return stats;
}

std::string BoxStats::ToString() const {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "n=%d min=%.3f q1=%.3f med=%.3f q3=%.3f max=%.3f mean=%.3f",
                n, min, q1, median, q3, max, mean);
  return buffer;
}

}  // namespace templex
