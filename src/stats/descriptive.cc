#include "stats/descriptive.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace templex {

double Mean(const std::vector<double>& sample) {
  assert(!sample.empty());
  double sum = 0.0;
  for (double v : sample) sum += v;
  return sum / static_cast<double>(sample.size());
}

double StdDev(const std::vector<double>& sample) {
  if (sample.size() < 2) return 0.0;
  const double mean = Mean(sample);
  double ss = 0.0;
  for (double v : sample) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(sample.size() - 1));
}

double Quantile(std::vector<double> sample, double q) {
  assert(!sample.empty());
  std::sort(sample.begin(), sample.end());
  q = std::clamp(q, 0.0, 1.0);
  const double position = q * static_cast<double>(sample.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(position));
  const size_t hi = static_cast<size_t>(std::ceil(position));
  const double fraction = position - static_cast<double>(lo);
  return sample[lo] + (sample[hi] - sample[lo]) * fraction;
}

double Median(std::vector<double> sample) {
  return Quantile(std::move(sample), 0.5);
}

BoxStats Summarize(const std::vector<double>& sample) {
  assert(!sample.empty());
  BoxStats stats;
  stats.min = *std::min_element(sample.begin(), sample.end());
  stats.max = *std::max_element(sample.begin(), sample.end());
  stats.q1 = Quantile(sample, 0.25);
  stats.median = Quantile(sample, 0.5);
  stats.q3 = Quantile(sample, 0.75);
  stats.mean = Mean(sample);
  stats.n = static_cast<int>(sample.size());
  return stats;
}

namespace {

// Quantile over snapshot buckets, mirroring obs::Histogram::Percentile:
// find the bucket holding the target rank, interpolate inside it, clamp to
// the exact observed range. The overflow bucket reports the observed max.
double BucketQuantile(const obs::HistogramSnapshot& h, double q) {
  const double target = q * static_cast<double>(h.count);
  int64_t cumulative = 0;
  for (size_t i = 0; i < h.buckets.size(); ++i) {
    if (h.buckets[i] == 0) continue;
    const int64_t next = cumulative + h.buckets[i];
    if (static_cast<double>(next) >= target) {
      if (i >= h.bounds.size()) return h.max;
      const double lower = i == 0 ? 0.0 : h.bounds[i - 1];
      const double upper = h.bounds[i];
      const double fraction = (target - static_cast<double>(cumulative)) /
                              static_cast<double>(h.buckets[i]);
      return std::clamp(lower + (upper - lower) * fraction, h.min, h.max);
    }
    cumulative = next;
  }
  return h.max;
}

}  // namespace

BoxStats SummarizeHistogram(const obs::HistogramSnapshot& histogram) {
  BoxStats stats;
  if (histogram.count <= 0) return stats;
  stats.n = static_cast<int>(histogram.count);
  stats.min = histogram.min;
  stats.max = histogram.max;
  stats.mean = histogram.sum / static_cast<double>(histogram.count);
  stats.q1 = BucketQuantile(histogram, 0.25);
  stats.median = BucketQuantile(histogram, 0.5);
  stats.q3 = BucketQuantile(histogram, 0.75);
  return stats;
}

std::string BoxStats::ToString() const {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "n=%d min=%.3f q1=%.3f med=%.3f q3=%.3f max=%.3f mean=%.3f",
                n, min, q1, median, q3, max, mean);
  return buffer;
}

}  // namespace templex
