#ifndef TEMPLEX_STATS_WILCOXON_H_
#define TEMPLEX_STATS_WILCOXON_H_

#include <vector>

#include "common/status.h"

namespace templex {

// Result of a two-sided Wilcoxon signed-rank test over paired samples.
struct WilcoxonResult {
  double w_plus = 0.0;   // sum of positive-difference ranks
  double w_minus = 0.0;  // sum of negative-difference ranks
  int n_effective = 0;   // pairs with non-zero difference
  double z = 0.0;        // normal approximation statistic
  double p_value = 1.0;  // two-sided
};

// Two-sided Wilcoxon signed-rank test for paired samples `a` and `b`
// (equal, non-zero length). Zero differences are discarded; tied absolute
// differences receive average ranks, with the variance tie correction
// applied to the normal approximation (the standard treatment for Likert
// data, cf. the studies the paper follows [25, 27]). Requires at least 5
// effective pairs for the approximation; fewer is an InvalidArgument.
Result<WilcoxonResult> WilcoxonSignedRank(const std::vector<double>& a,
                                          const std::vector<double>& b);

// Standard normal CDF (exposed for tests).
double StandardNormalCdf(double z);

}  // namespace templex

#endif  // TEMPLEX_STATS_WILCOXON_H_
