#ifndef TEMPLEX_STATS_DESCRIPTIVE_H_
#define TEMPLEX_STATS_DESCRIPTIVE_H_

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace templex {

// Descriptive statistics used by the evaluation harness. All functions
// require a non-empty sample unless stated otherwise.

double Mean(const std::vector<double>& sample);

// Sample standard deviation (n-1 denominator); 0 for samples of size < 2.
double StdDev(const std::vector<double>& sample);

double Median(std::vector<double> sample);

// Linear-interpolation quantile, q in [0, 1].
double Quantile(std::vector<double> sample, double q);

// Five-number summary backing the paper's boxplots (Figures 17, 18).
struct BoxStats {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  int n = 0;

  // "n=10 min=0.00 q1=0.05 med=0.10 q3=0.20 max=0.40 mean=0.12".
  std::string ToString() const;
};

BoxStats Summarize(const std::vector<double>& sample);

// Five-number summary from a recorded latency histogram (e.g. the
// chase.phase.*.seconds snapshots), so Figure-18-style boxplots run off the
// observability layer instead of bespoke timers. min/max/mean are exact
// (the snapshot carries them); quartiles interpolate linearly inside the
// containing bucket, clamped to [min, max] — the same Prometheus-style
// estimate obs::Histogram::Percentile reports. Empty histograms summarize
// to an all-zero BoxStats with n = 0.
BoxStats SummarizeHistogram(const obs::HistogramSnapshot& histogram);

}  // namespace templex

#endif  // TEMPLEX_STATS_DESCRIPTIVE_H_
