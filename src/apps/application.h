#ifndef TEMPLEX_APPS_APPLICATION_H_
#define TEMPLEX_APPS_APPLICATION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/chase.h"
#include "engine/query.h"
#include "engine/query_planner.h"
#include "explain/anonymizer.h"
#include "explain/explainer.h"

namespace templex {

// A deployed Knowledge Graph application (§4.4's "automated pipeline" as a
// single object): the rule program, its domain glossary, the explanation
// pipeline built once at deployment, the extensional facts, and the chase
// state — with query and explanation-query entry points. This is the facade
// a downstream system (e.g. a graph front-end) integrates against.
//
//   auto app = KnowledgeGraphApplication::Create(
//       CompanyControlProgram(), CompanyControlGlossary()).value();
//   app->AddFacts(LoadFactsCsv("ownership.csv").value());
//   app->Run().IgnoreResult...
//   for (const Fact& c : app->Query({"Control", {Null(), Null()}})) ...
//   std::string report = app->Explain(c).value();
class KnowledgeGraphApplication {
 public:
  // Builds the pipeline (structural analysis + templates + enhancement).
  static Result<std::unique_ptr<KnowledgeGraphApplication>> Create(
      Program program, DomainGlossary glossary,
      ExplainerOptions options = ExplainerOptions());

  KnowledgeGraphApplication(const KnowledgeGraphApplication&) = delete;
  KnowledgeGraphApplication& operator=(const KnowledgeGraphApplication&) =
      delete;

  // Appends extensional facts. Invalidates any previous chase.
  void AddFacts(std::vector<Fact> facts);

  // Runs the chase over the loaded facts.
  Status Run(ChaseConfig config = ChaseConfig());

  // Runs just enough of the chase to answer `goal_pattern` (Null arguments
  // act as wildcards): plans materialize-vs-qsqr with PlanQuery, then
  // either a full Run or a query-driven evaluation (engine/query.h). Either
  // way the application ends up with a chase installed, so Query() and
  // Explain() work unchanged afterwards — under the query-driven strategy
  // they only cover goal-relevant facts, with byte-identical answers and
  // explanation text for those.
  struct QueryExecution {
    QueryPlan plan;       // the chooser's verdict and estimates
    QueryStats stats;     // what the evaluation actually did
    std::vector<Fact> answers;
  };
  Result<QueryExecution> RunForQuery(const Fact& goal_pattern,
                                     ChaseConfig config = ChaseConfig(),
                                     EvalMode requested = EvalMode::kAuto);

  bool has_run() const { return chase_ != nullptr; }

  // All facts (extensional and derived) matching `pattern`: same predicate
  // and arity, with Null arguments acting as wildcards. Requires has_run().
  std::vector<Fact> Query(const Fact& pattern) const;

  // Answers the explanation query Q_e = {fact}. Requires has_run().
  Result<std::string> Explain(const Fact& fact) const;

  // Same, with entity pseudonymization applied (for texts leaving the
  // trust boundary). Returns the anonymized text plus the mapping.
  Result<AnonymizedText> ExplainAnonymized(
      const Fact& fact,
      const AnonymizerOptions& options = AnonymizerOptions()) const;

  // What-if simulation (the §5 analyst workflow: "simulate the effect of a
  // shock over the financial market"): reasons over the loaded facts plus
  // `hypothetical` facts WITHOUT mutating the application's state, and
  // reports the derived facts that are new relative to the last Run().
  // Each new fact can be explained against the returned chase.
  struct WhatIfResult {
    ChaseResult chase;
    // Derived facts present under the hypothesis but absent from the
    // baseline run, in derivation order.
    std::vector<Fact> new_facts;
  };
  // Requires has_run() (the baseline to diff against).
  Result<WhatIfResult> WhatIf(const std::vector<Fact>& hypothetical,
                              ChaseConfig config = ChaseConfig()) const;

  // Explains a fact against a what-if chase (same pipeline, different
  // instance).
  Result<std::string> ExplainUnder(const WhatIfResult& scenario,
                                   const Fact& fact) const;

  // Negative-constraint violations of the last run.
  const std::vector<ConstraintViolation>& violations() const;

  // JSON exports for front-ends (see io/json.h). Require has_run() where a
  // chase is involved.
  std::string ExportTemplatesJson() const;
  Result<std::string> ExportChaseJson() const;
  Result<std::string> ExportProofJson(const Fact& fact) const;

  const Explainer& explainer() const { return *explainer_; }
  const ChaseResult& chase() const { return *chase_; }
  const std::vector<Fact>& facts() const { return facts_; }

 private:
  KnowledgeGraphApplication() = default;

  std::unique_ptr<Explainer> explainer_;
  std::vector<Fact> facts_;
  std::unique_ptr<ChaseResult> chase_;
};

}  // namespace templex

#endif  // TEMPLEX_APPS_APPLICATION_H_
