#ifndef TEMPLEX_APPS_GLOSSARIES_H_
#define TEMPLEX_APPS_GLOSSARIES_H_

#include "explain/glossary.h"

namespace templex {

// Domain glossaries of the financial KG applications, following the
// internal data dictionary of Figures 7 and 11. Monetary amounts are
// expressed in millions of euros (rendered "7M"), ownership shares as
// fractions (rendered "83%").

// Glossary for SimplifiedStressTestProgram (Figure 7).
DomainGlossary SimplifiedStressTestGlossary();

// Glossary for CompanyControlProgram (Figure 11, control part).
DomainGlossary CompanyControlGlossary();

// Glossary for StressTestProgram (Figure 11, stress-test part).
DomainGlossary StressTestGlossary();

// Glossary for GoldenPowerProgram.
DomainGlossary GoldenPowerGlossary();

// Glossary for CloseLinksProgram.
DomainGlossary CloseLinksGlossary();

}  // namespace templex

#endif  // TEMPLEX_APPS_GLOSSARIES_H_
