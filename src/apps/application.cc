#include "apps/application.h"

#include "io/json.h"

namespace templex {

Result<std::unique_ptr<KnowledgeGraphApplication>>
KnowledgeGraphApplication::Create(Program program, DomainGlossary glossary,
                                  ExplainerOptions options) {
  Result<std::unique_ptr<Explainer>> explainer =
      Explainer::Create(std::move(program), std::move(glossary), options);
  if (!explainer.ok()) return explainer.status();
  std::unique_ptr<KnowledgeGraphApplication> app(
      new KnowledgeGraphApplication());
  app->explainer_ = std::move(explainer).value();
  return app;
}

void KnowledgeGraphApplication::AddFacts(std::vector<Fact> facts) {
  facts_.insert(facts_.end(), std::make_move_iterator(facts.begin()),
                std::make_move_iterator(facts.end()));
  chase_.reset();
}

Status KnowledgeGraphApplication::Run(ChaseConfig config) {
  Result<ChaseResult> result =
      ChaseEngine(config).Run(explainer_->program(), facts_);
  if (!result.ok()) return result.status();
  chase_ = std::make_unique<ChaseResult>(std::move(result).value());
  return Status::OK();
}

Result<KnowledgeGraphApplication::QueryExecution>
KnowledgeGraphApplication::RunForQuery(const Fact& goal_pattern,
                                       ChaseConfig config,
                                       EvalMode requested) {
  const Program& program = explainer_->program();
  TEMPLEX_RETURN_IF_ERROR(ValidateGoalPattern(program, facts_, goal_pattern));
  QueryExecution execution;
  execution.plan = PlanQuery(program, facts_, goal_pattern, requested);
  if (execution.plan.mode == EvalMode::kMaterialize) {
    TEMPLEX_RETURN_IF_ERROR(Run(config));
    execution.answers = Query(goal_pattern);
    execution.stats.query_driven = false;
    execution.stats.fallback_reason = execution.plan.reason;
    execution.stats.edb_facts = static_cast<int64_t>(facts_.size());
    execution.stats.answers = static_cast<int64_t>(execution.answers.size());
    return execution;
  }
  Result<QueryResult> result =
      QueryEvaluator(config).Evaluate(program, facts_, goal_pattern);
  if (!result.ok()) return result.status();
  execution.answers = std::move(result.value().answers);
  execution.stats = std::move(result.value().stats);
  chase_ = std::make_unique<ChaseResult>(std::move(result.value().chase));
  return execution;
}

std::vector<Fact> KnowledgeGraphApplication::Query(
    const Fact& pattern) const {
  std::vector<Fact> matches;
  if (chase_ == nullptr) return matches;
  for (FactId id : chase_->graph.FactsOf(pattern.predicate)) {
    const Fact& fact = chase_->graph.node(id).fact;
    if (fact.arity() != pattern.arity()) continue;
    bool ok = true;
    for (int i = 0; i < pattern.arity() && ok; ++i) {
      if (!pattern.args[i].is_null()) ok = pattern.args[i] == fact.args[i];
    }
    if (ok) matches.push_back(fact);
  }
  return matches;
}

Result<std::string> KnowledgeGraphApplication::Explain(
    const Fact& fact) const {
  if (chase_ == nullptr) {
    return Status::FailedPrecondition("Run() the application first");
  }
  return explainer_->Explain(*chase_, fact);
}

Result<AnonymizedText> KnowledgeGraphApplication::ExplainAnonymized(
    const Fact& fact, const AnonymizerOptions& options) const {
  if (chase_ == nullptr) {
    return Status::FailedPrecondition("Run() the application first");
  }
  Result<FactId> id = chase_->Find(fact);
  if (!id.ok()) return id.status();
  Proof proof = Proof::Extract(chase_->graph, id.value());
  Result<std::string> text = explainer_->ExplainProof(proof);
  if (!text.ok()) return text.status();
  return AnonymizeExplanation(text.value(), proof, options);
}

Result<KnowledgeGraphApplication::WhatIfResult>
KnowledgeGraphApplication::WhatIf(const std::vector<Fact>& hypothetical,
                                  ChaseConfig config) const {
  if (chase_ == nullptr) {
    return Status::FailedPrecondition(
        "Run() the application first: the what-if diffs against the "
        "baseline chase");
  }
  // Monotone programs extend the baseline incrementally (only the delta is
  // re-derived); programs with negation fall back to a full re-chase.
  Result<ChaseResult> result =
      ChaseEngine(config).Extend(*chase_, explainer_->program(),
                                 hypothetical);
  if (!result.ok()) {
    if (result.status().code() != StatusCode::kInvalidArgument) {
      return result.status();
    }
    std::vector<Fact> facts = facts_;
    facts.insert(facts.end(), hypothetical.begin(), hypothetical.end());
    result = ChaseEngine(config).Run(explainer_->program(), facts);
    if (!result.ok()) return result.status();
  }
  WhatIfResult scenario;
  scenario.chase = std::move(result).value();
  for (int id = 0; id < scenario.chase.graph.size(); ++id) {
    const ChaseNode& node = scenario.chase.graph.node(id);
    if (node.is_extensional()) continue;
    if (!chase_->graph.Find(node.fact).has_value()) {
      scenario.new_facts.push_back(node.fact);
    }
  }
  return scenario;
}

Result<std::string> KnowledgeGraphApplication::ExplainUnder(
    const WhatIfResult& scenario, const Fact& fact) const {
  return explainer_->Explain(scenario.chase, fact);
}

const std::vector<ConstraintViolation>&
KnowledgeGraphApplication::violations() const {
  static const std::vector<ConstraintViolation> kEmpty;
  return chase_ == nullptr ? kEmpty : chase_->violations;
}

std::string KnowledgeGraphApplication::ExportTemplatesJson() const {
  return TemplatesToJson(explainer_->templates());
}

Result<std::string> KnowledgeGraphApplication::ExportChaseJson() const {
  if (chase_ == nullptr) {
    return Status::FailedPrecondition("Run() the application first");
  }
  return ChaseGraphToJson(chase_->graph);
}

Result<std::string> KnowledgeGraphApplication::ExportProofJson(
    const Fact& fact) const {
  if (chase_ == nullptr) {
    return Status::FailedPrecondition("Run() the application first");
  }
  Result<FactId> id = chase_->Find(fact);
  if (!id.ok()) return id.status();
  Proof proof = Proof::Extract(chase_->graph, id.value());
  return ProofToJson(proof);
}

}  // namespace templex
