#include "apps/glossaries.h"

#include <cassert>

namespace templex {

namespace {

void MustRegister(DomainGlossary* glossary, const std::string& predicate,
                  GlossaryEntry entry) {
  Status status = glossary->Register(predicate, std::move(entry));
  assert(status.ok() && "embedded glossary entry invalid");
  (void)status;
}

constexpr NumberStyle kPlain = NumberStyle::kPlain;
constexpr NumberStyle kMillions = NumberStyle::kMillions;
constexpr NumberStyle kPercent = NumberStyle::kPercent;

}  // namespace

DomainGlossary SimplifiedStressTestGlossary() {
  DomainGlossary glossary;
  MustRegister(&glossary, "HasCapital",
               {"<f> is a financial institution with capital of <p> euros",
                {"f", "p"},
                {kPlain, kMillions}});
  MustRegister(&glossary, "Shock",
               {"a shock amounting to <s> euros affects <f>",
                {"f", "s"},
                {kPlain, kMillions}});
  MustRegister(&glossary, "Default", {"<f> is in default", {"f"}, {kPlain}});
  MustRegister(&glossary, "Debts",
               {"<d> has an amount of <v> euros of debts with <c>",
                {"d", "c", "v"},
                {kPlain, kPlain, kMillions}});
  MustRegister(&glossary, "Risk",
               {"<c> is at risk of defaulting given its loan of <e> euros of "
                "exposures to a defaulted debtor",
                {"c", "e"},
                {kPlain, kMillions}});
  return glossary;
}

DomainGlossary CompanyControlGlossary() {
  DomainGlossary glossary;
  MustRegister(&glossary, "Own",
               {"<x> owns <s> of the shares of <y>",
                {"x", "y", "s"},
                {kPlain, kPlain, kPercent}});
  MustRegister(&glossary, "Control",
               {"<x> exercises control over <y>", {"x", "y"}, {kPlain, kPlain}});
  MustRegister(&glossary, "Company",
               {"<x> is a business corporation", {"x"}, {kPlain}});
  return glossary;
}

DomainGlossary StressTestGlossary() {
  DomainGlossary glossary;
  MustRegister(&glossary, "HasCapital",
               {"<f> is a company with capital of <p> euros",
                {"f", "p"},
                {kPlain, kMillions}});
  MustRegister(&glossary, "Shock",
               {"a shock amounting to <s> euros hits <f>",
                {"f", "s"},
                {kPlain, kMillions}});
  MustRegister(&glossary, "Default", {"<f> is in default", {"f"}, {kPlain}});
  MustRegister(&glossary, "LongTermDebts",
               {"<d> has an amount of <v> euros of long-term debts with <c>",
                {"d", "c", "v"},
                {kPlain, kPlain, kMillions}});
  MustRegister(&glossary, "ShortTermDebts",
               {"<d> has an amount of <v> euros of short-term debts with <c>",
                {"d", "c", "v"},
                {kPlain, kPlain, kMillions}});
  MustRegister(&glossary, "Risk",
               {"<c> is at risk of defaulting given its <t>-term loans of "
                "<e> euros of exposures to a defaulted debtor",
                {"c", "e", "t"},
                {kPlain, kMillions, kPlain}});
  return glossary;
}

DomainGlossary GoldenPowerGlossary() {
  DomainGlossary glossary = CompanyControlGlossary();
  MustRegister(&glossary, "Strategic",
               {"<y> is a company of strategic national interest", {"y"},
                {kPlain}});
  MustRegister(&glossary, "Foreign",
               {"<x> is a foreign entity", {"x"}, {kPlain}});
  MustRegister(&glossary, "GoldenPower",
               {"the golden-power rules apply to <x>'s position in <y>",
                {"x", "y"},
                {kPlain, kPlain}});
  MustRegister(&glossary, "Acquisition",
               {"<x> filed an acquisition of <y> on <d>",
                {"x", "y", "d"},
                {kPlain, kPlain, kPlain}});
  MustRegister(&glossary, "Review",
               {"the acquisition of <y> by <x> filed on <d> is subject to "
                "golden-power review",
                {"x", "y", "d"},
                {kPlain, kPlain, kPlain}});
  return glossary;
}

DomainGlossary CloseLinksGlossary() {
  DomainGlossary glossary;
  MustRegister(&glossary, "Own",
               {"<x> owns <s> of the shares of <y>",
                {"x", "y", "s"},
                {kPlain, kPlain, kPercent}});
  MustRegister(&glossary, "IntOwn",
               {"<x> has an integrated ownership of <s> in <y>",
                {"x", "y", "s"},
                {kPlain, kPlain, kPercent}});
  MustRegister(&glossary, "CloseLink",
               {"<x> is in a close link with <y>", {"x", "y"}, {kPlain, kPlain}});
  return glossary;
}

}  // namespace templex
