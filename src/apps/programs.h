#ifndef TEMPLEX_APPS_PROGRAMS_H_
#define TEMPLEX_APPS_PROGRAMS_H_

#include "datalog/program.h"

namespace templex {

// The rule-based financial Knowledge Graph applications of the paper (§5),
// encoded in the library's Vadalog-subset syntax. Each function returns a
// validated program with its goal predicate set.

// Example 4.3: the simplified single-channel stress test {α, β, γ}.
//   alpha: Shock(f,s), HasCapital(f,p1), s > p1            -> Default(f).
//   beta:  Default(d), Debts(d,c,v), e = sum(v)            -> Risk(c,e).
//   gamma: HasCapital(c,p2), Risk(c,e), p2 < e             -> Default(c).
Program SimplifiedStressTestProgram();

// §5 "Company Control" {σ1, σ2, σ3}: who controls whom under the
// one-share-one-vote rule (jointly-held majorities via monotonic sum).
//   sigma1: Own(x,y,s), s > 0.5                            -> Control(x,y).
//   sigma2: Company(x)                                     -> Control(x,x).
//   sigma3: Control(x,z), Own(z,y,s), ts = sum(s,[z]),
//           ts > 0.5                                       -> Control(x,y).
Program CompanyControlProgram();

// §5 "Stress Tests" {σ4..σ7}: default-shock propagation over the long-term
// and short-term debt exposure channels.
//   sigma4: Shock(f,s), HasCapital(f,p1), s > p1           -> Default(f).
//   sigma5: Default(d), LongTermDebts(d,c,v), el = sum(v)  -> Risk(c,el,"long").
//   sigma6: Default(d), ShortTermDebts(d,c,v), es = sum(v) -> Risk(c,es,"short").
//   sigma7: Risk(c,e,t), HasCapital(c,p2), l = sum(e,[t]),
//           l > p2                                         -> Default(c).
Program StressTestProgram();

// Golden-power review (cf. [9], Bellomarini et al. 2020, cited by the
// paper): flag acquisitions of control over strategic companies by foreign
// entities. Layers two rules on top of the company-control closure, giving
// a dependency graph with a non-leaf critical node (Control feeds both the
// recursion and the review rule).
//   sigma1..sigma3 as in CompanyControlProgram, then
//   gp1: Control(x, y), Strategic(y), Foreign(x) -> GoldenPower(x, y).
//   gp2: GoldenPower(x, y), Acquisition(x, y, d) -> Review(x, y, d).
Program GoldenPowerProgram();

// §6.2 "close link" application (cf. [2], Atzeni et al., EDBT 2020): two
// entities are closely linked when the integrated (direct plus indirect,
// share-product) ownership reaches 20%. Requires an acyclic ownership
// instance (the chase would not terminate on ownership loops, as share
// products keep producing fresh values).
//   kappa1: Own(x,y,s)                                     -> IntOwn(x,y,s).
//   kappa2: IntOwn(x,z,s1), Own(z,y,s2), p = s1 * s2       -> IntOwn(x,y,p).
//   kappa3: IntOwn(x,y,s), ts = sum(s), ts >= 0.2          -> CloseLink(x,y).
Program CloseLinksProgram();

}  // namespace templex

#endif  // TEMPLEX_APPS_PROGRAMS_H_
