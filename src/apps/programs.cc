#include "apps/programs.h"

#include <cassert>

#include "datalog/parser.h"

namespace templex {

namespace {

Program MustParse(const char* source) {
  Result<Program> program = ParseProgram(source);
  assert(program.ok() && "embedded program failed to parse");
  return std::move(program).value();
}

}  // namespace

Program SimplifiedStressTestProgram() {
  return MustParse(R"(
% Example 4.3: simplified stress test (single debt channel).
@goal Default.
alpha: Shock(f, s), HasCapital(f, p1), s > p1 -> Default(f).
beta:  Default(d), Debts(d, c, v), e = sum(v) -> Risk(c, e).
gamma: HasCapital(c, p2), Risk(c, e), p2 < e -> Default(c).
)");
}

Program CompanyControlProgram() {
  return MustParse(R"(
% Company control: one-share-one-vote control closure.
@goal Control.
sigma1: Own(x, y, s), s > 0.5 -> Control(x, y).
sigma2: Company(x) -> Control(x, x).
sigma3: Control(x, z), Own(z, y, s), ts = sum(s, [z]), ts > 0.5 -> Control(x, y).
)");
}

Program StressTestProgram() {
  return MustParse(R"(
% Two-channel stress test: long-term and short-term exposures.
@goal Default.
sigma4: Shock(f, s), HasCapital(f, p1), s > p1 -> Default(f).
sigma5: Default(d), LongTermDebts(d, c, v), el = sum(v) -> Risk(c, el, "long").
sigma6: Default(d), ShortTermDebts(d, c, v), es = sum(v) -> Risk(c, es, "short").
sigma7: Risk(c, e, t), HasCapital(c, p2), l = sum(e, [t]), l > p2 -> Default(c).
)");
}

Program GoldenPowerProgram() {
  return MustParse(R"(
% Golden powers: review foreign acquisitions of strategic companies.
@goal Review.
sigma1: Own(x, y, s), s > 0.5 -> Control(x, y).
sigma2: Company(x) -> Control(x, x).
sigma3: Control(x, z), Own(z, y, s), ts = sum(s, [z]), ts > 0.5 -> Control(x, y).
gp1: Control(x, y), Strategic(y), Foreign(x) -> GoldenPower(x, y).
gp2: GoldenPower(x, y), Acquisition(x, y, d) -> Review(x, y, d).
)");
}

Program CloseLinksProgram() {
  return MustParse(R"(
% Close links: integrated ownership of at least 20%.
@goal CloseLink.
kappa1: Own(x, y, s) -> IntOwn(x, y, s).
kappa2: IntOwn(x, z, s1), Own(z, y, s2), p = s1 * s2 -> IntOwn(x, y, p).
kappa3: IntOwn(x, y, s), ts = sum(s), ts >= 0.2 -> CloseLink(x, y).
)");
}

}  // namespace templex
