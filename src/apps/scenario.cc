#include "apps/scenario.h"

namespace templex {

namespace {

Value S(const char* name) { return Value::String(name); }
Value D(double v) { return Value::Double(v); }
Value I(int64_t v) { return Value::Int(v); }

}  // namespace

RepresentativeScenario MakeRepresentativeScenario() {
  RepresentativeScenario scenario;

  // Company control side. B -> E -> D gives Control(B, D) along Π = {σ1,
  // σ3} (the reasoning path the paper reports for this query). A controls C
  // jointly: 30% directly (through its auto-control, σ2) plus 25% via its
  // 70%-controlled B.
  auto& control = scenario.control_edb;
  for (const char* name : {"A", "B", "C", "D", "E", "F", "G"}) {
    control.push_back(Fact{"Company", {S(name)}});
  }
  control.push_back(Fact{"Own", {S("B"), S("E"), D(0.60)}});
  control.push_back(Fact{"Own", {S("E"), S("D"), D(0.55)}});
  control.push_back(Fact{"Own", {S("A"), S("B"), D(0.70)}});
  control.push_back(Fact{"Own", {S("A"), S("C"), D(0.30)}});
  control.push_back(Fact{"Own", {S("B"), S("C"), D(0.25)}});
  control.push_back(Fact{"Own", {S("G"), S("F"), D(0.80)}});
  control.push_back(Fact{"Own", {S("D"), S("G"), D(0.15)}});
  scenario.control_query = Fact{"Control", {S("B"), S("D")}};

  // Stress test side (the Default(F) cascade of §5).
  auto& stress = scenario.stress_edb;
  stress.push_back(Fact{"HasCapital", {S("A"), I(5)}});
  stress.push_back(Fact{"HasCapital", {S("B"), I(4)}});
  stress.push_back(Fact{"HasCapital", {S("C"), I(8)}});
  stress.push_back(Fact{"HasCapital", {S("D"), I(12)}});
  stress.push_back(Fact{"HasCapital", {S("E"), I(11)}});
  stress.push_back(Fact{"HasCapital", {S("F"), I(9)}});
  stress.push_back(Fact{"HasCapital", {S("G"), I(14)}});
  stress.push_back(Fact{"Shock", {S("A"), I(14)}});
  stress.push_back(Fact{"LongTermDebts", {S("A"), S("B"), I(7)}});
  stress.push_back(Fact{"ShortTermDebts", {S("B"), S("C"), I(9)}});
  stress.push_back(Fact{"LongTermDebts", {S("C"), S("F"), I(2)}});
  stress.push_back(Fact{"ShortTermDebts", {S("B"), S("F"), I(9)}});
  // Exposures that do not trigger further defaults (D, E, G hold).
  stress.push_back(Fact{"LongTermDebts", {S("A"), S("D"), I(3)}});
  stress.push_back(Fact{"ShortTermDebts", {S("C"), S("E"), I(5)}});
  stress.push_back(Fact{"LongTermDebts", {S("B"), S("G"), I(6)}});
  scenario.stress_query = Fact{"Default", {S("F")}};

  return scenario;
}

}  // namespace templex
