#ifndef TEMPLEX_APPS_GENERATORS_H_
#define TEMPLEX_APPS_GENERATORS_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/fact.h"

namespace templex {

// Synthetic financial data generators (the paper evaluates on artificial
// data, §6: "individual shares and loan information are confidential").
// All generators are deterministic given the Rng.

// An EDB together with the goal fact whose proof the experiment studies.
struct SampledInstance {
  std::vector<Fact> edb;
  Fact goal;
  // The number of chase steps the goal's proof is constructed to have.
  int expected_chase_steps = 0;
};

// ---- Company control -------------------------------------------------------

// A control chain C0 -> C1 -> ... -> Cn: each company owns a majority of
// the next. The proof of Control(C0, Cn) has exactly `chase_steps` steps
// (σ1 then σ3 per additional hop). Requires chase_steps >= 1.
SampledInstance SampleControlChain(int chase_steps, Rng* rng);

// A joint-control star: X majority-owns `contributors` intermediaries which
// jointly (via summed minority shares) own the target. The proof of
// Control(X, Target) has contributors + 1 steps and exercises the
// multi-contributor aggregation variant of σ3.
SampledInstance SampleControlStar(int contributors, Rng* rng);

// A random ownership network: `companies` nodes, a few majority chains and
// joint-control stars embedded, plus noise minority edges. Used to sample
// pools of heterogeneous control proofs.
struct OwnershipNetworkOptions {
  int companies = 40;
  int chains = 3;
  int chain_length = 4;
  int stars = 2;
  int star_contributors = 3;
  int noise_edges = 30;
  bool company_facts = false;  // emit Company(x) for the σ2 auto-controls
};
std::vector<Fact> GenerateOwnershipNetwork(const OwnershipNetworkOptions& o,
                                           Rng* rng);

// ---- Stress tests -----------------------------------------------------------

// A default cascade I0 -> I1 -> ... : I0 is shocked into default; each hop
// propagates over one or both debt channels with enough exposure to exceed
// the next institution's capital. The per-hop channel pattern is chosen so
// the proof of Default(I_last) has exactly `chase_steps` steps when
// attainable (1, or any value >= 3; 2 is rounded up to 3).
// `debts_per_channel` > 1 splits each exposure into several debt facts,
// exercising the multi-contributor aggregation of σ5/σ6.
SampledInstance SampleStressCascade(int chase_steps, int debts_per_channel,
                                    Rng* rng);

// A random debt network with a shocked seed institution; used to sample
// pools of heterogeneous stress-test proofs.
struct DebtNetworkOptions {
  int institutions = 30;
  int cascade_length = 4;
  int extra_debts = 20;
  int debts_per_channel = 2;
};
std::vector<Fact> GenerateDebtNetwork(const DebtNetworkOptions& o, Rng* rng);

// ---- Close links ------------------------------------------------------------

// A layered (acyclic) ownership DAG suitable for the close-link
// application: `layers` layers of `width` companies, edges only forward.
struct OwnershipDagOptions {
  int layers = 4;
  int width = 3;
  double edge_prob = 0.6;
};
std::vector<Fact> GenerateOwnershipDag(const OwnershipDagOptions& o, Rng* rng);

// ---- Naming -----------------------------------------------------------------

// Deterministic bank-like names: "Banca0", "Credit1", ... cycling through a
// small stem list so generated explanations read like the paper's examples.
std::string CompanyName(int index);

}  // namespace templex

#endif  // TEMPLEX_APPS_GENERATORS_H_
