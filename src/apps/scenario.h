#ifndef TEMPLEX_APPS_SCENARIO_H_
#define TEMPLEX_APPS_SCENARIO_H_

#include <vector>

#include "engine/fact.h"

namespace templex {

// The representative synthetic scenario of §5 (Figures 12 and 13): a small
// cluster of financial institutions A..G over which the analyst (i) runs
// the company-control application and asks Q_e = {Control(B, D)}, and
// (ii) simulates a 14M-euro shock on A and asks Q_e = {Default(F)}.
//
// The stress-test side follows the narrative of the paper's Default(F)
// explanation: A (capital 5M) is shocked with 14M; B holds 7M long-term
// debts from A and has capital 4M; B's 9M short-term debt puts C (capital
// 8M) in default; C and B leave F exposed for 2M long-term and 9M
// short-term against 9M of capital.
struct RepresentativeScenario {
  // Own(x, y, s) and Company(x) facts for the company-control run.
  std::vector<Fact> control_edb;
  // HasCapital / Shock / LongTermDebts / ShortTermDebts facts for the
  // stress-test run.
  std::vector<Fact> stress_edb;

  // The two explanation queries of §5.
  Fact control_query;  // Control("B", "D")
  Fact stress_query;   // Default("F")
};

RepresentativeScenario MakeRepresentativeScenario();

}  // namespace templex

#endif  // TEMPLEX_APPS_SCENARIO_H_
