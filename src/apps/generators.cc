#include "apps/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <set>
#include <utility>

namespace templex {

namespace {

Value Name(const std::string& name) { return Value::String(name); }

// Rounds a share to 4 decimals so percent renderings stay readable.
double RoundShare(double share) {
  return std::round(share * 10000.0) / 10000.0;
}

void AddOwn(std::vector<Fact>* facts, const std::string& from,
            const std::string& to, double share) {
  facts->push_back(Fact{"Own", {Name(from), Name(to), Value::Double(share)}});
}

}  // namespace

std::string CompanyName(int index) {
  static const char* kStems[] = {"Banca",   "Credit", "Fondo",  "Assicura",
                                 "Holding", "Invest", "Cassa",  "Banco"};
  return std::string(kStems[index % 8]) + std::to_string(index);
}

SampledInstance SampleControlChain(int chase_steps, Rng* rng) {
  assert(chase_steps >= 1);
  SampledInstance instance;
  const int base = static_cast<int>(rng->NextInt(0, 1000)) * 64;
  std::vector<std::string> names;
  for (int i = 0; i <= chase_steps; ++i) names.push_back(CompanyName(base + i));
  for (int i = 0; i < chase_steps; ++i) {
    AddOwn(&instance.edb, names[i], names[i + 1],
           RoundShare(rng->NextDouble(0.51, 0.95)));
  }
  instance.goal = Fact{"Control", {Name(names.front()), Name(names.back())}};
  instance.expected_chase_steps = chase_steps;
  return instance;
}

SampledInstance SampleControlStar(int contributors, Rng* rng) {
  assert(contributors >= 1);
  SampledInstance instance;
  const int base = static_cast<int>(rng->NextInt(0, 1000)) * 64 + 32000;
  const std::string holder = CompanyName(base);
  const std::string target = CompanyName(base + 1);
  for (int i = 0; i < contributors; ++i) {
    const std::string mid = CompanyName(base + 2 + i);
    AddOwn(&instance.edb, holder, mid,
           RoundShare(rng->NextDouble(0.55, 0.95)));
    // Each minority share is small enough that no proper subset reaches the
    // 50% threshold: the aggregation emits the control edge only once all
    // contributors are in, keeping the proof length exact.
    AddOwn(&instance.edb, mid, target,
           RoundShare(rng->NextDouble(0.51 / contributors,
                                      0.54 / contributors)));
  }
  instance.goal = Fact{"Control", {Name(holder), Name(target)}};
  instance.expected_chase_steps = contributors + 1;
  return instance;
}

std::vector<Fact> GenerateOwnershipNetwork(const OwnershipNetworkOptions& o,
                                           Rng* rng) {
  std::vector<Fact> facts;
  std::set<std::pair<int, int>> edges;
  auto add_edge = [&facts, &edges, rng](int from, int to, double lo,
                                        double hi) {
    if (from == to) return;
    if (!edges.emplace(from, to).second) return;
    AddOwn(&facts, CompanyName(from), CompanyName(to),
           RoundShare(rng->NextDouble(lo, hi)));
  };
  for (int c = 0; c < o.chains; ++c) {
    int current = static_cast<int>(rng->NextInt(0, o.companies - 1));
    for (int i = 0; i < o.chain_length; ++i) {
      int next = static_cast<int>(rng->NextInt(0, o.companies - 1));
      add_edge(current, next, 0.51, 0.95);
      current = next;
    }
  }
  for (int s = 0; s < o.stars; ++s) {
    int holder = static_cast<int>(rng->NextInt(0, o.companies - 1));
    int target = static_cast<int>(rng->NextInt(0, o.companies - 1));
    for (int i = 0; i < o.star_contributors; ++i) {
      int mid = static_cast<int>(rng->NextInt(0, o.companies - 1));
      add_edge(holder, mid, 0.55, 0.95);
      add_edge(mid, target, 0.51 / o.star_contributors,
               0.54 / o.star_contributors);
    }
  }
  for (int e = 0; e < o.noise_edges; ++e) {
    add_edge(static_cast<int>(rng->NextInt(0, o.companies - 1)),
             static_cast<int>(rng->NextInt(0, o.companies - 1)), 0.05, 0.45);
  }
  if (o.company_facts) {
    for (int i = 0; i < o.companies; ++i) {
      facts.push_back(Fact{"Company", {Name(CompanyName(i))}});
    }
  }
  return facts;
}

SampledInstance SampleStressCascade(int chase_steps, int debts_per_channel,
                                    Rng* rng) {
  assert(chase_steps >= 1);
  assert(debts_per_channel >= 1);
  SampledInstance instance;
  // Decompose chase_steps - 1 into per-hop costs: 2 for a single-channel
  // hop (σ5/σ6 + σ7), 3 for a dual-channel hop (σ5 + σ6 + σ7). Every total
  // except 1 is representable; 2 rounds up to 3 (a dual hop).
  int remaining = chase_steps - 1;
  if (remaining == 1) remaining = 2;
  std::vector<int> hop_costs;
  while (remaining > 0) {
    if (remaining == 2) {
      hop_costs.push_back(2);
      remaining = 0;
    } else if (remaining == 4) {
      hop_costs.push_back(2);
      hop_costs.push_back(2);
      remaining = 0;
    } else {
      hop_costs.push_back(3);
      remaining -= 3;
    }
  }
  const int base = static_cast<int>(rng->NextInt(0, 1000)) * 64 + 16000;
  const int institutions = static_cast<int>(hop_costs.size()) + 1;
  // Capitals are padded so each channel total can be split into
  // debts_per_channel distinct positive parts (distinct so the facts do not
  // deduplicate away).
  const int64_t d = debts_per_channel;
  const int64_t min_total = d * (d + 1) / 2;
  std::vector<std::string> names;
  std::vector<int64_t> capitals;
  for (int i = 0; i < institutions; ++i) {
    names.push_back(CompanyName(base + i));
    capitals.push_back(rng->NextInt(2, 10) + 2 * min_total);
    instance.edb.push_back(
        Fact{"HasCapital", {Name(names[i]), Value::Int(capitals[i])}});
  }
  instance.edb.push_back(Fact{
      "Shock",
      {Name(names[0]), Value::Int(capitals[0] + rng->NextInt(1, 5))}});
  // Splits `total` into debts_per_channel distinct positive parts summing
  // exactly to `total` (requires total >= min_total).
  auto add_debts = [&instance, d, min_total](const char* predicate,
                                             const std::string& debtor,
                                             const std::string& creditor,
                                             int64_t total) {
    std::vector<int64_t> parts;
    for (int64_t i = 1; i <= d; ++i) parts.push_back(i);
    parts.back() += total - min_total;
    for (int64_t part : parts) {
      instance.edb.push_back(Fact{
          predicate, {Name(debtor), Name(creditor), Value::Int(part)}});
    }
  };
  for (size_t hop = 0; hop < hop_costs.size(); ++hop) {
    const std::string& debtor = names[hop];
    const std::string& creditor = names[hop + 1];
    const int64_t capital = capitals[hop + 1];
    if (hop_costs[hop] == 3) {
      // Dual channel: each channel alone stays at or below the capital so
      // the default genuinely needs both (proof contains σ5, σ6 and σ7);
      // jointly they exceed it by one.
      const int64_t long_total = capital / 2 + 1;
      const int64_t short_total = capital - capital / 2 + 1;
      add_debts("LongTermDebts", debtor, creditor, long_total);
      add_debts("ShortTermDebts", debtor, creditor, short_total);
    } else if (rng->NextBool(0.5)) {
      add_debts("LongTermDebts", debtor, creditor,
                capital + rng->NextInt(1, 4));
    } else {
      add_debts("ShortTermDebts", debtor, creditor,
                capital + rng->NextInt(1, 4));
    }
  }
  instance.goal = Fact{"Default", {Name(names.back())}};
  instance.expected_chase_steps =
      1 + std::accumulate(hop_costs.begin(), hop_costs.end(), 0);
  return instance;
}

std::vector<Fact> GenerateDebtNetwork(const DebtNetworkOptions& o, Rng* rng) {
  std::vector<Fact> facts;
  std::vector<int64_t> capitals;
  for (int i = 0; i < o.institutions; ++i) {
    capitals.push_back(rng->NextInt(3, 12));
    facts.push_back(
        Fact{"HasCapital", {Name(CompanyName(i)), Value::Int(capitals[i])}});
  }
  facts.push_back(Fact{
      "Shock", {Name(CompanyName(0)), Value::Int(capitals[0] + 3)}});
  // A guaranteed cascade along 0 -> 1 -> ... -> cascade_length.
  for (int i = 0; i + 1 <= o.cascade_length && i + 1 < o.institutions; ++i) {
    const int64_t needed = capitals[i + 1] + 2;
    facts.push_back(Fact{"LongTermDebts",
                         {Name(CompanyName(i)), Name(CompanyName(i + 1)),
                          Value::Int(needed / 2 + 1)}});
    facts.push_back(Fact{"ShortTermDebts",
                         {Name(CompanyName(i)), Name(CompanyName(i + 1)),
                          Value::Int(needed / 2 + 1)}});
  }
  // Noise debts, small enough not to sink anyone on their own.
  for (int e = 0; e < o.extra_debts; ++e) {
    int from = static_cast<int>(rng->NextInt(0, o.institutions - 1));
    int to = static_cast<int>(rng->NextInt(0, o.institutions - 1));
    if (from == to) continue;
    const char* predicate =
        rng->NextBool(0.5) ? "LongTermDebts" : "ShortTermDebts";
    facts.push_back(Fact{predicate,
                         {Name(CompanyName(from)), Name(CompanyName(to)),
                          Value::Int(rng->NextInt(1, 2))}});
  }
  return facts;
}

std::vector<Fact> GenerateOwnershipDag(const OwnershipDagOptions& o,
                                       Rng* rng) {
  std::vector<Fact> facts;
  auto node = [&o](int layer, int i) {
    return CompanyName(layer * o.width + i);
  };
  for (int layer = 0; layer + 1 < o.layers; ++layer) {
    for (int i = 0; i < o.width; ++i) {
      for (int j = 0; j < o.width; ++j) {
        if (!rng->NextBool(o.edge_prob)) continue;
        AddOwn(&facts, node(layer, i), node(layer + 1, j),
               RoundShare(rng->NextDouble(0.1, 0.6)));
      }
    }
  }
  return facts;
}

}  // namespace templex
