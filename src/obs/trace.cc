#include "obs/trace.h"

#include <atomic>

namespace templex {
namespace obs {

namespace {

// TLS cache mapping tracer id -> that tracer's buffer for this thread.
// Tracer ids are process-unique and never reused, so an entry for a
// destroyed tracer can never be matched again (it only wastes one slot per
// tracer per thread — tracers are per-run objects, so the list stays
// short). Buffer memory is owned by the tracer; stale pointers here are
// never dereferenced because the id lookup fails first.
thread_local std::vector<std::pair<uint64_t, void*>> tls_buffers;

uint64_t NextTracerId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Tracer::Tracer()
    : id_(NextTracerId()), epoch_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() = default;

Tracer::ThreadBuffer* Tracer::LocalBuffer() {
  for (const auto& [id, buffer] : tls_buffers) {
    if (id == id_) return static_cast<ThreadBuffer*>(buffer);
  }
  ThreadBuffer* buffer = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    buffer = buffers_.back().get();
    buffer->tid = static_cast<int>(buffers_.size()) - 1;
  }
  tls_buffers.emplace_back(id_, buffer);
  return buffer;
}

int Tracer::OpenSpan() { return LocalBuffer()->depth++; }

void Tracer::CloseSpan(TraceEvent event) {
  ThreadBuffer* buffer = LocalBuffer();
  --buffer->depth;
  event.tid = buffer->tid;
  buffer->events.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> merged;
  size_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->events.size();
  merged.reserve(total);
  for (const auto& buffer : buffers_) {
    merged.insert(merged.end(), buffer->events.begin(),
                  buffer->events.end());
  }
  return merged;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buffer : buffers_) buffer->events.clear();
}

}  // namespace obs
}  // namespace templex
