#include "obs/rule_profile.h"

#include <algorithm>
#include <cstdio>
#include <tuple>

namespace templex {
namespace obs {

void SortRuleProfilesByCost(std::vector<RuleProfile>* profiles) {
  std::sort(profiles->begin(), profiles->end(),
            [](const RuleProfile& a, const RuleProfile& b) {
              if (a.matches != b.matches) return a.matches > b.matches;
              return std::tie(a.rule, a.stratum) < std::tie(b.rule, b.stratum);
            });
}

namespace {

std::string FormatSeconds(double seconds) {
  char buffer[32];
  if (seconds < 1e-3) {
    std::snprintf(buffer, sizeof(buffer), "%.1fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buffer, sizeof(buffer), "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.3fs", seconds);
  }
  return buffer;
}

}  // namespace

std::string RuleProfileTable(std::vector<RuleProfile> profiles, size_t top_k,
                             bool include_seconds) {
  SortRuleProfilesByCost(&profiles);
  if (top_k > 0 && profiles.size() > top_k) profiles.resize(top_k);

  std::string table;
  char line[256];
  if (include_seconds) {
    table +=
        "-- rule profile (by matches) -------------------------------------"
        "----------------\n";
    std::snprintf(line, sizeof(line), "%-24s %3s %12s %12s %12s %12s %10s %10s\n",
                  "rule", "str", "matches", "firings", "duplicates",
                  "delta_facts", "match", "derive");
    table += line;
  } else {
    table +=
        "-- rule profile (by matches) -------------------------------------\n";
    std::snprintf(line, sizeof(line), "%-24s %3s %12s %12s %12s %12s\n", "rule",
                  "str", "matches", "firings", "duplicates", "delta_facts");
    table += line;
  }
  for (const RuleProfile& p : profiles) {
    if (include_seconds) {
      std::snprintf(line, sizeof(line),
                    "%-24s %3d %12lld %12lld %12lld %12lld %10s %10s\n",
                    p.rule.c_str(), p.stratum,
                    static_cast<long long>(p.matches),
                    static_cast<long long>(p.firings),
                    static_cast<long long>(p.duplicates),
                    static_cast<long long>(p.delta_facts),
                    FormatSeconds(p.match_seconds).c_str(),
                    FormatSeconds(p.derive_seconds).c_str());
    } else {
      std::snprintf(line, sizeof(line), "%-24s %3d %12lld %12lld %12lld %12lld\n",
                    p.rule.c_str(), p.stratum,
                    static_cast<long long>(p.matches),
                    static_cast<long long>(p.firings),
                    static_cast<long long>(p.duplicates),
                    static_cast<long long>(p.delta_facts));
    }
    table += line;
  }
  return table;
}

}  // namespace obs
}  // namespace templex
