#ifndef TEMPLEX_OBS_TRACE_H_
#define TEMPLEX_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/timer.h"

namespace templex {
namespace obs {

// One completed span, ready for Chrome trace-event export ("X" complete
// events: chrome://tracing or https://ui.perfetto.dev both load the JSON
// array TraceEventsToJson produces). Timestamps are microseconds relative
// to the owning Tracer's epoch.
struct TraceEvent {
  std::string name;
  double ts_micros = 0.0;
  double dur_micros = 0.0;
  // Nesting depth on the recording thread when the span opened (0 = top
  // level). Chrome infers nesting from ts/dur containment; the depth is
  // kept for assertions and non-visual consumers.
  int depth = 0;
  // Recording thread: 0 is the first thread that opened a span on this
  // tracer (the run's main thread), workers follow in first-span order.
  // Exported as the Chrome trace "tid", so parallel rounds render as
  // parallel tracks.
  int tid = 0;
  std::vector<std::pair<std::string, std::string>> attributes;
};

// Collects spans for one run. Like MetricsRegistry, a Tracer* threaded
// through instrumented code may be null: Span construction against a null
// tracer is a no-op (one branch, no clock read).
//
// Thread-safe via per-thread buffers: each thread's spans append to a
// buffer registered for that thread on first use (one mutex acquisition
// per thread per tracer, then lock-free appends), and events() merges the
// buffers at export. Span open/close must happen on the same thread;
// nesting depth is tracked per thread.
class Tracer {
 public:
  Tracer();
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Microseconds since the tracer was created.
  double NowMicros() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  // Merged copy of every thread's buffer: buffers in thread-registration
  // order (tid order), each buffer's events in span-close order — so for a
  // single-threaded run children precede their parents, exactly the
  // pre-parallel behaviour. Chrome orders by ts either way. Must not race
  // with open spans closing; call it after joining / quiescing workers.
  std::vector<TraceEvent> events() const;
  void Clear();

  // Span bookkeeping (public for Span; not meant for direct use). Both
  // touch only the calling thread's buffer.
  int OpenSpan();
  void CloseSpan(TraceEvent event);

 private:
  struct ThreadBuffer {
    int tid = 0;
    int depth = 0;
    std::vector<TraceEvent> events;
  };

  // The calling thread's buffer, registered on first use.
  ThreadBuffer* LocalBuffer();

  const uint64_t id_;  // process-unique, never reused — keys the TLS cache
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;  // guards buffers_ registration and export
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

// RAII timed span: opens at construction, records a TraceEvent into the
// tracer when destroyed (or End()-ed explicitly). The duration comes from a
// ScopedTimer accumulating into the span's own cell, reusing the same
// primitive the per-phase metrics use. Construct and destroy on the same
// thread (worker spans live inside their task).
//
//   obs::Span round(tracer, "chase.round");   // tracer may be null
//   round.AddAttribute("round", round_number);
class Span {
 public:
  Span(Tracer* tracer, std::string name)
      : tracer_(tracer), timer_(&elapsed_seconds_) {
    if (tracer_ == nullptr) return;
    event_.name = std::move(name);
    event_.ts_micros = tracer_->NowMicros();
    event_.depth = tracer_->OpenSpan();
  }

  ~Span() { End(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  Span& AddAttribute(const std::string& key, std::string value) {
    if (tracer_ != nullptr && !ended_) {
      event_.attributes.emplace_back(key, std::move(value));
    }
    return *this;
  }
  Span& AddAttribute(const std::string& key, int64_t value) {
    return AddAttribute(key, std::to_string(value));
  }

  // Closes the span early; idempotent.
  void End() {
    if (tracer_ == nullptr || ended_) return;
    ended_ = true;
    timer_.Stop();
    event_.dur_micros = elapsed_seconds_ * 1e6;
    tracer_->CloseSpan(std::move(event_));
  }

 private:
  Tracer* tracer_;
  TraceEvent event_;
  double elapsed_seconds_ = 0.0;
  ScopedTimer timer_;
  bool ended_ = false;
};

}  // namespace obs
}  // namespace templex

#endif  // TEMPLEX_OBS_TRACE_H_
