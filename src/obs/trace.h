#ifndef TEMPLEX_OBS_TRACE_H_
#define TEMPLEX_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/timer.h"

namespace templex {
namespace obs {

// One completed span, ready for Chrome trace-event export ("X" complete
// events: chrome://tracing or https://ui.perfetto.dev both load the JSON
// array TraceEventsToJson produces). Timestamps are microseconds relative
// to the owning Tracer's epoch.
struct TraceEvent {
  std::string name;
  double ts_micros = 0.0;
  double dur_micros = 0.0;
  // Nesting depth when the span opened (0 = top level). Chrome infers
  // nesting from ts/dur containment; the depth is kept for assertions and
  // non-visual consumers.
  int depth = 0;
  std::vector<std::pair<std::string, std::string>> attributes;
};

// Collects spans for one run. Like MetricsRegistry, a Tracer* threaded
// through instrumented code may be null: Span construction against a null
// tracer is a no-op (one branch, no clock read).
//
// Single-threaded by design for now (per-thread buffers are the ROADMAP
// follow-up for the parallel chase); events are appended when spans close,
// so children precede their parents in events() — Chrome orders by ts.
class Tracer {
 public:
  Tracer() : epoch_(std::chrono::steady_clock::now()) {}

  // Microseconds since the tracer was created.
  double NowMicros() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  void Clear() { events_.clear(); }

  // Span bookkeeping (public for Span; not meant for direct use).
  int OpenSpan() { return depth_++; }
  void CloseSpan(TraceEvent event) {
    --depth_;
    events_.push_back(std::move(event));
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
  int depth_ = 0;
  std::vector<TraceEvent> events_;
};

// RAII timed span: opens at construction, records a TraceEvent into the
// tracer when destroyed (or End()-ed explicitly). The duration comes from a
// ScopedTimer accumulating into the span's own cell, reusing the same
// primitive the per-phase metrics use.
//
//   obs::Span round(tracer, "chase.round");   // tracer may be null
//   round.AddAttribute("round", round_number);
class Span {
 public:
  Span(Tracer* tracer, std::string name)
      : tracer_(tracer), timer_(&elapsed_seconds_) {
    if (tracer_ == nullptr) return;
    event_.name = std::move(name);
    event_.ts_micros = tracer_->NowMicros();
    event_.depth = tracer_->OpenSpan();
  }

  ~Span() { End(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  Span& AddAttribute(const std::string& key, std::string value) {
    if (tracer_ != nullptr && !ended_) {
      event_.attributes.emplace_back(key, std::move(value));
    }
    return *this;
  }
  Span& AddAttribute(const std::string& key, int64_t value) {
    return AddAttribute(key, std::to_string(value));
  }

  // Closes the span early; idempotent.
  void End() {
    if (tracer_ == nullptr || ended_) return;
    ended_ = true;
    timer_.Stop();
    event_.dur_micros = elapsed_seconds_ * 1e6;
    tracer_->CloseSpan(std::move(event_));
  }

 private:
  Tracer* tracer_;
  TraceEvent event_;
  double elapsed_seconds_ = 0.0;
  ScopedTimer timer_;
  bool ended_ = false;
};

}  // namespace obs
}  // namespace templex

#endif  // TEMPLEX_OBS_TRACE_H_
