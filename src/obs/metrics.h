#ifndef TEMPLEX_OBS_METRICS_H_
#define TEMPLEX_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace templex {
namespace obs {

// Named instruments for the reasoning and explanation layers, modelled on
// the per-phase counters mature chase engines carry (VLog's durationJoin /
// durationCreateHead breakdown and trigger counters). Instruments are
// created on demand, addressed by dotted names ("chase.rule.sigma1.firings",
// "explain.phase.map.seconds" — see docs/OBSERVABILITY.md for the scheme),
// and snapshot into plain structs for JSON export or profile tables.
//
// Instrumented code receives a MetricsRegistry* that may be null; every
// instrumentation site branches on it, so a run without a registry pays
// one pointer test per site and nothing else.
//
// Thread-safe: the parallel chase bumps instruments from worker threads.
// Counters and gauges are single atomic cells; histograms stripe their
// buckets across several atomic cells so concurrent observers do not
// serialize on one cache line; the registry's get-or-create maps take a
// mutex (hot loops resolve instruments once and bump raw pointers, so the
// lock is off every hot path). Snapshots are not linearizable across
// instruments — taking one concurrently with writers yields some valid
// interleaving, and quiescent snapshots are exact.

// Monotonically increasing integer (events: firings, matches, duplicates).
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Last-write-wins floating-point level (sizes, ratios).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram with percentile summaries. Buckets are defined by
// ascending upper bounds; observations above the last bound land in an
// implicit overflow bucket. Percentiles interpolate linearly inside the
// containing bucket (Prometheus-style) and are clamped to the exact
// observed [min, max], so small-count histograms stay honest.
//
// Observe() is wait-free outside of min/max CAS retries: state lives in
// kStripes independent stripes of atomic cells and each thread writes the
// stripe it hashed to, so concurrent observers touch disjoint cache lines.
// Readers aggregate across stripes.
class Histogram {
 public:
  // Default bounds: a 1-2-5 ladder from 1 microsecond to 10 seconds,
  // in seconds — sized for the latencies the chase and explain phases emit.
  static std::vector<double> DefaultLatencyBounds();

  explicit Histogram(std::vector<double> bounds = DefaultLatencyBounds());

  void Observe(double value);

  int64_t count() const;
  double sum() const;
  double min() const;
  double max() const;

  // p in (0, 100]; returns 0 when empty.
  double Percentile(double p) const;

  const std::vector<double>& bounds() const { return bounds_; }
  // Aggregated across stripes; bounds_.size() + 1 entries (overflow last).
  std::vector<int64_t> bucket_counts() const;

 private:
  static constexpr int kStripes = 8;

  struct Stripe {
    std::vector<std::atomic<int64_t>> buckets;
    std::atomic<int64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{0.0};
    std::atomic<double> max{0.0};

    explicit Stripe(size_t num_buckets) : buckets(num_buckets) {}
  };

  Stripe& LocalStripe();

  std::vector<double> bounds_;  // ascending upper bounds
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

// Point-in-time copies, ordered by name (std::map iteration), so two
// identical runs snapshot byte-identical JSON.
struct CounterSnapshot {
  std::string name;
  int64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  // The full bucket layout (ascending upper bounds; buckets has one extra
  // trailing overflow cell), so recorded metrics feed downstream analyses
  // — e.g. stats/descriptive.h SummarizeHistogram() reconstructs the
  // five-number boxplot summaries behind the Figure-18-style plots without
  // bespoke timers.
  std::vector<double> bounds;
  std::vector<int64_t> buckets;
};

struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  // Lookup by exact name; nullptr when absent.
  const CounterSnapshot* FindCounter(const std::string& name) const;
  const GaugeSnapshot* FindGauge(const std::string& name) const;
  const HistogramSnapshot* FindHistogram(const std::string& name) const;
};

// Get-or-create registry. Returned pointers are stable for the registry's
// lifetime, so hot loops resolve instruments once and bump raw pointers.
// Get-or-create and Snapshot are serialized by an internal mutex; the
// instruments themselves are lock-free.
class MetricsRegistry {
 public:
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  // `bounds` only applies on first creation of `name`.
  Histogram* histogram(const std::string& name);
  Histogram* histogram(const std::string& name, std::vector<double> bounds);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Fixed-width human-readable summary of a snapshot (the templex_cli
// --profile output): counters first, then gauges, then histograms with
// count / p50 / p95 / p99 / total columns.
std::string ProfileTable(const MetricsSnapshot& snapshot);

// Prometheus text exposition (version 0.0.4) of a snapshot — what a future
// /metrics endpoint serves, and what `templex_cli --metrics-prom` writes.
// Dotted metric names are sanitized to the Prometheus charset (every char
// outside [a-zA-Z0-9_:] becomes '_') and prefixed "templex_": the counter
// "chase.rule.sigma1.firings" exports as
//
//   # TYPE templex_chase_rule_sigma1_firings counter
//   templex_chase_rule_sigma1_firings 42
//
// Gauges export as `gauge`. Histograms export the standard cumulative
// series: one `_bucket{le="<bound>"}` line per bound plus `le="+Inf"`,
// then `_sum` and `_count`. Output is name-ordered (the snapshot already
// is), so identical runs export byte-identical text.
std::string MetricsSnapshotToPrometheusText(const MetricsSnapshot& snapshot);

}  // namespace obs
}  // namespace templex

#endif  // TEMPLEX_OBS_METRICS_H_
