#ifndef TEMPLEX_OBS_METRICS_H_
#define TEMPLEX_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace templex {
namespace obs {

// Named instruments for the reasoning and explanation layers, modelled on
// the per-phase counters mature chase engines carry (VLog's durationJoin /
// durationCreateHead breakdown and trigger counters). Instruments are
// created on demand, addressed by dotted names ("chase.rule.sigma1.firings",
// "explain.phase.map.seconds" — see docs/OBSERVABILITY.md for the scheme),
// and snapshot into plain structs for JSON export or profile tables.
//
// Instrumented code receives a MetricsRegistry* that may be null; every
// instrumentation site branches on it, so a run without a registry pays
// one pointer test per site and nothing else.
//
// Not yet thread-safe: the engine is single-threaded today; switching the
// cells to atomics (and the tracer to per-thread buffers) is a ROADMAP
// open item for the parallel chase.

// Monotonically increasing integer (events: firings, matches, duplicates).
class Counter {
 public:
  void Increment(int64_t delta = 1) { value_ += delta; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

// Last-write-wins floating-point level (sizes, ratios).
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Fixed-bucket histogram with percentile summaries. Buckets are defined by
// ascending upper bounds; observations above the last bound land in an
// implicit overflow bucket. Percentiles interpolate linearly inside the
// containing bucket (Prometheus-style) and are clamped to the exact
// observed [min, max], so small-count histograms stay honest.
class Histogram {
 public:
  // Default bounds: a 1-2-5 ladder from 1 microsecond to 10 seconds,
  // in seconds — sized for the latencies the chase and explain phases emit.
  static std::vector<double> DefaultLatencyBounds();

  explicit Histogram(std::vector<double> bounds = DefaultLatencyBounds());

  void Observe(double value);

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  // p in (0, 100]; returns 0 when empty.
  double Percentile(double p) const;

  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<int64_t>& bucket_counts() const { return buckets_; }

 private:
  std::vector<double> bounds_;   // ascending upper bounds
  std::vector<int64_t> buckets_; // bounds_.size() + 1 (overflow last)
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Point-in-time copies, ordered by name (std::map iteration), so two
// identical runs snapshot byte-identical JSON.
struct CounterSnapshot {
  std::string name;
  int64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  // Lookup by exact name; nullptr when absent.
  const CounterSnapshot* FindCounter(const std::string& name) const;
  const GaugeSnapshot* FindGauge(const std::string& name) const;
  const HistogramSnapshot* FindHistogram(const std::string& name) const;
};

// Get-or-create registry. Returned pointers are stable for the registry's
// lifetime, so hot loops resolve instruments once and bump raw pointers.
class MetricsRegistry {
 public:
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  // `bounds` only applies on first creation of `name`.
  Histogram* histogram(const std::string& name);
  Histogram* histogram(const std::string& name, std::vector<double> bounds);

  MetricsSnapshot Snapshot() const;

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Fixed-width human-readable summary of a snapshot (the templex_cli
// --profile output): counters first, then gauges, then histograms with
// count / p50 / p95 / p99 / total columns.
std::string ProfileTable(const MetricsSnapshot& snapshot);

}  // namespace obs
}  // namespace templex

#endif  // TEMPLEX_OBS_METRICS_H_
