#include "obs/event_log.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <unordered_map>

#include "common/fs.h"

namespace templex {
namespace obs {

namespace {

// obs sits below io/ in the layering, so the event log carries its own
// minimal JSON string escaper instead of reusing io/json.h.
void AppendJsonString(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

uint64_t NextLogId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

const char* EventLevelName(EventLevel level) {
  switch (level) {
    case EventLevel::kDebug:
      return "debug";
    case EventLevel::kInfo:
      return "info";
    case EventLevel::kWarn:
      return "warn";
    case EventLevel::kError:
      return "error";
  }
  return "unknown";
}

std::string EventToJsonLine(const Event& event) {
  std::string out;
  out.reserve(96 + 24 * event.fields.size());
  char buf[48];
  std::snprintf(buf, sizeof(buf), "{\"ts\":%.6f,\"tid\":%d,\"level\":",
                event.ts_seconds, event.tid);
  out.append(buf);
  AppendJsonString(EventLevelName(event.level), &out);
  out.append(",\"component\":");
  AppendJsonString(event.component, &out);
  out.append(",\"name\":");
  AppendJsonString(event.name, &out);
  out.append(",\"fields\":{");
  bool first = true;
  for (const auto& [key, value] : event.fields) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(key, &out);
    out.push_back(':');
    AppendJsonString(value, &out);
  }
  out.append("}}");
  return out;
}

EventLog::EventLog(EventLogOptions options)
    : options_(std::move(options)),
      fs_(options_.fs != nullptr ? options_.fs : RealFilesystem()),
      id_(NextLogId()),
      epoch_(std::chrono::steady_clock::now()) {
  if (options_.ring_capacity == 0) options_.ring_capacity = 1;
  ring_capacity_.store(options_.ring_capacity, std::memory_order_relaxed);
  if (options_.metrics != nullptr) {
    events_counter_ = options_.metrics->counter("event_log.events");
    dropped_counter_ = options_.metrics->counter("event_log.dropped_events");
    sink_errors_counter_ = options_.metrics->counter("event_log.sink_errors");
    crash_reports_counter_ =
        options_.metrics->counter("event_log.crash_reports");
  }
  if (!options_.sink_path.empty()) {
    Result<std::unique_ptr<WritableFile>> sink =
        fs_->NewWritableFile(options_.sink_path);
    if (sink.ok()) {
      sink_ = std::move(sink.value());
    } else {
      sink_status_ = sink.status();
      if (sink_errors_counter_ != nullptr) sink_errors_counter_->Increment();
    }
  }
}

EventLog::~EventLog() {
  std::lock_guard<std::mutex> lock(sink_mu_);
  if (sink_ != nullptr) {
    { Status ignored = sink_->Sync(); (void)ignored; }
    { Status ignored = sink_->Close(); (void)ignored; }
  }
}

EventLog::ThreadRing* EventLog::LocalRing() {
  // Each thread caches its ring per EventLog instance; the map is keyed by
  // the log's process-unique id so a thread outliving one log and logging
  // to another never dereferences a stale ring.
  thread_local std::unordered_map<uint64_t, ThreadRing*> local_rings;
  auto it = local_rings.find(id_);
  if (it != local_rings.end()) return it->second;
  auto ring = std::make_unique<ThreadRing>();
  ring->ring.reserve(ring_capacity_.load(std::memory_order_relaxed));
  ThreadRing* raw = ring.get();
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    raw->tid = static_cast<int>(rings_.size());
    rings_.push_back(std::move(ring));
  }
  local_rings[id_] = raw;
  return raw;
}

void EventLog::Log(EventLevel level, std::string_view component,
                   std::string_view name,
                   std::vector<std::pair<std::string, std::string>> fields) {
  if (level < options_.min_level) return;
  std::stable_sort(fields.begin(), fields.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  ThreadRing* ring = LocalRing();
  Event event;
  event.ts_seconds = NowSeconds();
  event.tid = ring->tid;
  event.level = level;
  event.component.assign(component);
  event.name.assign(name);
  event.fields = std::move(fields);

  {
    const size_t capacity = ring_capacity_.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(ring->mu);
    if (ring->ring.size() < capacity) {
      ring->ring.push_back(event);
    } else {
      // Ring full: overwrite the oldest event in place — recording never
      // blocks on the reader or grows without bound.
      ring->ring[ring->next] = event;
      ring->next = (ring->next + 1) % ring->ring.size();
      dropped_.fetch_add(1, std::memory_order_relaxed);
      if (dropped_counter_ != nullptr) dropped_counter_->Increment();
    }
    ++ring->total;
  }
  recorded_.fetch_add(1, std::memory_order_relaxed);
  if (events_counter_ != nullptr) events_counter_->Increment();

  AppendToSink(event);
}

void EventLog::AppendToSink(const Event& event) {
  if (options_.sink_path.empty()) return;
  std::string line = EventToJsonLine(event);
  line.push_back('\n');
  std::lock_guard<std::mutex> lock(sink_mu_);
  if (sink_ == nullptr) return;  // already failed and detached
  Status status = sink_->Append(line);
  if (!status.ok()) {
    // First failure detaches the stream: the recorder keeps recording,
    // the sink error is counted once per failed op, never retried.
    sink_status_ = status;
    { Status ignored = sink_->Close(); (void)ignored; }
    sink_.reset();
    if (sink_errors_counter_ != nullptr) sink_errors_counter_->Increment();
  }
}

void EventLog::ShrinkRings(size_t new_capacity) {
  if (new_capacity == 0) new_capacity = 1;
  const size_t current = ring_capacity_.load(std::memory_order_relaxed);
  if (new_capacity >= current) return;  // shrink only — never grow
  ring_capacity_.store(new_capacity, std::memory_order_relaxed);
  std::lock_guard<std::mutex> rings_lock(rings_mu_);
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> lock(ring->mu);
    const size_t n = ring->ring.size();
    if (n <= new_capacity) continue;
    // Rebuild keeping the newest new_capacity events in chronological
    // order; `next` wraps to 0 so the next overwrite evicts the oldest.
    std::vector<Event> kept;
    kept.reserve(new_capacity);
    for (size_t i = n - new_capacity; i < n; ++i) {
      kept.push_back(std::move(ring->ring[(ring->next + i) % n]));
    }
    const int64_t evicted = static_cast<int64_t>(n - new_capacity);
    ring->ring = std::move(kept);
    ring->ring.shrink_to_fit();
    ring->next = 0;
    dropped_.fetch_add(evicted, std::memory_order_relaxed);
    if (dropped_counter_ != nullptr) dropped_counter_->Increment(evicted);
  }
}

std::vector<Event> EventLog::RecentEvents(size_t max_events) const {
  std::vector<Event> merged;
  {
    std::lock_guard<std::mutex> rings_lock(rings_mu_);
    for (const auto& ring : rings_) {
      std::lock_guard<std::mutex> lock(ring->mu);
      // Chronological order within the ring: once full, `next` points at
      // the oldest slot.
      const size_t n = ring->ring.size();
      for (size_t i = 0; i < n; ++i) {
        merged.push_back(ring->ring[(ring->next + i) % n]);
      }
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Event& a, const Event& b) {
                     if (a.ts_seconds != b.ts_seconds) {
                       return a.ts_seconds < b.ts_seconds;
                     }
                     return a.tid < b.tid;
                   });
  if (max_events > 0 && merged.size() > max_events) {
    merged.erase(merged.begin(),
                 merged.end() - static_cast<ptrdiff_t>(max_events));
  }
  return merged;
}

int64_t EventLog::dropped_events() const {
  return dropped_.load(std::memory_order_relaxed);
}

int64_t EventLog::retained_events() const {
  // recorded − dropped: what the rings currently hold. Reads two counters
  // non-atomically; exact when quiescent, some valid interleaving under
  // concurrent loggers.
  return recorded_.load(std::memory_order_relaxed) -
         dropped_.load(std::memory_order_relaxed);
}

Status EventLog::Flush() {
  std::lock_guard<std::mutex> lock(sink_mu_);
  if (sink_ == nullptr) return sink_status_;
  Status status = sink_->Sync();
  if (!status.ok()) {
    sink_status_ = status;
    { Status ignored = sink_->Close(); (void)ignored; }
    sink_.reset();
    if (sink_errors_counter_ != nullptr) sink_errors_counter_->Increment();
  }
  return status;
}

Status EventLog::DumpNow(std::string_view reason) {
  if (options_.crash_report_path.empty()) {
    return Status::FailedPrecondition(
        "event log has no crash_report_path configured");
  }
  Status status = WriteCrashReport(options_.crash_report_path, reason);
  if (status.ok() && crash_reports_counter_ != nullptr) {
    crash_reports_counter_->Increment();
  }
  return status;
}

Status EventLog::WriteCrashReport(const std::string& path,
                                  std::string_view reason) const {
  const std::vector<Event> events = RecentEvents(options_.crash_report_last_n);
  std::string content;
  content.reserve(128 + 128 * events.size());
  // Header line first so a reader (or a grep) can identify the report and
  // its trigger without parsing event lines.
  content.append("{\"crash_report\":{\"reason\":");
  AppendJsonString(reason, &content);
  char buf[96];
  std::snprintf(buf, sizeof(buf), ",\"events\":%zu,\"dropped\":%lld}}\n",
                events.size(),
                static_cast<long long>(
                    dropped_.load(std::memory_order_relaxed)));
  content.append(buf);
  for (const Event& event : events) {
    content.append(EventToJsonLine(event));
    content.push_back('\n');
  }
  // Same commit discipline as checkpoints: the report path holds either
  // nothing, the previous intact report, or this one — never a torn file.
  return WriteFileAtomically(fs_, path, content);
}

}  // namespace obs
}  // namespace templex
