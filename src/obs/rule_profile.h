#ifndef TEMPLEX_OBS_RULE_PROFILE_H_
#define TEMPLEX_OBS_RULE_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace templex {
namespace obs {

// Per-rule cost attribution for the chase, in the spirit of the per-rule
// execution accounting the Vadalog System and Nemo lean on for workload
// tuning: which rules eat the match budget, which derive mostly
// duplicates, and how much delta the semi-naive windows actually feed
// them.
//
// The engine accumulates one RuleProfile per (rule, stratum). The count
// columns — matches, firings, duplicates, delta_facts — are merged from
// worker tasks in the same canonical order as match results, so they are
// byte-identical across thread counts; the seconds columns are wall-clock
// and therefore NOT thread-invariant (RuleProfileTable can exclude them
// for deterministic output).

struct RuleProfile {
  std::string rule;         // metric label ("sigma1" or "rule<i>")
  int stratum = 0;          // strata are profiled separately
  int64_t matches = 0;      // body matches enumerated
  int64_t firings = 0;      // head emissions (duplicates included)
  int64_t duplicates = 0;   // head facts already present
  // Pivot-window sizes summed over the rule's EXECUTED passes. Passes the
  // trigger graph skips (no body atom can see a new fact) contribute
  // nothing — so under merge mode this measures delta actually scanned,
  // not delta nominally available, and still merges deterministically.
  int64_t delta_facts = 0;
  double match_seconds = 0.0;   // time enumerating body matches
  double derive_seconds = 0.0;  // time applying heads (derive + dedupe)
};

// Sorts by matches descending, then rule name, then stratum — the "who is
// eating the budget" order used for top-K reporting. Stable across thread
// counts because the keys are the deterministic columns.
void SortRuleProfilesByCost(std::vector<RuleProfile>* profiles);

// Fixed-width table of the top_k most expensive profiles (0 = all).
// include_seconds adds the match/derive wall-clock columns; leave it off
// when the output must be byte-identical across thread counts
// (templex_cli --rule-profile does).
std::string RuleProfileTable(std::vector<RuleProfile> profiles, size_t top_k,
                             bool include_seconds);

}  // namespace obs
}  // namespace templex

#endif  // TEMPLEX_OBS_RULE_PROFILE_H_
