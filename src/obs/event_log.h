#ifndef TEMPLEX_OBS_EVENT_LOG_H_
#define TEMPLEX_OBS_EVENT_LOG_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace templex {

class Fs;            // common/fs.h
class WritableFile;  // common/fs.h

namespace obs {

// Structured, leveled event log — the engine's flight recorder. Unlike the
// metrics registry (aggregates) and the tracer (timings), the event log
// answers "what was the engine *doing* just before it died": every event
// carries a monotonic timestamp, the recording thread, a severity level, a
// component, a name, and sorted key→value fields.
//
// Events land in a bounded per-thread ring buffer that drops oldest-first
// under overflow — recording never blocks or allocates unboundedly, so the
// chase hot path can log at round/rule granularity without a safety valve.
// Optionally every event is also streamed to a JSONL sink through the
// common/fs.h Fs abstraction (MemFs / FaultInjectingFs in tests); a sink
// failure disables the stream and counts event_log.sink_errors, it never
// fails the caller.
//
// On any failure path the owner calls DumpNow(): the last-N retained
// events, merged across threads in timestamp order, are committed to the
// crash-report path with the checkpoint discipline (tmp + fsync + rename),
// so a deadline kill, chaos fault, or torn checkpoint leaves a diagnosable
// post-mortem instead of nothing.
//
// Like the other obs instruments, instrumented code holds an EventLog*
// that may be null and branches on it — a run without a recorder pays one
// pointer test per site.

enum class EventLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

// Lowercase level name ("debug", "info", "warn", "error").
const char* EventLevelName(EventLevel level);

struct Event {
  // Monotonic seconds since the owning log was created.
  double ts_seconds = 0.0;
  // Recording thread: 0 is the first thread that logged to this EventLog
  // (the run's driving thread), workers follow in first-event order.
  int tid = 0;
  EventLevel level = EventLevel::kInfo;
  std::string component;  // "chase", "checkpoint", "llm", "explain", ...
  std::string name;       // "round.start", "run.failed", ...
  // Sorted by key (Log() sorts), so serialized events are diffable.
  std::vector<std::pair<std::string, std::string>> fields;
};

// One JSONL line (no trailing newline):
//   {"ts":0.000123,"tid":0,"level":"info","component":"chase",
//    "name":"round.start","fields":{"round":"3","stratum":"0"}}
std::string EventToJsonLine(const Event& event);

struct EventLogOptions {
  // Events retained per recording thread; older events are dropped
  // oldest-first (counted in event_log.dropped_events).
  size_t ring_capacity = 256;
  // Events below this level are discarded at the Log() call.
  EventLevel min_level = EventLevel::kDebug;
  // Filesystem for the sink and crash reports; null means the real POSIX
  // filesystem. Chaos tests inject MemFs / FaultInjectingFs here.
  Fs* fs = nullptr;
  // When non-empty, every retained event is also appended to this JSONL
  // file as it is logged. Append errors disable the sink (the recorder
  // keeps recording) and count event_log.sink_errors.
  std::string sink_path;
  // Crash-report target for DumpNow(); empty disables dumping.
  std::string crash_report_path;
  // How many trailing events a crash report carries.
  size_t crash_report_last_n = 128;
  // Optional accounting (may be null; must outlive the log):
  //   event_log.events          events recorded (min_level-filtered excluded)
  //   event_log.dropped_events  events evicted oldest-first by overflow
  //   event_log.sink_errors     sink append/sync failures (stream disabled)
  //   event_log.crash_reports   successful DumpNow()/WriteCrashReport()s
  MetricsRegistry* metrics = nullptr;
};

class EventLog {
 public:
  explicit EventLog(EventLogOptions options = {});
  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  // Records one event on the calling thread's ring (dropping its oldest
  // event when full) and streams it to the sink when one is configured.
  // Thread-safe; per-thread rings mean concurrent loggers do not contend.
  void Log(EventLevel level, std::string_view component,
           std::string_view name,
           std::vector<std::pair<std::string, std::string>> fields = {});

  // The retained events, merged across threads in timestamp order. With
  // max_events > 0, only the trailing max_events are returned. Thread-safe
  // (each ring is copied under its own mutex).
  std::vector<Event> RecentEvents(size_t max_events = 0) const;

  // Events evicted by ring overflow, across all threads — and what the
  // rings currently hold (recorded − dropped).
  int64_t dropped_events() const;
  int64_t retained_events() const;

  // Syncs the JSONL sink (no-op without one). Returns the sink's status —
  // after a sink failure, the error that disabled it.
  Status Flush();

  // Commits the last crash_report_last_n events to crash_report_path with
  // tmp+fsync+rename: the report file is either absent, the previous
  // intact report, or the new intact report — never torn. The report's
  // first line is a header naming `reason`; event lines follow in
  // timestamp order. kFailedPrecondition when no crash_report_path is
  // configured.
  Status DumpNow(std::string_view reason);

  // Same, to an explicit path (DumpNow is this with the configured path).
  Status WriteCrashReport(const std::string& path,
                          std::string_view reason) const;

  // Shrinks every thread ring to at most `new_capacity` events (keeping the
  // newest) and lowers the capacity for future appends — the memory
  // governor's last degradation step. Never grows the capacity; excess
  // events are counted as dropped. Thread-safe.
  void ShrinkRings(size_t new_capacity);

  // Current per-thread ring capacity (options().ring_capacity adjusted by
  // ShrinkRings).
  size_t ring_capacity() const {
    return ring_capacity_.load(std::memory_order_relaxed);
  }

  const EventLogOptions& options() const { return options_; }

 private:
  // One recording thread's bounded ring. `mu` serializes the owning
  // thread's appends with cross-thread reads (RecentEvents/DumpNow);
  // appends are uncontended in steady state.
  struct ThreadRing {
    mutable std::mutex mu;
    int tid = 0;
    std::vector<Event> ring;  // capacity-bounded, oldest overwritten
    size_t next = 0;          // insertion cursor once the ring is full
    int64_t total = 0;        // events ever appended
  };

  ThreadRing* LocalRing();
  void AppendToSink(const Event& event);
  double NowSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

  EventLogOptions options_;
  // Live ring capacity: options_.ring_capacity, lowered by ShrinkRings.
  // Atomic because Log() reads it on every append while ShrinkRings may
  // store concurrently.
  std::atomic<size_t> ring_capacity_{0};
  Fs* fs_;  // resolved: options_.fs or the real filesystem
  const uint64_t id_;  // process-unique — keys the TLS ring cache
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex rings_mu_;  // guards ring registration and iteration
  std::vector<std::unique_ptr<ThreadRing>> rings_;

  std::mutex sink_mu_;  // serializes sink appends and Flush
  std::unique_ptr<WritableFile> sink_;
  Status sink_status_;  // first sink error; OK while streaming

  std::atomic<int64_t> dropped_{0};
  std::atomic<int64_t> recorded_{0};

  // Resolved instrument pointers (null without a registry).
  Counter* events_counter_ = nullptr;
  Counter* dropped_counter_ = nullptr;
  Counter* sink_errors_counter_ = nullptr;
  Counter* crash_reports_counter_ = nullptr;
};

}  // namespace obs
}  // namespace templex

#endif  // TEMPLEX_OBS_EVENT_LOG_H_
