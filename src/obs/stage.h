#ifndef TEMPLEX_OBS_STAGE_H_
#define TEMPLEX_OBS_STAGE_H_

#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace templex {
namespace obs {

// A timed pipeline stage: one trace span plus one latency-histogram
// observation, both optional (null registry/tracer make this a cheap
// no-op). Used by the explain pipeline and the structural analysis, whose
// stages are long enough that a map lookup per stage is irrelevant — the
// chase hot loop resolves its instruments up front instead.
//
//   Result<X> x = [&] {
//     obs::StageScope stage(metrics, tracer, "explain.map",
//                           "explain.phase.map.seconds");
//     return ComputeX();
//   }();
class StageScope {
 public:
  StageScope(MetricsRegistry* metrics, Tracer* tracer, const char* span_name,
             const char* histogram_name)
      : metrics_(metrics),
        histogram_name_(histogram_name),
        span_(tracer, span_name),
        timer_(&seconds_) {}

  ~StageScope() {
    if (metrics_ == nullptr) return;
    timer_.Stop();
    metrics_->histogram(histogram_name_)->Observe(seconds_);
  }

  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  MetricsRegistry* metrics_;
  const char* histogram_name_;
  Span span_;
  double seconds_ = 0.0;
  ScopedTimer timer_;
};

}  // namespace obs
}  // namespace templex

#endif  // TEMPLEX_OBS_STAGE_H_
