#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace templex {
namespace obs {

namespace {

// Lock-free accumulate for atomic<double> (fetch_add on floating atomics
// is C++20 but not universally lock-free; the CAS loop is portable).
void AtomicAdd(std::atomic<double>* cell, double delta) {
  double current = cell->load(std::memory_order_relaxed);
  while (!cell->compare_exchange_weak(current, current + delta,
                                      std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* cell, double value) {
  double current = cell->load(std::memory_order_relaxed);
  while (value < current &&
         !cell->compare_exchange_weak(current, value,
                                      std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* cell, double value) {
  double current = cell->load(std::memory_order_relaxed);
  while (value > current &&
         !cell->compare_exchange_weak(current, value,
                                      std::memory_order_relaxed)) {
  }
}

}  // namespace

std::vector<double> Histogram::DefaultLatencyBounds() {
  std::vector<double> bounds;
  for (double decade = 1e-6; decade < 10.0; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2.0);
    bounds.push_back(decade * 5.0);
  }
  bounds.push_back(10.0);
  return bounds;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  stripes_.reserve(kStripes);
  for (int s = 0; s < kStripes; ++s) {
    auto stripe = std::make_unique<Stripe>(bounds_.size() + 1);
    stripe->min.store(std::numeric_limits<double>::infinity(),
                      std::memory_order_relaxed);
    stripe->max.store(-std::numeric_limits<double>::infinity(),
                      std::memory_order_relaxed);
    stripes_.push_back(std::move(stripe));
  }
}

Histogram::Stripe& Histogram::LocalStripe() {
  // Threads are dealt stripe indices round-robin on first use; the same
  // thread keeps its stripe across all histograms, so two threads only
  // share a stripe when more than kStripes threads observe.
  static std::atomic<unsigned> next_thread{0};
  thread_local const unsigned thread_slot =
      next_thread.fetch_add(1, std::memory_order_relaxed);
  return *stripes_[thread_slot % kStripes];
}

void Histogram::Observe(double value) {
  Stripe& stripe = LocalStripe();
  const size_t bucket =
      std::upper_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  stripe.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&stripe.sum, value);
  AtomicMin(&stripe.min, value);
  AtomicMax(&stripe.max, value);
  // Count last, with release: a reader that acquires a stripe's count sees
  // the min/max/sum/bucket writes of the observations it counted.
  stripe.count.fetch_add(1, std::memory_order_release);
}

int64_t Histogram::count() const {
  int64_t total = 0;
  for (const auto& stripe : stripes_) {
    total += stripe->count.load(std::memory_order_acquire);
  }
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const auto& stripe : stripes_) {
    if (stripe->count.load(std::memory_order_acquire) == 0) continue;
    total += stripe->sum.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::min() const {
  double result = std::numeric_limits<double>::infinity();
  for (const auto& stripe : stripes_) {
    if (stripe->count.load(std::memory_order_acquire) == 0) continue;
    result = std::min(result, stripe->min.load(std::memory_order_relaxed));
  }
  return std::isinf(result) ? 0.0 : result;
}

double Histogram::max() const {
  double result = -std::numeric_limits<double>::infinity();
  bool any = false;
  for (const auto& stripe : stripes_) {
    if (stripe->count.load(std::memory_order_acquire) == 0) continue;
    result = std::max(result, stripe->max.load(std::memory_order_relaxed));
    any = true;
  }
  return any ? result : 0.0;
}

std::vector<int64_t> Histogram::bucket_counts() const {
  std::vector<int64_t> totals(bounds_.size() + 1, 0);
  for (const auto& stripe : stripes_) {
    if (stripe->count.load(std::memory_order_acquire) == 0) continue;
    for (size_t i = 0; i < totals.size(); ++i) {
      totals[i] += stripe->buckets[i].load(std::memory_order_relaxed);
    }
  }
  return totals;
}

double Histogram::Percentile(double p) const {
  const std::vector<int64_t> buckets = bucket_counts();
  int64_t total = 0;
  for (int64_t b : buckets) total += b;
  if (total == 0) return 0.0;
  const double observed_min = min();
  const double observed_max = max();
  const double target = p / 100.0 * static_cast<double>(total);
  int64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const int64_t next = cumulative + buckets[i];
    if (static_cast<double>(next) >= target) {
      // Interpolate inside bucket i between its bounds; the overflow
      // bucket has no upper bound, so it reports the observed maximum.
      if (i >= bounds_.size()) return observed_max;
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double upper = bounds_[i];
      const double fraction =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(buckets[i]);
      const double value = lower + (upper - lower) * fraction;
      return std::clamp(value, observed_min, observed_max);
    }
    cumulative = next;
  }
  return observed_max;
}

const CounterSnapshot* MetricsSnapshot::FindCounter(
    const std::string& name) const {
  for (const CounterSnapshot& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const GaugeSnapshot* MetricsSnapshot::FindGauge(
    const std::string& name) const {
  for (const GaugeSnapshot& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->value()});
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->value()});
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.count = histogram->count();
    h.sum = histogram->sum();
    h.min = histogram->min();
    h.max = histogram->max();
    h.p50 = histogram->Percentile(50.0);
    h.p95 = histogram->Percentile(95.0);
    h.p99 = histogram->Percentile(99.0);
    h.bounds = histogram->bounds();
    h.buckets = histogram->bucket_counts();
    snapshot.histograms.push_back(std::move(h));
  }
  return snapshot;
}

namespace {

// Seconds, rendered with a unit that keeps 3+ significant digits.
std::string FormatSeconds(double seconds) {
  char buffer[32];
  if (seconds < 1e-3) {
    std::snprintf(buffer, sizeof(buffer), "%.1fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buffer, sizeof(buffer), "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.3fs", seconds);
  }
  return buffer;
}

}  // namespace

std::string ProfileTable(const MetricsSnapshot& snapshot) {
  std::string table;
  char line[256];
  if (!snapshot.counters.empty()) {
    table += "-- counters ----------------------------------------------\n";
    for (const CounterSnapshot& c : snapshot.counters) {
      std::snprintf(line, sizeof(line), "%-48s %12lld\n", c.name.c_str(),
                    static_cast<long long>(c.value));
      table += line;
    }
  }
  if (!snapshot.gauges.empty()) {
    table += "-- gauges ------------------------------------------------\n";
    for (const GaugeSnapshot& g : snapshot.gauges) {
      std::snprintf(line, sizeof(line), "%-48s %12g\n", g.name.c_str(),
                    g.value);
      table += line;
    }
  }
  if (!snapshot.histograms.empty()) {
    table += "-- histograms --------------------------------------------\n";
    for (const HistogramSnapshot& h : snapshot.histograms) {
      std::snprintf(line, sizeof(line),
                    "%-40s n=%-8lld p50=%-10s p95=%-10s p99=%-10s total=%s\n",
                    h.name.c_str(), static_cast<long long>(h.count),
                    FormatSeconds(h.p50).c_str(),
                    FormatSeconds(h.p95).c_str(),
                    FormatSeconds(h.p99).c_str(),
                    FormatSeconds(h.sum).c_str());
      table += line;
    }
  }
  return table;
}

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; dotted templex names are
// flattened with '_' and namespaced under templex_.
std::string PrometheusName(const std::string& name) {
  std::string out = "templex_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

// Shortest decimal that round-trips to the exact double (so the 0.1 bucket
// bound reads "0.1", not "0.10000000000000001"), with the Prometheus
// spellings for infinities.
std::string PrometheusNumber(double value) {
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buffer[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

}  // namespace

std::string MetricsSnapshotToPrometheusText(const MetricsSnapshot& snapshot) {
  std::string text;
  char line[256];
  for (const CounterSnapshot& c : snapshot.counters) {
    const std::string name = PrometheusName(c.name);
    std::snprintf(line, sizeof(line), "# TYPE %s counter\n%s %lld\n",
                  name.c_str(), name.c_str(),
                  static_cast<long long>(c.value));
    text += line;
  }
  for (const GaugeSnapshot& g : snapshot.gauges) {
    const std::string name = PrometheusName(g.name);
    text += "# TYPE " + name + " gauge\n";
    text += name + " " + PrometheusNumber(g.value) + "\n";
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    const std::string name = PrometheusName(h.name);
    text += "# TYPE " + name + " histogram\n";
    // Cumulative bucket series: each le line counts observations <= bound,
    // and le="+Inf" equals _count (the overflow cell closes the sum).
    int64_t cumulative = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += i < h.buckets.size() ? h.buckets[i] : 0;
      text += name + "_bucket{le=\"" + PrometheusNumber(h.bounds[i]) +
              "\"} " + std::to_string(cumulative) + "\n";
    }
    text += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    text += name + "_sum " + PrometheusNumber(h.sum) + "\n";
    text += name + "_count " + std::to_string(h.count) + "\n";
  }
  return text;
}

}  // namespace obs
}  // namespace templex
