#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace templex {
namespace obs {

std::vector<double> Histogram::DefaultLatencyBounds() {
  std::vector<double> bounds;
  for (double decade = 1e-6; decade < 10.0; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2.0);
    bounds.push_back(decade * 5.0);
  }
  bounds.push_back(10.0);
  return bounds;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0) {}

void Histogram::Observe(double value) {
  size_t bucket =
      std::upper_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  ++buckets_[bucket];
  ++count_;
  sum_ += value;
  if (count_ == 1) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  const double target = p / 100.0 * static_cast<double>(count_);
  int64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const int64_t next = cumulative + buckets_[i];
    if (static_cast<double>(next) >= target) {
      // Interpolate inside bucket i between its bounds; the overflow
      // bucket has no upper bound, so it reports the observed maximum.
      if (i >= bounds_.size()) return max_;
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double upper = bounds_[i];
      const double fraction =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(buckets_[i]);
      const double value = lower + (upper - lower) * fraction;
      return std::clamp(value, min_, max_);
    }
    cumulative = next;
  }
  return max_;
}

const CounterSnapshot* MetricsSnapshot::FindCounter(
    const std::string& name) const {
  for (const CounterSnapshot& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const GaugeSnapshot* MetricsSnapshot::FindGauge(
    const std::string& name) const {
  for (const GaugeSnapshot& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->value()});
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->value()});
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.count = histogram->count();
    h.sum = histogram->sum();
    h.min = histogram->min();
    h.max = histogram->max();
    h.p50 = histogram->Percentile(50.0);
    h.p95 = histogram->Percentile(95.0);
    h.p99 = histogram->Percentile(99.0);
    snapshot.histograms.push_back(std::move(h));
  }
  return snapshot;
}

namespace {

// Seconds, rendered with a unit that keeps 3+ significant digits.
std::string FormatSeconds(double seconds) {
  char buffer[32];
  if (seconds < 1e-3) {
    std::snprintf(buffer, sizeof(buffer), "%.1fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buffer, sizeof(buffer), "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.3fs", seconds);
  }
  return buffer;
}

}  // namespace

std::string ProfileTable(const MetricsSnapshot& snapshot) {
  std::string table;
  char line[256];
  if (!snapshot.counters.empty()) {
    table += "-- counters ----------------------------------------------\n";
    for (const CounterSnapshot& c : snapshot.counters) {
      std::snprintf(line, sizeof(line), "%-48s %12lld\n", c.name.c_str(),
                    static_cast<long long>(c.value));
      table += line;
    }
  }
  if (!snapshot.gauges.empty()) {
    table += "-- gauges ------------------------------------------------\n";
    for (const GaugeSnapshot& g : snapshot.gauges) {
      std::snprintf(line, sizeof(line), "%-48s %12g\n", g.name.c_str(),
                    g.value);
      table += line;
    }
  }
  if (!snapshot.histograms.empty()) {
    table += "-- histograms --------------------------------------------\n";
    for (const HistogramSnapshot& h : snapshot.histograms) {
      std::snprintf(line, sizeof(line),
                    "%-40s n=%-8lld p50=%-10s p95=%-10s p99=%-10s total=%s\n",
                    h.name.c_str(), static_cast<long long>(h.count),
                    FormatSeconds(h.p50).c_str(),
                    FormatSeconds(h.p95).c_str(),
                    FormatSeconds(h.p99).c_str(),
                    FormatSeconds(h.sum).c_str());
      table += line;
    }
  }
  return table;
}

}  // namespace obs
}  // namespace templex
