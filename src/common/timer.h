#ifndef TEMPLEX_COMMON_TIMER_H_
#define TEMPLEX_COMMON_TIMER_H_

#include <chrono>

namespace templex {

// Wall-clock stopwatch over std::chrono::steady_clock. Used by the
// performance experiments (Figure 18) and the microbenchmark helpers.
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  // Elapsed time since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace templex

#endif  // TEMPLEX_COMMON_TIMER_H_
