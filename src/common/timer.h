#ifndef TEMPLEX_COMMON_TIMER_H_
#define TEMPLEX_COMMON_TIMER_H_

#include <chrono>

namespace templex {

// Wall-clock stopwatch over std::chrono::steady_clock. Used by the
// performance experiments (Figure 18) and the microbenchmark helpers.
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  // Elapsed time since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Accumulates its lifetime into a caller-owned duration — the pattern VLog
// uses for its per-phase counters (durationJoin, durationRetain, ...): own
// a `double seconds` per phase and let scopes add to it. Stop() ends the
// measurement early (and makes the destructor a no-op), so callers can
// exclude a tail from the accumulated span.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* accumulated_seconds)
      : accumulated_seconds_(accumulated_seconds) {}
  ~ScopedTimer() { Stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  void Stop() {
    if (stopped_) return;
    stopped_ = true;
    *accumulated_seconds_ += timer_.ElapsedSeconds();
  }

 private:
  double* accumulated_seconds_;
  Timer timer_;
  bool stopped_ = false;
};

}  // namespace templex

#endif  // TEMPLEX_COMMON_TIMER_H_
