#include "common/rng.h"

#include <cmath>

namespace templex {

namespace {

// SplitMix64, used to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  while (true) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(NextUint64(range));
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  // Box-Muller; draws until u1 is nonzero to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

}  // namespace templex
