#ifndef TEMPLEX_COMMON_MEMORY_H_
#define TEMPLEX_COMMON_MEMORY_H_

#include <atomic>
#include <cstdint>
#include <mutex>

namespace templex {

// Pressure verdicts a MemoryBudget observation can return, ordered by
// severity. kSoft asks the owner to shed accessory state (degradation);
// kHard demands save-and-stop: finish the current unit of work, persist,
// and return kResourceExhausted.
enum class MemoryPressure : int {
  kNone = 0,
  kSoft = 1,
  kHard = 2,
};

// "none" / "soft" / "hard".
const char* MemoryPressureName(MemoryPressure pressure);

// Deterministic, seedable allocation-fault injector — the memory twin of
// FaultInjectingFs (common/fs.h). Instead of wrapping an allocator (global
// operator new hooks would bleed across tests), it injects at the budget's
// observation points: each MemoryBudget::Observe draws one verdict, a pure
// function of (seed, observation index), so a chaos sweep can force a hard
// watermark trip at exactly round N and replay it bit-for-bit.
class FaultInjectingAllocator {
 public:
  struct Options {
    uint64_t seed = 20250808;
    // Report hard pressure on every observation with 0-based index >= this.
    // -1 disables the threshold.
    int64_t hard_after_observations = -1;
    // Probability in [0, 1] that any single observation reports hard
    // pressure (drawn from the seeded stream).
    double hard_rate = 0.0;
  };

  FaultInjectingAllocator() : FaultInjectingAllocator(Options()) {}
  explicit FaultInjectingAllocator(Options options);

  // Draws the next verdict and advances the observation counter. True means
  // the caller must behave as if the hard watermark were crossed.
  bool ShouldFail();

  int64_t observations() const { return observations_; }
  int64_t injected_failures() const { return injected_; }
  const Options& options() const { return options_; }

 private:
  // splitmix64 step: the same generator FaultInjectingFs uses, so fault
  // streams are reproducible across platforms and standard libraries.
  uint64_t NextRandom();

  Options options_;
  uint64_t state_;
  int64_t observations_ = 0;
  int64_t injected_ = 0;
};

// Byte budget with soft/hard watermarks for one long-running computation.
//
// The budget does not hook allocation. Owners account their own content-
// based footprint (string lengths + element sizes — never container
// capacities, so the figure is identical across thread counts and across
// checkpoint resume) and reconcile it at natural boundaries:
//
//   MemoryBudget::Observation obs = budget->Observe(total_bytes);
//
// classifies the footprint against the watermarks (and consults the fault
// injector, when one is attached). Charge/Release support finer-grained
// accounting for owners that track deltas instead of totals.
//
// Thread-safe: the byte counters are atomics; Observe serializes on a
// mutex (the injector draw and the pressure transition must be one step).
class MemoryBudget {
 public:
  struct Options {
    // Soft watermark: at or above this, Observe reports kSoft and the owner
    // should degrade gracefully. 0 disables.
    int64_t soft_limit_bytes = 0;
    // Hard watermark: at or above this, Observe reports kHard and the owner
    // must save-and-stop. 0 disables.
    int64_t hard_limit_bytes = 0;
    // Optional chaos hook; may be null. Must outlive the budget. When its
    // draw fires, the observation reports kHard regardless of the real
    // footprint (Observation::injected distinguishes the two).
    FaultInjectingAllocator* allocator = nullptr;
  };

  MemoryBudget() : MemoryBudget(Options()) {}
  explicit MemoryBudget(Options options);

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  void Charge(int64_t bytes);
  void Release(int64_t bytes);

  int64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  int64_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }

  struct Observation {
    MemoryPressure pressure = MemoryPressure::kNone;
    // True when this observation raised the pressure level above every
    // previously observed level (none->soft, none->hard, soft->hard).
    bool transitioned = false;
    // True when the verdict came from the fault injector, not the real
    // footprint.
    bool injected = false;
  };

  // Reconciles the account to `total_bytes` (updating the peak) and
  // classifies it against the watermarks. One injector draw per call.
  Observation Observe(int64_t total_bytes);

  // Highest pressure any observation reported so far.
  MemoryPressure pressure() const {
    return static_cast<MemoryPressure>(
        pressure_.load(std::memory_order_relaxed));
  }
  // Upward pressure transitions observed (the chase.memory.pressure_events
  // figure).
  int64_t pressure_events() const {
    return pressure_events_.load(std::memory_order_relaxed);
  }

  const Options& options() const { return options_; }

 private:
  void UpdatePeak(int64_t bytes);

  Options options_;
  std::atomic<int64_t> bytes_{0};
  std::atomic<int64_t> peak_bytes_{0};
  std::atomic<int> pressure_{static_cast<int>(MemoryPressure::kNone)};
  std::atomic<int64_t> pressure_events_{0};
  std::mutex observe_mu_;
};

}  // namespace templex

#endif  // TEMPLEX_COMMON_MEMORY_H_
