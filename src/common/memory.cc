#include "common/memory.h"

#include <algorithm>

namespace templex {

const char* MemoryPressureName(MemoryPressure pressure) {
  switch (pressure) {
    case MemoryPressure::kNone:
      return "none";
    case MemoryPressure::kSoft:
      return "soft";
    case MemoryPressure::kHard:
      return "hard";
  }
  return "unknown";
}

FaultInjectingAllocator::FaultInjectingAllocator(Options options)
    : options_(options), state_(options.seed) {}

uint64_t FaultInjectingAllocator::NextRandom() {
  // splitmix64: tiny, well-distributed, and identical everywhere.
  state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

bool FaultInjectingAllocator::ShouldFail() {
  const int64_t index = observations_++;
  bool fail = false;
  if (options_.hard_after_observations >= 0 &&
      index >= options_.hard_after_observations) {
    fail = true;
  }
  // The stream advances on every observation regardless of the verdict, so
  // (seed, index) alone determines each draw.
  const uint64_t draw = NextRandom();
  if (!fail && options_.hard_rate > 0.0) {
    const double u =
        static_cast<double>(draw >> 11) * (1.0 / 9007199254740992.0);
    fail = u < options_.hard_rate;
  }
  if (fail) ++injected_;
  return fail;
}

MemoryBudget::MemoryBudget(Options options) : options_(options) {}

void MemoryBudget::UpdatePeak(int64_t bytes) {
  int64_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (bytes > peak && !peak_bytes_.compare_exchange_weak(
                             peak, bytes, std::memory_order_relaxed)) {
  }
}

void MemoryBudget::Charge(int64_t bytes) {
  const int64_t now =
      bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  UpdatePeak(now);
}

void MemoryBudget::Release(int64_t bytes) {
  bytes_.fetch_sub(bytes, std::memory_order_relaxed);
}

MemoryBudget::Observation MemoryBudget::Observe(int64_t total_bytes) {
  std::lock_guard<std::mutex> lock(observe_mu_);
  bytes_.store(total_bytes, std::memory_order_relaxed);
  UpdatePeak(total_bytes);

  Observation result;
  if (options_.allocator != nullptr && options_.allocator->ShouldFail()) {
    result.pressure = MemoryPressure::kHard;
    result.injected = true;
  } else if (options_.hard_limit_bytes > 0 &&
             total_bytes >= options_.hard_limit_bytes) {
    result.pressure = MemoryPressure::kHard;
  } else if (options_.soft_limit_bytes > 0 &&
             total_bytes >= options_.soft_limit_bytes) {
    result.pressure = MemoryPressure::kSoft;
  }

  const int observed = static_cast<int>(result.pressure);
  const int prior = pressure_.load(std::memory_order_relaxed);
  if (observed > prior) {
    pressure_.store(observed, std::memory_order_relaxed);
    pressure_events_.fetch_add(1, std::memory_order_relaxed);
    result.transitioned = true;
  }
  return result;
}

}  // namespace templex
