#ifndef TEMPLEX_COMMON_STATUS_H_
#define TEMPLEX_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace templex {

// Error codes for fallible operations. The library does not use exceptions;
// every fallible API returns a Status or a Result<T> (see below), following
// the Arrow/RocksDB error-handling idiom.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kInternal,
  // Failure-model codes (common/deadline.h): the operation ran out of its
  // time budget, or was cooperatively aborted via a CancellationToken.
  kDeadlineExceeded,
  kCancelled,
  // Storage failure-model codes (common/fs.h, io/checkpoint.h): the
  // underlying storage failed transiently (I/O error, injected fault,
  // simulated crash) vs. durable bytes that fail their integrity checks
  // (bad magic/CRC, truncated record). kDataLoss is terminal for the
  // artifact: retrying cannot make a corrupt checkpoint readable.
  kUnavailable,
  kDataLoss,
};

// Returns a stable, human-readable name for a status code ("InvalidArgument").
const char* StatusCodeToString(StatusCode code);

// A success-or-error outcome carrying a code and a message. Cheap to copy for
// the OK case (empty message).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// A value-or-error holder. Either carries a T (when status().ok()) or an
// error Status. Accessing value() on an error aborts in debug builds.
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& value_or(const T& fallback) const {
    return ok() ? *value_ : fallback;
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace templex

// Propagates a non-OK Status from an expression, Arrow-style.
#define TEMPLEX_RETURN_IF_ERROR(expr)              \
  do {                                             \
    ::templex::Status _templex_status = (expr);    \
    if (!_templex_status.ok()) return _templex_status; \
  } while (false)

#endif  // TEMPLEX_COMMON_STATUS_H_
