#include "common/fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/hash.h"

namespace templex {

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  if (dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

namespace {

Status Errno(const std::string& op, const std::string& path) {
  const int err = errno;
  const std::string message = op + " " + path + ": " + std::strerror(err);
  if (err == ENOENT) return Status::NotFound(message);
  return Status::Unavailable(message);
}

// ---------------------------------------------------------------------------
// POSIX filesystem

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return Status::Internal("append to closed file " + path_);
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Errno("write", path_);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::Internal("sync of closed file " + path_);
    if (::fsync(fd_) != 0) return Errno("fsync", path_);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return Errno("close", path_);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

// Durability of a rename needs the parent directory flushed too; best
// effort — some filesystems refuse to fsync directories.
void SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

class PosixFs : public Fs {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) return Errno("open", path);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  Result<std::string> ReadFile(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return Errno("open", path);
    std::string content;
    char buffer[1 << 16];
    while (true) {
      const ssize_t n = ::read(fd, buffer, sizeof(buffer));
      if (n < 0) {
        if (errno == EINTR) continue;
        const Status status = Errno("read", path);
        ::close(fd);
        return status;
      }
      if (n == 0) break;
      content.append(buffer, static_cast<size_t>(n));
    }
    ::close(fd);
    return content;
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Errno("rename", from);
    }
    SyncParentDir(to);
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return Errno("unlink", path);
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return Errno("opendir", dir);
    std::vector<std::string> names;
    while (struct dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      struct stat st;
      if (::stat(JoinPath(dir, name).c_str(), &st) == 0 &&
          S_ISREG(st.st_mode)) {
        names.push_back(name);
      }
    }
    ::closedir(d);
    std::sort(names.begin(), names.end());
    return names;
  }

  Status CreateDir(const std::string& dir) override {
    // mkdir -p: create each missing component left to right.
    std::string prefix;
    size_t pos = 0;
    while (pos <= dir.size()) {
      const size_t slash = dir.find('/', pos);
      prefix = slash == std::string::npos ? dir : dir.substr(0, slash);
      pos = slash == std::string::npos ? dir.size() + 1 : slash + 1;
      if (prefix.empty()) continue;  // leading '/'
      if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
        return Errno("mkdir", prefix);
      }
    }
    return Status::OK();
  }

  bool Exists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }
};

}  // namespace

Fs* RealFilesystem() {
  static PosixFs* fs = new PosixFs();
  return fs;
}

Status WriteFileAtomically(Fs* fs, const std::string& path,
                           std::string_view content) {
  // The checkpoint commit discipline, packaged: write a sibling temp file,
  // sync it, then rename over the destination. On any failure the temp is
  // removed and the destination is untouched — readers only ever see the
  // previous intact file or the new intact file.
  const std::string tmp = path + ".tmp";
  Result<std::unique_ptr<WritableFile>> file = fs->NewWritableFile(tmp);
  if (!file.ok()) return file.status();
  Status status = file.value()->Append(content);
  if (status.ok()) status = file.value()->Sync();
  if (status.ok()) status = file.value()->Close();
  if (status.ok()) status = fs->Rename(tmp, path);
  if (!status.ok()) {
    Status removed = fs->RemoveFile(tmp);
    (void)removed;  // best-effort cleanup; the original error wins
  }
  return status;
}

// ---------------------------------------------------------------------------
// MemFs

class MemWritableFile : public WritableFile {
 public:
  MemWritableFile(MemFs* fs, std::string path)
      : fs_(fs), path_(std::move(path)) {}

  Status Append(std::string_view data) override;
  Status Sync() override;
  Status Close() override {
    closed_ = true;
    return Status::OK();
  }

 private:
  MemFs* fs_;
  std::string path_;
  bool closed_ = false;
};

Result<std::unique_ptr<WritableFile>> MemFs::NewWritableFile(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[path] = MemFile{};
  return std::unique_ptr<WritableFile>(
      std::make_unique<MemWritableFile>(this, path));
}

Status MemWritableFile::Append(std::string_view data) {
  if (closed_) return Status::Internal("append to closed file " + path_);
  std::lock_guard<std::mutex> lock(fs_->mu_);
  auto it = fs_->files_.find(path_);
  if (it == fs_->files_.end()) {
    // Renamed or removed underneath the handle; POSIX would keep writing to
    // the inode, but the checkpoint protocol never does this — flag it.
    return Status::Internal("append to vanished file " + path_);
  }
  it->second.content.append(data.data(), data.size());
  return Status::OK();
}

Status MemWritableFile::Sync() {
  if (closed_) return Status::Internal("sync of closed file " + path_);
  std::lock_guard<std::mutex> lock(fs_->mu_);
  auto it = fs_->files_.find(path_);
  if (it == fs_->files_.end()) {
    return Status::Internal("sync of vanished file " + path_);
  }
  it->second.synced = it->second.content.size();
  return Status::OK();
}

Result<std::string> MemFs::ReadFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return it->second.content;
}

Status MemFs::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound("no such file: " + from);
  files_[to] = std::move(it->second);
  files_.erase(it);
  return Status::OK();
}

Status MemFs::RemoveFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.erase(path) == 0) {
    return Status::NotFound("no such file: " + path);
  }
  return Status::OK();
}

Result<std::vector<std::string>> MemFs::ListDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string prefix = dir.empty() || dir.back() == '/' ? dir : dir + "/";
  if (dirs_.count(dir) == 0) {
    // A directory also "exists" if any file lives under it.
    bool any = false;
    for (const auto& [path, file] : files_) {
      if (path.rfind(prefix, 0) == 0) {
        any = true;
        break;
      }
    }
    if (!any) return Status::NotFound("no such directory: " + dir);
  }
  std::vector<std::string> names;
  for (const auto& [path, file] : files_) {
    if (path.rfind(prefix, 0) != 0) continue;
    const std::string rest = path.substr(prefix.size());
    if (rest.find('/') == std::string::npos) names.push_back(rest);
  }
  return names;  // map iteration is already sorted
}

Status MemFs::CreateDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  dirs_.insert(dir);
  return Status::OK();
}

bool MemFs::Exists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0 || dirs_.count(path) > 0;
}

void MemFs::LoseUnsyncedData() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [path, file] : files_) {
    if (file.content.size() > file.synced) file.content.resize(file.synced);
  }
}

int64_t MemFs::synced_bytes(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  return it == files_.end() ? -1 : static_cast<int64_t>(it->second.synced);
}

// ---------------------------------------------------------------------------
// FaultInjectingFs

class FaultInjectingWritableFile : public WritableFile {
 public:
  FaultInjectingWritableFile(FaultInjectingFs* fs,
                             std::unique_ptr<WritableFile> inner)
      : fs_(fs), inner_(std::move(inner)) {}

  Status Append(std::string_view data) override {
    double uniform = 0.0;
    Status fault = fs_->NextOp(&uniform, /*can_short_write=*/true,
                                /*can_tear=*/false);
    if (!fault.ok()) {
      if (fault.code() == StatusCode::kUnavailable &&
          fault.message().rfind("injected short write", 0) == 0 &&
          !data.empty()) {
        // Persist a seeded strict prefix, then report failure.
        const size_t keep =
            static_cast<size_t>(uniform * static_cast<double>(data.size()));
        inner_->Append(data.substr(0, keep));
      }
      return fault;
    }
    return inner_->Append(data);
  }

  Status Sync() override {
    double uniform = 0.0;
    TEMPLEX_RETURN_IF_ERROR(
        fs_->NextOp(&uniform, /*can_short_write=*/false, /*can_tear=*/false));
    return inner_->Sync();
  }

  Status Close() override { return inner_->Close(); }

 private:
  FaultInjectingFs* fs_;
  std::unique_ptr<WritableFile> inner_;
};

FaultInjectingFs::FaultInjectingFs(Fs* base, FsFaultOptions options)
    : base_(base), options_(options) {}

double FaultInjectingFs::DrawAt(int64_t index, uint64_t salt) const {
  const uint64_t mixed = HashCombine(
      HashCombine(options_.seed, static_cast<uint64_t>(index)), salt);
  return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

Status FaultInjectingFs::NextOp(double* uniform, bool can_short_write,
                                bool can_tear) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) {
    return Status::Unavailable("simulated crash: filesystem is down");
  }
  const int64_t index = ops_++;
  if (options_.crash_after_ops >= 0 && index >= options_.crash_after_ops) {
    crashed_ = true;
    ++faults_;
    return Status::Unavailable("simulated crash: filesystem is down");
  }
  // One uniform draw decides which fault, if any, fires (cumulative bands,
  // like FaultInjectingLlm); a second independent draw picks offsets. Band
  // layout is the same for every op — a draw landing in a band the op
  // cannot experience (a short write on a Sync, a torn rename on an
  // Append) passes cleanly, keeping the sequence a pure function of
  // (seed, op index).
  const double draw = DrawAt(index, /*salt=*/1);
  *uniform = DrawAt(index, /*salt=*/2);
  double band = options_.error_rate;
  if (draw < band) {
    ++faults_;
    return Status::Unavailable("injected I/O error");
  }
  band += options_.short_write_rate;
  if (draw < band) {
    if (!can_short_write) return Status::OK();
    ++faults_;
    return Status::Unavailable("injected short write");
  }
  band += options_.torn_rename_rate;
  if (draw < band) {
    if (!can_tear) return Status::OK();
    ++faults_;
    return Status::Unavailable("injected torn rename");
  }
  return Status::OK();
}

Result<std::unique_ptr<WritableFile>> FaultInjectingFs::NewWritableFile(
    const std::string& path) {
  double uniform = 0.0;
  TEMPLEX_RETURN_IF_ERROR(
      NextOp(&uniform, /*can_short_write=*/false, /*can_tear=*/false));
  Result<std::unique_ptr<WritableFile>> inner = base_->NewWritableFile(path);
  if (!inner.ok()) return inner.status();
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultInjectingWritableFile>(this,
                                                   std::move(inner).value()));
}

Result<std::string> FaultInjectingFs::ReadFile(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_) {
      return Status::Unavailable("simulated crash: filesystem is down");
    }
  }
  return base_->ReadFile(path);
}

Status FaultInjectingFs::Rename(const std::string& from,
                                const std::string& to) {
  double uniform = 0.0;
  Status fault =
      NextOp(&uniform, /*can_short_write=*/false, /*can_tear=*/true);
  if (!fault.ok()) {
    if (fault.code() == StatusCode::kUnavailable &&
        fault.message().rfind("injected torn rename", 0) == 0) {
      // The directory entry outran the data: the rename "happens" but the
      // destination holds a truncated prefix, and the device is dead after
      // the power cut that exposed it.
      Result<std::string> content = base_->ReadFile(from);
      if (content.ok()) {
        const size_t keep = static_cast<size_t>(
            uniform * static_cast<double>(content.value().size()));
        Result<std::unique_ptr<WritableFile>> file =
            base_->NewWritableFile(from);
        if (file.ok()) {
          file.value()->Append(
              std::string_view(content.value()).substr(0, keep));
          file.value()->Sync();
          file.value()->Close();
        }
        base_->Rename(from, to);
      }
      std::lock_guard<std::mutex> lock(mu_);
      crashed_ = true;
    }
    return fault;
  }
  return base_->Rename(from, to);
}

Status FaultInjectingFs::RemoveFile(const std::string& path) {
  double uniform = 0.0;
  TEMPLEX_RETURN_IF_ERROR(
      NextOp(&uniform, /*can_short_write=*/false, /*can_tear=*/false));
  return base_->RemoveFile(path);
}

Result<std::vector<std::string>> FaultInjectingFs::ListDir(
    const std::string& dir) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_) {
      return Status::Unavailable("simulated crash: filesystem is down");
    }
  }
  return base_->ListDir(dir);
}

Status FaultInjectingFs::CreateDir(const std::string& dir) {
  double uniform = 0.0;
  TEMPLEX_RETURN_IF_ERROR(
      NextOp(&uniform, /*can_short_write=*/false, /*can_tear=*/false));
  return base_->CreateDir(dir);
}

bool FaultInjectingFs::Exists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return false;
  return base_->Exists(path);
}

bool FaultInjectingFs::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

int64_t FaultInjectingFs::mutating_ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_;
}

int64_t FaultInjectingFs::injected_faults() const {
  std::lock_guard<std::mutex> lock(mu_);
  return faults_;
}

}  // namespace templex
