#ifndef TEMPLEX_COMMON_FS_H_
#define TEMPLEX_COMMON_FS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace templex {

// Filesystem abstraction for the durability layer (io/checkpoint.h). The
// production implementation is POSIX; MemFs gives tests a hermetic disk
// with honest crash semantics (unsynced bytes are lost), and
// FaultInjectingFs decorates any Fs with seeded storage faults — the
// storage twin of llm/fault_injecting_llm.h.
//
// Durability contract (what io/checkpoint relies on):
//   - WritableFile::Append buffers; only bytes covered by a returned-OK
//     Sync() are guaranteed to survive a crash.
//   - Rename atomically replaces the destination. After a crash, readers
//     see either the old or the new file — never a mix — PROVIDED the
//     source was Sync()ed first (renaming unsynced data is the classic
//     torn-rename bug, and MemFs/FaultInjectingFs reproduce it).

// A file opened for writing. Close() without Sync() makes no durability
// promise. Destruction closes (without syncing).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(std::string_view data) = 0;
  // Flushes all appended bytes to durable storage.
  virtual Status Sync() = 0;
  // Idempotent; further Appends are an error.
  virtual Status Close() = 0;
};

class Fs {
 public:
  virtual ~Fs() = default;

  // Creates (or truncates) `path` for writing.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;

  // Whole-file read. NotFound when the file does not exist.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;

  // Atomically replaces `to` with `from`. NotFound when `from` is missing.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  // NotFound when missing.
  virtual Status RemoveFile(const std::string& path) = 0;

  // Plain file names directly inside `dir`, sorted. NotFound when the
  // directory does not exist.
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;

  // Creates `dir` (and missing parents); OK when it already exists.
  virtual Status CreateDir(const std::string& dir) = 0;

  virtual bool Exists(const std::string& path) = 0;
};

// `dir` + "/" + `name`, without doubling separators.
std::string JoinPath(const std::string& dir, const std::string& name);

// The process-wide POSIX filesystem.
Fs* RealFilesystem();

// Commits `content` to `path` with the checkpoint discipline — write
// `path`.tmp, Sync, Close, Rename — so `path` only ever holds a previous
// intact file or the new intact file, never a torn one. On failure the temp
// file is removed (best effort) and the first error is returned.
Status WriteFileAtomically(Fs* fs, const std::string& path,
                           std::string_view content);

// In-memory filesystem with crash semantics: each file tracks how many of
// its bytes have been Sync()ed, and LoseUnsyncedData() — the simulated
// power cut — truncates every file back to its synced prefix. Renames and
// removals are modelled as immediately durable (as if the directory were
// fsynced), so the only way to lose bytes is to skip Sync() on the data
// itself — exactly the failure the checkpoint commit protocol must order
// against. Thread-safe.
class MemFs : public Fs {
 public:
  MemFs() = default;

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  Status CreateDir(const std::string& dir) override;
  bool Exists(const std::string& path) override;

  // Simulates a crash + restart of the storage device: every file keeps
  // only the prefix covered by its last successful Sync().
  void LoseUnsyncedData();

  // Test introspection.
  int64_t synced_bytes(const std::string& path);

 private:
  friend class MemWritableFile;
  struct MemFile {
    std::string content;
    size_t synced = 0;
  };

  std::mutex mu_;
  std::map<std::string, MemFile> files_;
  std::set<std::string> dirs_;
};

// Which storage faults a FaultInjectingFs draws, and how often. Rates are
// per-mutating-op probabilities in [0, 1]; each op makes one deterministic
// draw from (seed, op index), so a fixed seed replays the exact same fault
// sequence regardless of wall clock or thread timing.
struct FsFaultOptions {
  uint64_t seed = 20250806;

  // After this many successful mutating ops, the next mutating op and
  // everything after it (reads included) fails with
  // kUnavailable("simulated crash"). -1 disables. Drive this 0..N to sweep
  // every crash point of a protocol; pair with MemFs::LoseUnsyncedData()
  // before "restarting".
  int64_t crash_after_ops = -1;

  // Probability that a mutating op fails outright with kUnavailable (EIO).
  double error_rate = 0.0;
  // Probability that an Append persists only a seeded prefix of its bytes
  // and then reports kUnavailable — a short write the caller must treat as
  // failed even though bytes hit the file.
  double short_write_rate = 0.0;
  // Probability that a Rename goes through but the destination is
  // truncated at a seeded offset and the fs enters the crashed state — a
  // torn rename: the directory entry outran the data blocks (what happens
  // on power cut when the protocol forgets to Sync() before Rename()).
  double torn_rename_rate = 0.0;
};

// Seeded fault-injecting Fs decorator for storage chaos tests: recovery
// code must either resume from what survived or fail with a diagnosable
// Status — never read garbage as truth. Thread-safe; the op counter is
// shared across all files of this instance.
class FaultInjectingFs : public Fs {
 public:
  explicit FaultInjectingFs(Fs* base, FsFaultOptions options = {});

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  Status CreateDir(const std::string& dir) override;
  bool Exists(const std::string& path) override;

  bool crashed() const;
  // Accounting for test assertions.
  int64_t mutating_ops() const;
  int64_t injected_faults() const;

 private:
  friend class FaultInjectingWritableFile;

  // Draws the fault (if any) for the next mutating op; advances the op
  // counter. kOk means "proceed"; anything else is the injected failure the
  // op must surface. `uniform` is the op's deterministic U[0,1) draw,
  // exposed for offset-picking faults. Fault bands only fire on ops they
  // apply to (`can_short_write` for Appends, `can_tear` for Renames); the
  // draw itself is identical for every op, so the fault sequence stays a
  // pure function of (seed, op index).
  Status NextOp(double* uniform, bool can_short_write, bool can_tear);
  double DrawAt(int64_t index, uint64_t salt) const;

  Fs* base_;
  FsFaultOptions options_;
  mutable std::mutex mu_;
  int64_t ops_ = 0;
  int64_t faults_ = 0;
  bool crashed_ = false;
};

}  // namespace templex

#endif  // TEMPLEX_COMMON_FS_H_
