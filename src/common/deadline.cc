#include "common/deadline.h"

#include <chrono>
#include <limits>

namespace templex {

namespace {

int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int64_t Deadline::NowMicros() const {
  return clock_ != nullptr ? clock_->NowMicros() : SteadyNowMicros();
}

Deadline Deadline::AfterMillis(int64_t millis, const VirtualClock* clock) {
  Deadline deadline;
  deadline.infinite_ = false;
  deadline.clock_ = clock;
  deadline.expiry_micros_ = deadline.NowMicros() + millis * 1000;
  return deadline;
}

Deadline Deadline::AfterSeconds(double seconds, const VirtualClock* clock) {
  Deadline deadline;
  deadline.infinite_ = false;
  deadline.clock_ = clock;
  deadline.expiry_micros_ =
      deadline.NowMicros() + static_cast<int64_t>(seconds * 1e6);
  return deadline;
}

bool Deadline::expired() const {
  return !infinite_ && NowMicros() >= expiry_micros_;
}

int64_t Deadline::RemainingMillis() const {
  if (infinite_) return std::numeric_limits<int64_t>::max();
  return (expiry_micros_ - NowMicros()) / 1000;
}

double Deadline::RemainingSeconds() const {
  if (infinite_) return std::numeric_limits<double>::max();
  return static_cast<double>(expiry_micros_ - NowMicros()) / 1e6;
}

Status CheckInterruption(const Deadline& deadline,
                         const CancellationToken& cancel, const char* where) {
  if (cancel.cancelled()) {
    return Status::Cancelled(std::string("cancelled at ") + where);
  }
  if (deadline.expired()) {
    return Status::DeadlineExceeded(std::string("deadline exceeded at ") +
                                    where);
  }
  return Status::OK();
}

}  // namespace templex
