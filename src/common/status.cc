#include "common/status.h"

namespace templex {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  result += ": ";
  result += message_;
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace templex
