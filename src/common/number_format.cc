#include "common/number_format.h"

#include <cmath>
#include <cstdio>

namespace templex {

std::string FormatDouble(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  // Integral values print without a decimal point.
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
    return buffer;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6f", value);
  std::string text(buffer);
  // Strip trailing zeros, then a trailing '.'.
  size_t end = text.size();
  while (end > 0 && text[end - 1] == '0') --end;
  if (end > 0 && text[end - 1] == '.') --end;
  text.resize(end);
  return text;
}

std::string FormatNumber(double value, NumberStyle style) {
  switch (style) {
    case NumberStyle::kPlain:
      return FormatDouble(value);
    case NumberStyle::kMillions:
      return FormatDouble(value) + "M";
    case NumberStyle::kPercent:
      return FormatDouble(value * 100.0) + "%";
  }
  return FormatDouble(value);
}

std::string FormatInt(int64_t value) { return std::to_string(value); }

}  // namespace templex
