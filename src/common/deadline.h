#ifndef TEMPLEX_COMMON_DEADLINE_H_
#define TEMPLEX_COMMON_DEADLINE_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/status.h"

namespace templex {

// A monotonically advancing, test-controllable time source. Production code
// leaves it out (Deadline then reads std::chrono::steady_clock); tests hand
// the same VirtualClock to a Deadline and to the failure-injection /
// retry decorators (llm/fault_injecting_llm.h, llm/retrying_llm.h), so
// latency, backoff, and deadline expiry interact deterministically without
// any real sleeping.
//
// Thread-safe: Advance* and NowMicros are single atomic operations.
class VirtualClock {
 public:
  int64_t NowMicros() const {
    return now_micros_.load(std::memory_order_relaxed);
  }
  void AdvanceMicros(int64_t micros) {
    now_micros_.fetch_add(micros, std::memory_order_relaxed);
  }
  void AdvanceMillis(int64_t millis) { AdvanceMicros(millis * 1000); }
  void AdvanceSeconds(double seconds) {
    AdvanceMicros(static_cast<int64_t>(seconds * 1e6));
  }

 private:
  std::atomic<int64_t> now_micros_{0};
};

// An absolute point on a monotonic clock after which an operation must give
// up with StatusCode::kDeadlineExceeded. Default-constructed deadlines are
// infinite (never expire), so threading one through an API costs nothing
// for callers that do not set it. Copyable value type; copies share the
// governing clock but are otherwise independent.
//
// The clock is std::chrono::steady_clock unless a VirtualClock was given at
// construction — wall-clock adjustments never shorten or extend a run.
class Deadline {
 public:
  // Infinite: never expires.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  // Expires `millis` from now. AfterMillis(0) is already expired, which is
  // how tests model "the time budget was gone before we started".
  static Deadline AfterMillis(int64_t millis,
                              const VirtualClock* clock = nullptr);
  static Deadline AfterSeconds(double seconds,
                               const VirtualClock* clock = nullptr);

  bool infinite() const { return infinite_; }
  bool expired() const;

  // Time left before expiry. Negative once expired; int64_t/double max when
  // infinite. Retry loops use this to refuse a backoff that would overrun
  // the deadline.
  int64_t RemainingMillis() const;
  double RemainingSeconds() const;

 private:
  int64_t NowMicros() const;

  bool infinite_ = true;
  int64_t expiry_micros_ = 0;          // on the governing clock
  const VirtualClock* clock_ = nullptr;  // null: steady_clock
};

// A cooperative cancellation flag shared between a controller and the
// operation it may abort. Copies share state: hand one copy to ChaseConfig /
// ExplainerOptions, keep another, and Cancel() from any thread; the running
// operation polls cancelled() at its interruption points and returns
// StatusCode::kCancelled. A cancelled token stays cancelled forever.
//
// Thread-safe: Cancel and cancelled are single relaxed atomic operations on
// the shared cell, cheap enough to poll per match in the chase inner loop.
class CancellationToken {
 public:
  CancellationToken()
      : cancelled_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() const {
    cancelled_->store(true, std::memory_order_relaxed);
  }
  bool cancelled() const {
    return cancelled_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> cancelled_;
};

// The standard interruption probe: kCancelled when the token fired (it
// wins over the deadline — an explicit abort is more informative than a
// coincident timeout), kDeadlineExceeded when the deadline passed, OK
// otherwise. `where` names the interruption point in the error message
// ("chase round", "llm retry", ...).
Status CheckInterruption(const Deadline& deadline,
                         const CancellationToken& cancel, const char* where);

}  // namespace templex

#endif  // TEMPLEX_COMMON_DEADLINE_H_
