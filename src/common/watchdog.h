#ifndef TEMPLEX_COMMON_WATCHDOG_H_
#define TEMPLEX_COMMON_WATCHDOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "common/deadline.h"

namespace templex {

// Round-progress watchdog for the chase: detects a *stalled* computation —
// one that is neither finishing nor failing, just stuck inside a round —
// and cancels it cooperatively.
//
// The monitored computation heartbeats with Pet() (cheap: one relaxed
// atomic increment, called from the match loop's interruption probe and at
// round boundaries) and names its in-flight work with SetContext(). The
// detector side, Poll(), compares the heartbeat counter against the last
// observed value: unchanged for longer than `stall_timeout_ms` on the
// governing clock means the run is stuck, and the watchdog fires once —
// invoking `on_stall` with a report naming the in-flight rule/stratum/
// round, then cancelling the shared token so the run unwinds with
// kCancelled at its next interruption point.
//
// Poll() can be driven two ways: Start()/Stop() run a background monitor
// thread (the CLI), or the owner calls Poll() directly after advancing a
// VirtualClock (deterministic tests — the same pattern Deadline uses).
class StallWatchdog {
 public:
  struct StallReport {
    std::string rule;     // in-flight rule label ("" before the first rule)
    int stratum = 0;
    int64_t round = 0;
    int64_t heartbeats = 0;   // total Pet() calls when the stall fired
    int64_t stalled_for_ms = 0;
    int64_t stall_timeout_ms = 0;
  };

  struct Options {
    // No heartbeat for this long means the run is stalled. <= 0 disables
    // detection entirely (Poll never fires).
    int64_t stall_timeout_ms = 0;
    // Governing clock; null means std::chrono::steady_clock. Tests hand the
    // same VirtualClock to Poll-driven detection.
    const VirtualClock* clock = nullptr;
    // Token shared with the monitored run; Cancel()ed when a stall fires.
    CancellationToken cancel;
    // Stall sink (crash report, event log, metrics — wired by the owner so
    // this layer stays free of obs dependencies). May be empty. Invoked at
    // most once, from the thread that ran the firing Poll().
    std::function<void(const StallReport&)> on_stall;
    // Background monitor cadence for Start(); <= 0 derives stall_timeout/4
    // (clamped to [1, 1000] ms).
    int64_t poll_every_ms = 0;
  };

  StallWatchdog() : StallWatchdog(Options()) {}
  explicit StallWatchdog(Options options);
  ~StallWatchdog();

  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;

  // Heartbeat: "the run made matcher progress". Thread-safe, wait-free.
  void Pet() { heartbeats_.fetch_add(1, std::memory_order_relaxed); }

  // Names the in-flight work for the stall report. Called from the driving
  // thread at rule/round boundaries; thread-safe.
  void SetContext(std::string_view rule, int stratum, int64_t round);

  // One detection step. Returns true iff the stall fired on this call (at
  // most once per watchdog). Thread-safe, but meant for one detector.
  bool Poll();

  // Background monitor thread around Poll(). Start is idempotent; Stop
  // joins the thread (also called by the destructor).
  void Start();
  void Stop();

  bool stalled() const { return stalled_.load(std::memory_order_relaxed); }
  int64_t heartbeats() const {
    return heartbeats_.load(std::memory_order_relaxed);
  }

 private:
  int64_t NowMicros() const;

  Options options_;
  std::atomic<int64_t> heartbeats_{0};
  std::atomic<bool> stalled_{false};

  std::mutex mu_;  // guards context_* and the detector state below
  std::string context_rule_;
  int context_stratum_ = 0;
  int64_t context_round_ = 0;
  int64_t last_seen_heartbeats_ = 0;
  int64_t last_progress_micros_ = 0;
  bool armed_ = false;  // first Poll()/Start() stamps the baseline

  std::thread monitor_;
  std::atomic<bool> stop_monitor_{false};
  bool monitor_running_ = false;
};

}  // namespace templex

#endif  // TEMPLEX_COMMON_WATCHDOG_H_
