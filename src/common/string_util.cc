#include "common/string_util.h"

#include <cctype>

namespace templex {

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result += separator;
    result += parts[i];
  }
  return result;
}

std::string JoinWithConjunction(const std::vector<std::string>& parts,
                                std::string_view separator,
                                std::string_view last_separator) {
  if (parts.empty()) return "";
  if (parts.size() == 1) return parts[0];
  std::string result;
  for (size_t i = 0; i + 1 < parts.size(); ++i) {
    if (i > 0) result += separator;
    result += parts[i];
  }
  result += last_separator;
  result += parts.back();
  return result;
}

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(text.substr(start));
      break;
    }
    pieces.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::string Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string result;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      result.append(text.substr(start));
      break;
    }
    result.append(text.substr(start, pos - start));
    result.append(to);
    start = pos + from.size();
  }
  return result;
}

bool Contains(std::string_view text, std::string_view needle) {
  return text.find(needle) != std::string_view::npos;
}

std::string ToLower(std::string_view text) {
  std::string result(text);
  for (char& c : result) c = std::tolower(static_cast<unsigned char>(c));
  return result;
}

std::string ToUpper(std::string_view text) {
  std::string result(text);
  for (char& c : result) c = std::toupper(static_cast<unsigned char>(c));
  return result;
}

std::string Capitalize(std::string_view text) {
  std::string result(text);
  if (!result.empty()) {
    result[0] = std::toupper(static_cast<unsigned char>(result[0]));
  }
  return result;
}

int CountOccurrences(std::string_view text, std::string_view needle) {
  if (needle.empty()) return 0;
  int count = 0;
  size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string_view::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

std::vector<std::string> SplitSentences(std::string_view text) {
  std::vector<std::string> sentences;
  std::string current;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    current.push_back(c);
    // A '.' between digits is a decimal point ("86.89%"), not a sentence
    // boundary.
    const bool decimal_point =
        c == '.' && i > 0 &&
        std::isdigit(static_cast<unsigned char>(text[i - 1])) &&
        i + 1 < text.size() &&
        std::isdigit(static_cast<unsigned char>(text[i + 1]));
    if ((c == '.' && !decimal_point) || c == '!' || c == '?') {
      std::string trimmed = Trim(current);
      if (!trimmed.empty()) sentences.push_back(trimmed);
      current.clear();
    }
  }
  std::string trimmed = Trim(current);
  if (!trimmed.empty()) sentences.push_back(trimmed);
  return sentences;
}

}  // namespace templex
