#ifndef TEMPLEX_COMMON_HASH_H_
#define TEMPLEX_COMMON_HASH_H_

#include <cstdint>

namespace templex {

// The one hash-mixing implementation for the project. Fact dedup, the
// fact-store position index, and value hashing all route through these two
// functions; tests/common/hash_test.cc pins their avalanche quality, so a
// weak ad-hoc mix can't quietly creep back into a hot index.

// 64-bit finalizer (splitmix64): flipping any single input bit flips each
// output bit with probability ~1/2.
inline uint64_t HashMix(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// Folds `value` into `seed`, order-sensitively: HashCombine(HashCombine(s,
// a), b) and HashCombine(HashCombine(s, b), a) differ, and combining the
// same value twice does not cancel (unlike a bare XOR chain).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return HashMix(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                         (seed >> 2)));
}

}  // namespace templex

#endif  // TEMPLEX_COMMON_HASH_H_
