#ifndef TEMPLEX_COMMON_HASH_H_
#define TEMPLEX_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

namespace templex {

// The one hash-mixing implementation for the project. Fact dedup, the
// fact-store position index, and value hashing all route through these two
// functions; tests/common/hash_test.cc pins their avalanche quality, so a
// weak ad-hoc mix can't quietly creep back into a hot index.

// 64-bit finalizer (splitmix64): flipping any single input bit flips each
// output bit with probability ~1/2.
inline uint64_t HashMix(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// Folds `value` into `seed`, order-sensitively: HashCombine(HashCombine(s,
// a), b) and HashCombine(HashCombine(s, b), a) differ, and combining the
// same value twice does not cancel (unlike a bare XOR chain).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return HashMix(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                         (seed >> 2)));
}

namespace internal {
// Reflected CRC-32 (IEEE 802.3, polynomial 0xEDB88320) byte table.
inline const uint32_t* Crc32Table() {
  static const auto table = [] {
    struct Table {
      uint32_t entries[256];
    } t;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      t.entries[i] = crc;
    }
    return t;
  }();
  return table.entries;
}
}  // namespace internal

// CRC-32 (IEEE) over `size` bytes, resumable: pass a previous checksum as
// `seed` to continue it over the next chunk (Crc32(b, n2, Crc32(a, n1)) ==
// Crc32(a+b, n1+n2)). Unlike HashMix/HashCombine — which optimize for
// avalanche in in-memory indexes — this is the detection code for bytes
// that cross a durability boundary: every io/checkpoint record carries one
// so torn writes and bit rot surface as kDataLoss instead of a wrong
// resume.
inline uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0) {
  const uint32_t* table = internal::Crc32Table();
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xFFu];
  }
  return ~crc;
}

}  // namespace templex

#endif  // TEMPLEX_COMMON_HASH_H_
