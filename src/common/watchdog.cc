#include "common/watchdog.h"

#include <algorithm>
#include <chrono>

namespace templex {

StallWatchdog::StallWatchdog(Options options)
    : options_(std::move(options)) {}

StallWatchdog::~StallWatchdog() { Stop(); }

int64_t StallWatchdog::NowMicros() const {
  if (options_.clock != nullptr) return options_.clock->NowMicros();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void StallWatchdog::SetContext(std::string_view rule, int stratum,
                               int64_t round) {
  std::lock_guard<std::mutex> lock(mu_);
  context_rule_.assign(rule);
  context_stratum_ = stratum;
  context_round_ = round;
}

bool StallWatchdog::Poll() {
  if (options_.stall_timeout_ms <= 0) return false;
  StallReport report;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stalled_.load(std::memory_order_relaxed)) return false;
    const int64_t now = NowMicros();
    const int64_t beats = heartbeats_.load(std::memory_order_relaxed);
    if (!armed_ || beats != last_seen_heartbeats_) {
      armed_ = true;
      last_seen_heartbeats_ = beats;
      last_progress_micros_ = now;
      return false;
    }
    const int64_t stalled_for_micros = now - last_progress_micros_;
    if (stalled_for_micros < options_.stall_timeout_ms * 1000) return false;
    stalled_.store(true, std::memory_order_relaxed);
    report.rule = context_rule_;
    report.stratum = context_stratum_;
    report.round = context_round_;
    report.heartbeats = beats;
    report.stalled_for_ms = stalled_for_micros / 1000;
    report.stall_timeout_ms = options_.stall_timeout_ms;
  }
  // Sink and cancel outside the lock: on_stall may log, dump a crash
  // report, or (in tests) call back into the watchdog's accessors.
  if (options_.on_stall) options_.on_stall(report);
  options_.cancel.Cancel();
  return true;
}

void StallWatchdog::Start() {
  if (monitor_running_ || options_.stall_timeout_ms <= 0) return;
  int64_t every_ms = options_.poll_every_ms;
  if (every_ms <= 0) {
    every_ms = std::clamp<int64_t>(options_.stall_timeout_ms / 4, 1, 1000);
  }
  stop_monitor_.store(false, std::memory_order_relaxed);
  monitor_running_ = true;
  monitor_ = std::thread([this, every_ms] {
    while (!stop_monitor_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(every_ms));
      if (stop_monitor_.load(std::memory_order_relaxed)) break;
      Poll();
    }
  });
}

void StallWatchdog::Stop() {
  if (!monitor_running_) return;
  stop_monitor_.store(true, std::memory_order_relaxed);
  if (monitor_.joinable()) monitor_.join();
  monitor_running_ = false;
}

}  // namespace templex
