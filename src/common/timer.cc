#include "common/timer.h"

// Timer is header-only; this translation unit exists so the build layout is
// uniform (one .cc per header) and to anchor the vtable-free class in the
// library archive.
