#ifndef TEMPLEX_COMMON_THREAD_POOL_H_
#define TEMPLEX_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace templex {

// A small work-stealing thread pool sized once and reused across many
// fan-outs (the chase engine keeps one for the lifetime of the engine and
// fans every round's match tasks through it, so threads are spawned once
// per engine, not once per round).
//
// The unit of work is an index: ParallelFor(count, body) runs body(i) for
// every i in [0, count) and returns when all of them finished. Indices are
// dealt to per-participant deques in contiguous runs (participant p starts
// on the p-th slice), each participant pops its own deque from the back,
// and a participant whose deque ran dry steals from the front of another's
// — long tasks at the end of a slice get picked up by whoever is idle.
// The calling thread participates as participant 0, so ThreadPool(n) gives
// n-way parallelism with n - 1 spawned workers.
//
// ParallelFor gives no ordering or thread-affinity guarantees; callers that
// need deterministic output write into preallocated per-index slots and
// merge in index order afterwards (see ChaseRun::RunRoundParallel). `body`
// must not throw and must not call ParallelFor on the same pool.
//
// Submit() is the second unit of work: a fire-and-forget task queued FIFO
// and run by the spawned workers (the service's request handlers ride on
// it). Shutdown-with-pending-tasks semantics are part of the contract and
// pinned by tests/common/thread_pool_test.cc: every task submitted before
// the destructor returns runs EXACTLY once — the destructor drains the
// queue (workers keep pulling queued tasks after stop is signalled, and a
// pool whose workers already exited, including the zero-worker pool, runs
// the leftovers inline on the destructing thread) — so destruction never
// deadlocks and never drops a task silently. Tasks must complete for
// destruction to return; long-running tasks need their own cancellation
// signal (the service cancels in-flight requests before tearing the pool
// down). Tasks may Submit() further tasks, including during the drain.
class ThreadPool {
 public:
  // Spawns `num_threads - 1` workers (the caller is the remaining
  // participant). num_threads <= 1 spawns nothing and ParallelFor runs
  // inline.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total participants, including the calling thread.
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  // std::thread::hardware_concurrency with a floor of 1.
  static int HardwareConcurrency();

  // Runs body(0) .. body(count - 1), blocking until every index completed.
  void ParallelFor(size_t count, const std::function<void(size_t)>& body);

  // Enqueues one task (FIFO) for the spawned workers and returns
  // immediately. `task` must not throw. With no spawned workers the task
  // stays queued until destruction, which runs it inline — Submit never
  // runs the task on the calling thread while the pool is alive, so
  // callers can hold locks across it.
  void Submit(std::function<void()> task);

  // Tasks submitted but not yet started (test/ops introspection).
  size_t QueuedTasks() const;

 private:
  // One participant's task deque. A mutex per deque keeps stealing simple;
  // tasks are coarse (a whole rule-partition match), so the lock is cold.
  struct TaskQueue {
    std::mutex mu;
    std::deque<size_t> items;
  };

  // One ParallelFor invocation. Workers hold the batch via shared_ptr so a
  // batch outlives ParallelFor returning (a worker may still be between
  // "found no task" and "went back to sleep").
  struct Batch {
    const std::function<void(size_t)>* body = nullptr;
    std::vector<std::unique_ptr<TaskQueue>> queues;
    std::atomic<size_t> remaining{0};
  };

  void WorkerLoop(size_t preferred_queue);
  // Runs tasks from `batch` (own queue first, then stealing) until no task
  // remains findable. `self` picks the queue this participant starts on
  // (taken modulo the batch's queue count).
  void WorkOn(Batch* batch, size_t self);

  std::vector<std::thread> workers_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers: a new batch or task arrived
  std::condition_variable done_cv_;  // caller: batch.remaining hit zero
  std::deque<std::function<void()>> submitted_;  // FIFO Submit() queue
  std::shared_ptr<Batch> current_;   // null when idle
  uint64_t batch_seq_ = 0;           // bumped per batch, so workers never
                                     // re-enter one they already drained
  bool stop_ = false;
};

}  // namespace templex

#endif  // TEMPLEX_COMMON_THREAD_POOL_H_
