#ifndef TEMPLEX_COMMON_NUMBER_FORMAT_H_
#define TEMPLEX_COMMON_NUMBER_FORMAT_H_

#include <cstdint>
#include <string>

namespace templex {

// How a numeric token should be rendered inside a natural-language
// explanation. The financial KG applications store monetary amounts in
// millions of euros and ownership shares as fractions in [0, 1]; glossary
// entries carry one of these hints per predicate argument (see
// explain/glossary.h).
enum class NumberStyle {
  kPlain,     // 7 -> "7", 0.5 -> "0.5"
  kMillions,  // 7 -> "7M", 11.5 -> "11.5M"  (amounts expressed in millions)
  kPercent,   // 0.83 -> "83%"               (shares expressed as fractions)
};

// Formats a double without scientific notation and without trailing zeros
// ("7", "0.5", "11.25").
std::string FormatDouble(double value);

// Formats `value` according to `style` (see NumberStyle).
std::string FormatNumber(double value, NumberStyle style);

// Formats an integer with no grouping ("1234").
std::string FormatInt(int64_t value);

}  // namespace templex

#endif  // TEMPLEX_COMMON_NUMBER_FORMAT_H_
