#ifndef TEMPLEX_COMMON_RNG_H_
#define TEMPLEX_COMMON_RNG_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace templex {

// Deterministic, seedable pseudo-random number generator (xoshiro256**).
// All stochastic components of the library (data generators, simulated LLM,
// simulated study participants) draw from an explicitly passed Rng so that
// every experiment is reproducible from its seed.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform in [0, 2^64).
  uint64_t NextUint64();

  // Uniform in [0, bound). `bound` must be > 0.
  uint64_t NextUint64(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  // Standard normal via Box-Muller.
  double NextGaussian();

  // Normal with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  // Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBool(double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextUint64(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  // Uniformly picks one element. Requires non-empty.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    assert(!items.empty());
    return items[static_cast<size_t>(NextUint64(items.size()))];
  }

 private:
  uint64_t state_[4];
};

}  // namespace templex

#endif  // TEMPLEX_COMMON_RNG_H_
