#ifndef TEMPLEX_COMMON_STRING_UTIL_H_
#define TEMPLEX_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace templex {

// Joins the elements of `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

// Joins with `separator` between all but the last pair, which uses
// `last_separator` ("a, b and c"). Used for textual conjunction of
// aggregation contributors.
std::string JoinWithConjunction(const std::vector<std::string>& parts,
                                std::string_view separator,
                                std::string_view last_separator);

// Splits `text` on `delimiter`, keeping empty pieces.
std::vector<std::string> Split(std::string_view text, char delimiter);

// Removes leading and trailing ASCII whitespace.
std::string Trim(std::string_view text);

// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to);

// True if `text` contains `needle`.
bool Contains(std::string_view text, std::string_view needle);

// Lower/upper-cases ASCII letters.
std::string ToLower(std::string_view text);
std::string ToUpper(std::string_view text);

// Upper-cases the first character (if alphabetic).
std::string Capitalize(std::string_view text);

// Counts non-overlapping occurrences of `needle` (non-empty) in `text`.
int CountOccurrences(std::string_view text, std::string_view needle);

// Splits a flowing text into sentences on '.', '!', '?' boundaries,
// trimming whitespace; the terminating punctuation is kept.
std::vector<std::string> SplitSentences(std::string_view text);

}  // namespace templex

#endif  // TEMPLEX_COMMON_STRING_UTIL_H_
