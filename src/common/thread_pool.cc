#include "common/thread_pool.h"

#include <algorithm>

namespace templex {

int ThreadPool::HardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int num_threads) {
  const int spawned = std::max(0, num_threads - 1);
  workers_.reserve(spawned);
  for (int i = 0; i < spawned; ++i) {
    // Participant 0 is the caller of ParallelFor; workers start on the
    // following slices.
    workers_.emplace_back([this, i] { WorkerLoop(static_cast<size_t>(i) + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  // Workers drain the Submit queue before exiting (WorkerLoop pops queued
  // tasks even after stop is signalled), so joining here already covers
  // every task a worker could reach.
  for (std::thread& worker : workers_) worker.join();
  // Leftovers — the zero-worker pool's whole queue, plus any task submitted
  // after the last worker exited — run inline: shutdown with pending tasks
  // must not drop work silently.
  while (true) {
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (submitted_.empty()) break;
      task = std::move(submitted_.front());
      submitted_.pop_front();
    }
    task();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    submitted_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

size_t ThreadPool::QueuedTasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return submitted_.size();
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& body) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (size_t i = 0; i < count; ++i) body(i);
    return;
  }
  const size_t participants =
      std::min(workers_.size() + 1, count);  // no empty starting slices
  auto batch = std::make_shared<Batch>();
  batch->body = &body;
  batch->remaining.store(count, std::memory_order_relaxed);
  batch->queues.reserve(participants);
  for (size_t p = 0; p < participants; ++p) {
    batch->queues.push_back(std::make_unique<TaskQueue>());
    const size_t begin = count * p / participants;
    const size_t end = count * (p + 1) / participants;
    for (size_t i = begin; i < end; ++i) {
      batch->queues[p]->items.push_back(i);
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = batch;
    ++batch_seq_;
  }
  work_cv_.notify_all();
  WorkOn(batch.get(), 0);
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return batch->remaining.load(std::memory_order_acquire) == 0;
    });
    if (current_ == batch) current_ = nullptr;
  }
}

void ThreadPool::WorkerLoop(size_t preferred_queue) {
  uint64_t drained_seq = 0;
  while (true) {
    std::shared_ptr<Batch> batch;
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || !submitted_.empty() ||
               (current_ != nullptr && batch_seq_ != drained_seq);
      });
      // Queued tasks win over stop: the shutdown contract is drain, not
      // drop, so a stopping worker keeps pulling until the queue is dry.
      if (!submitted_.empty()) {
        task = std::move(submitted_.front());
        submitted_.pop_front();
      } else if (current_ != nullptr && batch_seq_ != drained_seq) {
        batch = current_;
        drained_seq = batch_seq_;
      } else {
        return;  // stop_, nothing pending
      }
    }
    if (task) {
      task();
    } else {
      WorkOn(batch.get(), preferred_queue);
    }
  }
}

void ThreadPool::WorkOn(Batch* batch, size_t self) {
  const size_t queues = batch->queues.size();
  while (true) {
    size_t index = 0;
    bool found = false;
    {
      // Own queue: take from the back (the slice is contiguous, so this
      // walks it in reverse — order is irrelevant to callers).
      TaskQueue& own = *batch->queues[self % queues];
      std::lock_guard<std::mutex> lock(own.mu);
      if (!own.items.empty()) {
        index = own.items.back();
        own.items.pop_back();
        found = true;
      }
    }
    if (!found) {
      // Steal from the front of the first non-empty victim.
      for (size_t v = 1; v < queues && !found; ++v) {
        TaskQueue& victim = *batch->queues[(self + v) % queues];
        std::lock_guard<std::mutex> lock(victim.mu);
        if (!victim.items.empty()) {
          index = victim.items.front();
          victim.items.pop_front();
          found = true;
        }
      }
    }
    if (!found) return;
    (*batch->body)(index);
    if (batch->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last task: wake the caller. Locking mu_ pairs with the caller's
      // predicate check so the notify cannot slip between its check and
      // its wait.
      { std::lock_guard<std::mutex> lock(mu_); }
      done_cv_.notify_all();
    }
  }
}

}  // namespace templex
