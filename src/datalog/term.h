#ifndef TEMPLEX_DATALOG_TERM_H_
#define TEMPLEX_DATALOG_TERM_H_

#include <string>

#include "datalog/value.h"

namespace templex {

// A term is either a variable (named, e.g. `x`) or a constant Value
// (e.g. 0.5 or "long"). See the paper's relational foundations (§3).
class Term {
 public:
  static Term Variable(std::string name) {
    Term t;
    t.is_variable_ = true;
    t.name_ = std::move(name);
    return t;
  }

  static Term Constant(Value value) {
    Term t;
    t.is_variable_ = false;
    t.value_ = std::move(value);
    return t;
  }

  bool is_variable() const { return is_variable_; }
  bool is_constant() const { return !is_variable_; }

  const std::string& variable_name() const { return name_; }
  const Value& constant_value() const { return value_; }

  bool operator==(const Term& other) const {
    if (is_variable_ != other.is_variable_) return false;
    return is_variable_ ? name_ == other.name_ : value_ == other.value_;
  }

  std::string ToString() const {
    return is_variable_ ? name_ : value_.ToString();
  }

 private:
  Term() = default;

  bool is_variable_ = false;
  std::string name_;
  Value value_;
};

}  // namespace templex

#endif  // TEMPLEX_DATALOG_TERM_H_
