#include "datalog/magic.h"

#include <deque>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "datalog/atom.h"
#include "datalog/rule.h"
#include "engine/stratification.h"

namespace templex {
namespace {

// Adornment of an atom occurrence: a position is bound when it holds a
// constant or a variable already bound by the sideways pass.
std::string AtomAdornment(const Atom& atom,
                          const std::set<std::string>& bound_vars) {
  std::string adornment;
  adornment.reserve(atom.terms.size());
  for (const Term& term : atom.terms) {
    bool bound = term.is_constant() ||
                 bound_vars.count(term.variable_name()) > 0;
    adornment.push_back(bound ? 'b' : 'f');
  }
  return adornment;
}

bool AllFree(const std::string& adornment) {
  return adornment.find('b') == std::string::npos;
}

// Terms of `atom` at the 'b' positions of `adornment` — the arguments of
// the corresponding magic guard atom.
std::vector<Term> BoundTerms(const Atom& atom, const std::string& adornment) {
  std::vector<Term> terms;
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    if (adornment[i] == 'b') terms.push_back(atom.terms[i]);
  }
  return terms;
}

struct Rewriter {
  const Program& program;
  const Fact& goal;
  MagicRewriteResult result;

  // (predicate, adornment) pairs already queued or processed.
  std::set<std::pair<std::string, std::string>> seen;
  std::deque<std::pair<std::string, std::string>> work;

  bool refused = false;

  void Refuse(std::string reason) {
    if (refused) return;
    refused = true;
    result.refusal_reason = std::move(reason);
  }

  void Enqueue(const std::string& pred, const std::string& adornment) {
    if (seen.emplace(pred, adornment).second) {
      work.emplace_back(pred, adornment);
      result.adorned_predicates.push_back(AdornedName(pred, adornment));
    }
  }

  // Specializes every rule with head `pred` to adornment `adornment`,
  // appending the adorned rule and its magic rules to `rules`.
  void ProcessAdornedPredicate(const std::string& pred,
                               const std::string& adornment,
                               std::vector<Rule>* rules) {
    for (size_t rule_idx = 0; rule_idx < program.rules().size(); ++rule_idx) {
      const Rule& rule = program.rules()[rule_idx];
      if (rule.is_constraint || rule.head.predicate != pred) continue;
      if (refused) return;

      if (!rule.ExistentialVariableNames().empty()) {
        Refuse("rule '" + rule.label +
               "' in the goal's dependency cone has existential head "
               "variables; restricted labeled-null identities would not "
               "match the full chase");
        return;
      }

      const std::string result_var =
          rule.has_aggregate() ? rule.aggregate->result_variable : "";

      // Variables bound by the magic guard: head variables at 'b'
      // positions. A bound position holding the aggregate result variable
      // cannot be seeded (the value only exists after aggregation).
      std::set<std::string> bound_vars;
      for (size_t i = 0; i < rule.head.terms.size(); ++i) {
        if (adornment[i] != 'b') continue;
        const Term& term = rule.head.terms[i];
        if (!term.is_variable()) continue;
        if (!result_var.empty() && term.variable_name() == result_var) {
          Refuse("goal binds the aggregate result position of rule '" +
                 rule.label + "'; values cannot be seeded through a "
                 "monotone aggregate");
          return;
        }
        bound_vars.insert(term.variable_name());
      }

      Rule adorned = rule;
      adorned.label = rule.label + "@" + adornment;
      adorned.head.predicate = AdornedName(pred, adornment);

      const bool guarded = !AllFree(adornment);
      Atom guard(MagicName(pred, adornment), BoundTerms(rule.head, adornment));

      // Left-to-right sideways pass over the positive body. `prefix`
      // accumulates the adorned forms of the atoms already traversed —
      // the bodies of the magic rules for later atoms.
      std::vector<Atom> prefix;
      if (guarded) prefix.push_back(guard);

      for (size_t j = 0; j < rule.body.size(); ++j) {
        const Atom& atom = rule.body[j];
        Atom adorned_atom = atom;
        if (program.IsIntensional(atom.predicate)) {
          std::string beta = AtomAdornment(atom, bound_vars);
          adorned_atom.predicate = AdornedName(atom.predicate, beta);
          Enqueue(atom.predicate, beta);
          if (!AllFree(beta)) {
            Rule magic;
            magic.label =
                "m@" + rule.label + "@" + adornment + "@" + std::to_string(j);
            magic.head = Atom(MagicName(atom.predicate, beta),
                              BoundTerms(atom, beta));
            magic.body = prefix;
            rules->push_back(std::move(magic));
          }
        }
        adorned.body[j] = adorned_atom;
        prefix.push_back(adorned_atom);
        for (const std::string& var : atom.VariableNames()) {
          bound_vars.insert(var);
        }
      }

      // Negated atoms are checked after the positive body; rule safety
      // guarantees all their variables are bound there, so their
      // adornment is all-'b' and the magic rule's body is the full
      // positive prefix. Magic completeness then makes the restricted
      // negated relation complete for every binding actually checked.
      for (size_t j = 0; j < rule.negative_body.size(); ++j) {
        const Atom& atom = rule.negative_body[j];
        if (!program.IsIntensional(atom.predicate)) continue;
        std::string beta = AtomAdornment(atom, bound_vars);
        if (beta.find('f') != std::string::npos) {
          // Unreachable for validated programs; refuse rather than emit
          // an unsound rewrite.
          Refuse("negated atom '" + atom.ToString() + "' in rule '" +
                 rule.label + "' is not fully bound by the positive body");
          return;
        }
        adorned.negative_body[j].predicate =
            AdornedName(atom.predicate, beta);
        Enqueue(atom.predicate, beta);
        Rule magic;
        magic.label =
            "m@" + rule.label + "@" + adornment + "@n" + std::to_string(j);
        magic.head =
            Atom(MagicName(atom.predicate, beta), BoundTerms(atom, beta));
        magic.body = prefix;
        rules->push_back(std::move(magic));
      }

      if (guarded) {
        adorned.body.insert(adorned.body.begin(), guard);
      }
      rules->push_back(std::move(adorned));
    }
  }

  MagicRewriteResult Run() {
    const std::string& goal_pred = goal.predicate;
    if (!program.IsIntensional(goal_pred)) {
      // Purely extensional goal: nothing to rewrite, nothing to chase.
      result.rewritten = true;
      result.goal_predicate = goal_pred;
      result.program = Program({}, "");
      return std::move(result);
    }

    std::string a0 = GoalAdornment(goal);
    Enqueue(goal_pred, a0);

    std::vector<Rule> rules;
    while (!work.empty() && !refused) {
      auto [pred, adornment] = work.front();
      work.pop_front();
      ProcessAdornedPredicate(pred, adornment, &rules);
    }
    if (refused) return std::move(result);

    result.goal_predicate = AdornedName(goal_pred, a0);
    result.program = Program(std::move(rules), result.goal_predicate);

    if (!AllFree(a0)) {
      std::vector<Value> seed_args;
      for (const Value& arg : goal.args) {
        if (!arg.is_null()) seed_args.push_back(arg);
      }
      result.seeds.push_back(
          Fact(MagicName(goal_pred, a0), std::move(seed_args)));
    }

    // The magic rules add positive edges from guard predicates to body
    // prefixes; if one of them closes a cycle through a negated atom the
    // rewritten program has no stratification and restricted evaluation
    // would be unsound. Refuse and let the caller materialize.
    if (Result<std::map<std::string, int>> strata =
            StratifyProgram(result.program);
        !strata.ok()) {
      Refuse("magic rewrite breaks stratification: " +
             std::string(strata.status().message()));
      return std::move(result);
    }

    result.rewritten = true;
    return std::move(result);
  }
};

}  // namespace

std::string GoalAdornment(const Fact& goal_pattern) {
  std::string adornment;
  adornment.reserve(goal_pattern.args.size());
  for (const Value& arg : goal_pattern.args) {
    adornment.push_back(arg.is_null() ? 'f' : 'b');
  }
  return adornment;
}

std::string AdornedName(const std::string& predicate,
                        const std::string& adornment) {
  return predicate + "@" + adornment;
}

std::string MagicName(const std::string& predicate,
                      const std::string& adornment) {
  return "m@" + predicate + "@" + adornment;
}

bool IsMagicRewritten(const Program& program) {
  for (const Rule& rule : program.rules()) {
    if (rule.head.predicate.find('@') != std::string::npos) return true;
  }
  return false;
}

MagicRewriteResult MagicRewrite(const Program& program,
                                const Fact& goal_pattern) {
  if (IsMagicRewritten(program)) {
    // Idempotence: the program is already goal-restricted; re-adorning
    // adorned predicates would only rename them.
    MagicRewriteResult result;
    result.rewritten = true;
    result.program = program;
    result.goal_predicate = program.goal_predicate();
    return result;
  }
  Rewriter rewriter{program, goal_pattern, {}, {}, {}};
  return rewriter.Run();
}

}  // namespace templex
