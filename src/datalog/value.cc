#include "datalog/value.h"

#include <functional>

#include "common/hash.h"
#include "common/number_format.h"

namespace templex {

Value::Kind Value::kind() const {
  switch (repr_.index()) {
    case 0:
      return Kind::kNull;
    case 1:
      return Kind::kBool;
    case 2:
      return Kind::kInt;
    case 3:
      return Kind::kDouble;
    case 4:
      return Kind::kString;
    case 5:
      return Kind::kLabeledNull;
  }
  return Kind::kNull;
}

double Value::AsDouble() const {
  if (is_int()) return static_cast<double>(int_value());
  return double_value();
}

bool Value::operator==(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    return AsDouble() == other.AsDouble();
  }
  return repr_ == other.repr_;
}

bool Value::operator<(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    return AsDouble() < other.AsDouble();
  }
  if (kind() != other.kind()) {
    return static_cast<int>(kind()) < static_cast<int>(other.kind());
  }
  switch (kind()) {
    case Kind::kNull:
      return false;
    case Kind::kBool:
      return bool_value() < other.bool_value();
    case Kind::kInt:
      return int_value() < other.int_value();
    case Kind::kDouble:
      return double_value() < other.double_value();
    case Kind::kString:
      return string_value() < other.string_value();
    case Kind::kLabeledNull:
      return labeled_null_id() < other.labeled_null_id();
  }
  return false;
}

std::string Value::ToString() const {
  switch (kind()) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return bool_value() ? "true" : "false";
    case Kind::kInt:
      return std::to_string(int_value());
    case Kind::kDouble:
      return FormatDouble(double_value());
    case Kind::kString:
      return "\"" + string_value() + "\"";
    case Kind::kLabeledNull:
      return "_:z" + std::to_string(labeled_null_id());
  }
  return "null";
}

std::string Value::ToDisplayString() const {
  switch (kind()) {
    case Kind::kString:
      return string_value();
    case Kind::kDouble:
      return FormatDouble(double_value());
    default:
      return ToString();
  }
}

size_t Value::Hash() const {
  // Numerics hash through their double image so that Int(2) and Double(2.0)
  // collide, consistent with operator==. Every branch runs through HashMix /
  // HashCombine (common/hash.h): these hashes feed the fact store's packed
  // position keys directly, so they need full avalanche on their own.
  if (is_numeric()) {
    return HashMix(std::hash<double>{}(AsDouble()));
  }
  switch (kind()) {
    case Kind::kNull:
      return HashMix(0x9e3779b9ULL);
    case Kind::kBool:
      return HashMix(0x517cc1b7ULL + (bool_value() ? 1 : 0));
    case Kind::kString:
      return HashMix(std::hash<std::string>{}(string_value()));
    case Kind::kLabeledNull:
      return HashCombine(0x2545f491ULL,
                         static_cast<uint64_t>(labeled_null_id()));
    default:
      return 0;
  }
}

}  // namespace templex
