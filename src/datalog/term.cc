#include "datalog/term.h"

// Term is header-only; see term.h.
