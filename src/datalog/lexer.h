#ifndef TEMPLEX_DATALOG_LEXER_H_
#define TEMPLEX_DATALOG_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace templex {

// Token kinds of the Vadalog-subset surface syntax. `%` starts a line
// comment.
enum class TokenKind {
  kIdent,    // alpha, Shock, f, sum
  kNumber,   // 0.5, 7
  kString,   // "long"
  kLParen,   // (
  kRParen,   // )
  kLBracket, // [
  kRBracket, // ]
  kComma,    // ,
  kDot,      // .
  kColon,    // :
  kArrow,    // ->
  kAt,       // @
  kBang,     // !  (negative-constraint head)
  kAssign,   // =
  kEq,       // ==
  kNe,       // !=
  kLt,       // <
  kLe,       // <=
  kGt,       // >
  kGe,       // >=
  kPlus,     // +
  kMinus,    // -
  kStar,     // *
  kSlash,    // /
  kEnd,      // end of input
};

const char* TokenKindToString(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;      // identifier name or string contents
  double number = 0.0;   // numeric value for kNumber
  bool number_is_int = false;
  int line = 0;          // 1-based source line, for error messages
};

// Tokenizes `source`. Errors on unterminated strings and unexpected
// characters; the returned vector always ends with a kEnd token on success.
Result<std::vector<Token>> Tokenize(const std::string& source);

}  // namespace templex

#endif  // TEMPLEX_DATALOG_LEXER_H_
