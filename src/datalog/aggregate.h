#ifndef TEMPLEX_DATALOG_AGGREGATE_H_
#define TEMPLEX_DATALOG_AGGREGATE_H_

#include <string>
#include <vector>

namespace templex {

// Monotonic aggregation functions supported by the Vadalog extensions (§3).
enum class AggregateFunction { kSum, kProd, kMin, kMax, kCount };

const char* AggregateFunctionToString(AggregateFunction fn);

// An aggregation element of a rule body: `result = sum(input)` or, with
// explicit contributor keys, `result = sum(input, [k1, k2])`.
//
// Semantics (monotonic aggregation): contributions are grouped by the values
// of the rule's group key (all head / post-condition variables except
// `result_variable`). Within a group:
//   - without explicit contributor keys, each distinct residual body binding
//     contributes its input value exactly once (set semantics);
//   - with explicit contributor keys, each distinct key tuple contributes its
//     *latest monotone* value (max for sum/count/max, min for min), which is
//     how Vadalog's msum aggregates running per-channel totals (rule σ7 of
//     the stress test sums the latest per-channel exposure).
struct Aggregate {
  std::string result_variable;
  AggregateFunction function = AggregateFunction::kSum;
  std::string input_variable;
  std::vector<std::string> contributor_keys;  // may be empty

  // "e = sum(v)" / "ts = sum(s, [z])".
  std::string ToString() const;
};

}  // namespace templex

#endif  // TEMPLEX_DATALOG_AGGREGATE_H_
