#ifndef TEMPLEX_DATALOG_VALUE_H_
#define TEMPLEX_DATALOG_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace templex {

// A ground value of the relational domain: the constants C of the paper's
// preliminaries, plus labelled nulls N (produced by existential quantifiers)
// and booleans/numbers needed by the Vadalog extensions (comparisons,
// arithmetic, aggregation).
class Value {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kLabeledNull };

  // Default-constructed value is the (untyped) null.
  Value() : repr_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Repr(b)); }
  static Value Int(int64_t i) { return Value(Repr(i)); }
  static Value Double(double d) { return Value(Repr(d)); }
  static Value String(std::string s) { return Value(Repr(std::move(s))); }
  // A labelled null z_i introduced by an existential variable.
  static Value LabeledNull(int64_t id) { return Value(Repr(NullId{id})); }

  Kind kind() const;

  bool is_null() const { return kind() == Kind::kNull; }
  bool is_bool() const { return kind() == Kind::kBool; }
  bool is_int() const { return kind() == Kind::kInt; }
  bool is_double() const { return kind() == Kind::kDouble; }
  bool is_string() const { return kind() == Kind::kString; }
  bool is_labeled_null() const { return kind() == Kind::kLabeledNull; }
  bool is_numeric() const { return is_int() || is_double(); }

  bool bool_value() const { return std::get<bool>(repr_); }
  int64_t int_value() const { return std::get<int64_t>(repr_); }
  double double_value() const { return std::get<double>(repr_); }
  const std::string& string_value() const {
    return std::get<std::string>(repr_);
  }
  int64_t labeled_null_id() const { return std::get<NullId>(repr_).id; }

  // Numeric value as double; requires is_numeric().
  double AsDouble() const;

  // Structural equality. Int and double compare numerically (Int(2) ==
  // Double(2.0)) so that arithmetic results unify with integer constants.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  // Total order used for deterministic iteration: by kind, then value
  // (numerics compare cross-kind by numeric value).
  bool operator<(const Value& other) const;

  // Datalog literal syntax: strings quoted ("A"), numbers bare, nulls as
  // _:z<id>.
  std::string ToString() const;

  // Natural-language rendering: strings unquoted, numbers via FormatDouble.
  std::string ToDisplayString() const;

  size_t Hash() const;

  // Content-based footprint (common/memory.h accounting): the inline
  // representation plus string length — never allocator capacities — so two
  // runs holding equal values account equal bytes regardless of thread
  // count, join mode, or checkpoint resume.
  int64_t ApproxBytes() const {
    return static_cast<int64_t>(sizeof(Value)) +
           (is_string() ? static_cast<int64_t>(string_value().size()) : 0);
  }

 private:
  struct NullId {
    int64_t id;
    bool operator==(const NullId& o) const { return id == o.id; }
  };
  using Repr = std::variant<std::monostate, bool, int64_t, double, std::string,
                            NullId>;

  explicit Value(Repr repr) : repr_(std::move(repr)) {}

  Repr repr_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace templex

#endif  // TEMPLEX_DATALOG_VALUE_H_
