#ifndef TEMPLEX_DATALOG_BINDING_H_
#define TEMPLEX_DATALOG_BINDING_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "datalog/value.h"

namespace templex {

// A homomorphism fragment: a mapping from variable names to ground values.
// Rule bodies bind at most a handful of variables, so a flat vector with
// linear lookup beats a hash map and keeps iteration order deterministic.
class Binding {
 public:
  Binding() = default;

  // Returns the bound value, or nullopt.
  std::optional<Value> Get(std::string_view name) const;

  // Pointer form of Get for hot paths: no Value copy, no optional. The
  // pointer is invalidated by any mutation of the binding.
  const Value* Find(std::string_view name) const;

  bool IsBound(std::string_view name) const { return Get(name).has_value(); }

  // Binds name -> value. If already bound, returns true iff the existing
  // value equals `value` (consistency check); otherwise appends and returns
  // true.
  bool Bind(const std::string& name, const Value& value);

  // Overwrites or appends unconditionally.
  void Set(const std::string& name, const Value& value);

  // Merges `other` into this binding; returns false on any conflicting
  // variable (this binding is left partially merged in that case, so callers
  // should treat `false` as a hard error).
  bool Merge(const Binding& other);

  // Rebuilds this binding as {names[i] -> values[i]} for i in
  // [0, names.size()). Storage is reused: when the binding already holds
  // names.size() entries, they are assumed to carry these exact names in
  // this exact order and only the values are overwritten — the contract
  // under which the match enumerator re-materializes its scratch binding
  // from the compiled rule plan's slots on every match.
  void AssignSlots(const std::vector<std::string>& names, const Value* values);

  // Drops every entry past the first `n` (no-op when n >= size()). Entries
  // are append-ordered, so this is the undo-trail primitive the match
  // enumerator backtracks with: remember size(), bind deeper atoms, then
  // truncate back.
  void Truncate(size_t n) {
    if (n < entries_.size()) {
      entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(n),
                     entries_.end());
    }
  }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  const std::vector<std::pair<std::string, Value>>& entries() const {
    return entries_;
  }

  // Content-based footprint (see Value::ApproxBytes): name lengths plus
  // value bytes plus the per-entry inline pair, independent of vector or
  // string capacities.
  int64_t ApproxBytes() const {
    int64_t total = 0;
    for (const auto& [name, value] : entries_) {
      total += static_cast<int64_t>(sizeof(std::pair<std::string, Value>)) +
               static_cast<int64_t>(name.size()) + value.ApproxBytes() -
               static_cast<int64_t>(sizeof(Value));
    }
    return total;
  }

  // "{x=\"A\", s=0.6}" — for debugging and chase-graph dumps.
  std::string ToString() const;

 private:
  std::vector<std::pair<std::string, Value>> entries_;
};

}  // namespace templex

#endif  // TEMPLEX_DATALOG_BINDING_H_
