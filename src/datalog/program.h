#ifndef TEMPLEX_DATALOG_PROGRAM_H_
#define TEMPLEX_DATALOG_PROGRAM_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/rule.h"

namespace templex {

// A Vadalog program Σ: an ordered set of rules plus the goal ("Ans")
// predicate of the reasoning task Q = (Σ, Ans).
class Program {
 public:
  Program() = default;
  Program(std::vector<Rule> rules, std::string goal_predicate)
      : rules_(std::move(rules)), goal_predicate_(std::move(goal_predicate)) {}

  const std::vector<Rule>& rules() const { return rules_; }
  const std::string& goal_predicate() const { return goal_predicate_; }
  void set_goal_predicate(std::string goal) { goal_predicate_ = std::move(goal); }

  void AddRule(Rule rule) { rules_.push_back(std::move(rule)); }

  // Returns the rule with the given label, or nullptr.
  const Rule* FindRule(const std::string& label) const;

  // Index of the rule with the given label, or -1.
  int RuleIndex(const std::string& label) const;

  // All predicates appearing anywhere, in first-appearance order.
  std::vector<std::string> Predicates() const;

  // A predicate is intensional (IDB) iff it occurs in at least one head.
  bool IsIntensional(const std::string& predicate) const;
  bool IsExtensional(const std::string& predicate) const {
    return !IsIntensional(predicate);
  }

  std::vector<std::string> IntensionalPredicates() const;
  std::vector<std::string> ExtensionalPredicates() const;

  // Validates every rule, label uniqueness, arity consistency across all
  // occurrences of each predicate, and that the goal predicate (if set)
  // appears in the program.
  Status Validate() const;

  // Rule-per-line listing.
  std::string ToString() const;

 private:
  std::vector<Rule> rules_;
  std::string goal_predicate_;
};

}  // namespace templex

#endif  // TEMPLEX_DATALOG_PROGRAM_H_
