#ifndef TEMPLEX_DATALOG_PARSER_H_
#define TEMPLEX_DATALOG_PARSER_H_

#include <string>

#include "common/status.h"
#include "datalog/program.h"
#include "engine/fact.h"

namespace templex {

// Parses a Vadalog-subset program. Surface syntax:
//
//   % Stress test (Example 4.3)
//   @goal Default.
//   alpha: Shock(f, s), HasCapital(f, p1), s > p1 -> Default(f).
//   beta:  Default(d), Debts(d, c, v), e = sum(v) -> Risk(c, e).
//   gamma: HasCapital(c, p2), Risk(c, e), p2 < e -> Default(c).
//
// - rules are `label: body -> head.`; the label is optional (auto "r<i>");
// - body elements: atoms `P(t, ...)`, comparisons `x > y`, assignments
//   `p = s1 * s2`, and aggregations `e = sum(v)` / `ts = sum(s, [z])`;
// - terms: identifiers are variables, quoted strings and numbers constants;
// - `@goal P.` sets the goal predicate of the reasoning task;
// - `%` starts a line comment.
//
// The returned Program is validated (Program::Validate).
Result<Program> ParseProgram(const std::string& source);

// Parses a single rule body+head line without a trailing directive; mostly
// for tests and REPL-style use.
Result<Rule> ParseRule(const std::string& source);

// Parses a ground fact literal, e.g. `Default("C")`, `Own(A, B, 0.6)` or
// `Risk(C, 11, "long")`. For command-line convenience, bare identifiers in
// argument position are string constants (`Default(C)` ≡ `Default("C")`).
// The trailing '.' is optional.
Result<Fact> ParseFactLiteral(const std::string& source);

}  // namespace templex

#endif  // TEMPLEX_DATALOG_PARSER_H_
