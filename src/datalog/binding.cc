#include "datalog/binding.h"

namespace templex {

std::optional<Value> Binding::Get(std::string_view name) const {
  const Value* v = Find(name);
  if (v == nullptr) return std::nullopt;
  return *v;
}

const Value* Binding::Find(std::string_view name) const {
  for (const auto& [n, v] : entries_) {
    if (n == name) return &v;
  }
  return nullptr;
}

bool Binding::Bind(const std::string& name, const Value& value) {
  for (const auto& [n, v] : entries_) {
    if (n == name) return v == value;
  }
  entries_.emplace_back(name, value);
  return true;
}

void Binding::Set(const std::string& name, const Value& value) {
  for (auto& [n, v] : entries_) {
    if (n == name) {
      v = value;
      return;
    }
  }
  entries_.emplace_back(name, value);
}

void Binding::AssignSlots(const std::vector<std::string>& names,
                          const Value* values) {
  if (entries_.size() == names.size()) {
    for (size_t i = 0; i < entries_.size(); ++i) {
      entries_[i].second = values[i];
    }
    return;
  }
  entries_.clear();
  entries_.reserve(names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    entries_.emplace_back(names[i], values[i]);
  }
}

bool Binding::Merge(const Binding& other) {
  for (const auto& [n, v] : other.entries_) {
    if (!Bind(n, v)) return false;
  }
  return true;
}

std::string Binding::ToString() const {
  std::string result = "{";
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) result += ", ";
    result += entries_[i].first;
    result += "=";
    result += entries_[i].second.ToString();
  }
  result += "}";
  return result;
}

}  // namespace templex
