#include "datalog/binding.h"

namespace templex {

std::optional<Value> Binding::Get(std::string_view name) const {
  for (const auto& [n, v] : entries_) {
    if (n == name) return v;
  }
  return std::nullopt;
}

bool Binding::Bind(const std::string& name, const Value& value) {
  for (const auto& [n, v] : entries_) {
    if (n == name) return v == value;
  }
  entries_.emplace_back(name, value);
  return true;
}

void Binding::Set(const std::string& name, const Value& value) {
  for (auto& [n, v] : entries_) {
    if (n == name) {
      v = value;
      return;
    }
  }
  entries_.emplace_back(name, value);
}

bool Binding::Merge(const Binding& other) {
  for (const auto& [n, v] : other.entries_) {
    if (!Bind(n, v)) return false;
  }
  return true;
}

std::string Binding::ToString() const {
  std::string result = "{";
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) result += ", ";
    result += entries_[i].first;
    result += "=";
    result += entries_[i].second.ToString();
  }
  result += "}";
  return result;
}

}  // namespace templex
