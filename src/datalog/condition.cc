#include "datalog/condition.h"

#include <algorithm>

namespace templex {

std::unique_ptr<Expr> Expr::Constant(Value value) {
  auto e = std::unique_ptr<Expr>(new Expr());
  e->term_ = Term::Constant(std::move(value));
  return e;
}

std::unique_ptr<Expr> Expr::Variable(std::string name) {
  auto e = std::unique_ptr<Expr>(new Expr());
  e->term_ = Term::Variable(std::move(name));
  return e;
}

std::unique_ptr<Expr> Expr::Binary(Op op, std::unique_ptr<Expr> lhs,
                                   std::unique_ptr<Expr> rhs) {
  auto e = std::unique_ptr<Expr>(new Expr());
  e->op_ = op;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

std::unique_ptr<Expr> Expr::Clone() const {
  if (is_leaf()) {
    auto e = std::unique_ptr<Expr>(new Expr());
    e->term_ = term_;
    return e;
  }
  return Binary(op_, lhs_->Clone(), rhs_->Clone());
}

Result<Value> Expr::Eval(const Binding& binding) const {
  if (is_leaf()) {
    if (term_.is_constant()) return term_.constant_value();
    const Value* v = binding.Find(term_.variable_name());
    if (v == nullptr) {
      return Status::InvalidArgument("unbound variable in expression: " +
                                     term_.variable_name());
    }
    return *v;
  }
  Result<Value> lhs = lhs_->Eval(binding);
  if (!lhs.ok()) return lhs.status();
  Result<Value> rhs = rhs_->Eval(binding);
  if (!rhs.ok()) return rhs.status();
  if (!lhs.value().is_numeric() || !rhs.value().is_numeric()) {
    return Status::InvalidArgument("arithmetic over non-numeric operands in " +
                                   ToString());
  }
  const double a = lhs.value().AsDouble();
  const double b = rhs.value().AsDouble();
  switch (op_) {
    case Op::kAdd:
      return Value::Double(a + b);
    case Op::kSub:
      return Value::Double(a - b);
    case Op::kMul:
      return Value::Double(a * b);
    case Op::kDiv:
      if (b == 0.0) {
        return Status::InvalidArgument("division by zero in " + ToString());
      }
      return Value::Double(a / b);
  }
  return Status::Internal("unknown operator");
}

std::vector<std::string> Expr::VariableNames() const {
  std::vector<std::string> names;
  if (is_leaf()) {
    if (term_.is_variable()) names.push_back(term_.variable_name());
    return names;
  }
  for (const Expr* side : {lhs_.get(), rhs_.get()}) {
    for (std::string& n : side->VariableNames()) {
      if (std::find(names.begin(), names.end(), n) == names.end()) {
        names.push_back(std::move(n));
      }
    }
  }
  return names;
}

std::string Expr::ToString() const {
  if (is_leaf()) return term_.ToString();
  const char* op_text = "+";
  switch (op_) {
    case Op::kAdd:
      op_text = "+";
      break;
    case Op::kSub:
      op_text = "-";
      break;
    case Op::kMul:
      op_text = "*";
      break;
    case Op::kDiv:
      op_text = "/";
      break;
  }
  return "(" + lhs_->ToString() + " " + op_text + " " + rhs_->ToString() + ")";
}

const char* ComparatorToString(Comparator cmp) {
  switch (cmp) {
    case Comparator::kLt:
      return "<";
    case Comparator::kLe:
      return "<=";
    case Comparator::kGt:
      return ">";
    case Comparator::kGe:
      return ">=";
    case Comparator::kEq:
      return "==";
    case Comparator::kNe:
      return "!=";
  }
  return "?";
}

Result<bool> Condition::Eval(const Binding& binding) const {
  Result<Value> l = lhs->Eval(binding);
  if (!l.ok()) return l.status();
  Result<Value> r = rhs->Eval(binding);
  if (!r.ok()) return r.status();
  const Value& a = l.value();
  const Value& b = r.value();
  if (cmp == Comparator::kEq) return a == b;
  if (cmp == Comparator::kNe) return a != b;
  if (!a.is_numeric() || !b.is_numeric()) {
    return Status::InvalidArgument("ordered comparison over non-numerics in " +
                                   ToString());
  }
  const double x = a.AsDouble();
  const double y = b.AsDouble();
  switch (cmp) {
    case Comparator::kLt:
      return x < y;
    case Comparator::kLe:
      return x <= y;
    case Comparator::kGt:
      return x > y;
    case Comparator::kGe:
      return x >= y;
    default:
      return Status::Internal("unreachable comparator");
  }
}

std::vector<std::string> Condition::VariableNames() const {
  std::vector<std::string> names = lhs->VariableNames();
  for (std::string& n : rhs->VariableNames()) {
    if (std::find(names.begin(), names.end(), n) == names.end()) {
      names.push_back(std::move(n));
    }
  }
  return names;
}

std::string Condition::ToString() const {
  return lhs->ToString() + " " + ComparatorToString(cmp) + " " +
         rhs->ToString();
}

std::string Assignment::ToString() const {
  return variable + " = " + expr->ToString();
}

}  // namespace templex
