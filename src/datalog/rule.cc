#include "datalog/rule.h"

#include <algorithm>

namespace templex {

namespace {

void AppendUnique(std::vector<std::string>& into,
                  const std::vector<std::string>& names) {
  for (const std::string& n : names) {
    if (std::find(into.begin(), into.end(), n) == into.end()) {
      into.push_back(n);
    }
  }
}

bool Contains(const std::vector<std::string>& names, const std::string& n) {
  return std::find(names.begin(), names.end(), n) != names.end();
}

}  // namespace

std::vector<std::string> Rule::BodyVariableNames() const {
  std::vector<std::string> names;
  for (const Atom& atom : body) AppendUnique(names, atom.VariableNames());
  return names;
}

std::vector<std::string> Rule::HeadVariableNames() const {
  return head.VariableNames();
}

std::vector<std::string> Rule::AllBoundVariableNames() const {
  std::vector<std::string> names = BodyVariableNames();
  for (const Assignment& a : assignments) {
    if (!Contains(names, a.variable)) names.push_back(a.variable);
  }
  if (aggregate.has_value() && !Contains(names, aggregate->result_variable)) {
    names.push_back(aggregate->result_variable);
  }
  return names;
}

std::vector<std::string> Rule::ExistentialVariableNames() const {
  std::vector<std::string> bound = AllBoundVariableNames();
  std::vector<std::string> result;
  for (const std::string& v : HeadVariableNames()) {
    if (!Contains(bound, v)) result.push_back(v);
  }
  return result;
}

std::vector<const Condition*> Rule::PreAggregateConditions() const {
  std::vector<const Condition*> result;
  for (const Condition& c : conditions) {
    if (!aggregate.has_value() ||
        !Contains(c.VariableNames(), aggregate->result_variable)) {
      result.push_back(&c);
    }
  }
  return result;
}

std::vector<const Condition*> Rule::PostAggregateConditions() const {
  std::vector<const Condition*> result;
  if (!aggregate.has_value()) return result;
  for (const Condition& c : conditions) {
    if (Contains(c.VariableNames(), aggregate->result_variable)) {
      result.push_back(&c);
    }
  }
  return result;
}

Status Rule::Validate() const {
  if (body.empty()) {
    return Status::InvalidArgument("rule '" + label + "' has an empty body");
  }
  if (is_constraint) {
    if (!head.predicate.empty()) {
      return Status::InvalidArgument("constraint '" + label +
                                     "' must not have a head");
    }
    if (aggregate.has_value()) {
      return Status::InvalidArgument("constraint '" + label +
                                     "' must not aggregate");
    }
  } else if (head.predicate.empty()) {
    return Status::InvalidArgument("rule '" + label + "' has no head");
  }
  std::vector<std::string> bound = BodyVariableNames();
  for (const Assignment& a : assignments) {
    if (Contains(bound, a.variable)) {
      return Status::InvalidArgument("rule '" + label + "': assigned variable '" +
                                     a.variable + "' is already body-bound");
    }
    for (const std::string& v : a.expr->VariableNames()) {
      if (!Contains(bound, v)) {
        return Status::InvalidArgument(
            "rule '" + label + "': assignment uses unbound variable '" + v +
            "'");
      }
    }
    bound.push_back(a.variable);
  }
  if (aggregate.has_value()) {
    const Aggregate& agg = *aggregate;
    if (!Contains(bound, agg.input_variable)) {
      return Status::InvalidArgument("rule '" + label +
                                     "': aggregate input variable '" +
                                     agg.input_variable + "' is unbound");
    }
    if (Contains(bound, agg.result_variable)) {
      return Status::InvalidArgument("rule '" + label +
                                     "': aggregate result variable '" +
                                     agg.result_variable + "' is already bound");
    }
    for (const std::string& k : agg.contributor_keys) {
      if (!Contains(bound, k)) {
        return Status::InvalidArgument("rule '" + label +
                                       "': aggregate contributor key '" + k +
                                       "' is unbound");
      }
    }
    bound.push_back(agg.result_variable);
  }
  for (const Condition& c : conditions) {
    for (const std::string& v : c.VariableNames()) {
      if (!Contains(bound, v)) {
        return Status::InvalidArgument("rule '" + label +
                                       "': condition uses unbound variable '" +
                                       v + "'");
      }
    }
  }
  // Safety for negation-as-failure: negated atoms only test, never bind.
  std::vector<std::string> positive = BodyVariableNames();
  for (const Atom& atom : negative_body) {
    for (const std::string& v : atom.VariableNames()) {
      if (!Contains(positive, v)) {
        return Status::InvalidArgument(
            "rule '" + label + "': variable '" + v +
            "' of negated atom " + atom.ToString() +
            " is not bound by the positive body");
      }
    }
  }
  return Status::OK();
}

std::string Rule::ToString() const {
  std::string result;
  if (!label.empty()) {
    result += label;
    result += ": ";
  }
  for (size_t i = 0; i < body.size(); ++i) {
    if (i > 0) result += ", ";
    result += body[i].ToString();
  }
  for (const Atom& atom : negative_body) {
    result += ", not ";
    result += atom.ToString();
  }
  for (const Assignment& a : assignments) {
    result += ", ";
    result += a.ToString();
  }
  if (aggregate.has_value()) {
    result += ", ";
    result += aggregate->ToString();
  }
  for (const Condition& c : conditions) {
    result += ", ";
    result += c.ToString();
  }
  result += " -> ";
  result += is_constraint ? "!" : head.ToString();
  result += ".";
  return result;
}

}  // namespace templex
