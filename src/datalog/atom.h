#ifndef TEMPLEX_DATALOG_ATOM_H_
#define TEMPLEX_DATALOG_ATOM_H_

#include <string>
#include <vector>

#include "datalog/term.h"

namespace templex {

// An atom R(t1, ..., tn) over a predicate R with terms ti.
struct Atom {
  std::string predicate;
  std::vector<Term> terms;

  Atom() = default;
  Atom(std::string pred, std::vector<Term> ts)
      : predicate(std::move(pred)), terms(std::move(ts)) {}

  int arity() const { return static_cast<int>(terms.size()); }

  // Names of the variables occurring in this atom, in positional order,
  // without duplicates.
  std::vector<std::string> VariableNames() const;

  bool operator==(const Atom& other) const {
    return predicate == other.predicate && terms == other.terms;
  }

  // "R(x, 0.5, \"long\")"
  std::string ToString() const;
};

}  // namespace templex

#endif  // TEMPLEX_DATALOG_ATOM_H_
