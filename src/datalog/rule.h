#ifndef TEMPLEX_DATALOG_RULE_H_
#define TEMPLEX_DATALOG_RULE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/aggregate.h"
#include "datalog/atom.h"
#include "datalog/condition.h"

namespace templex {

// A tuple-generating dependency (TGD) with the Vadalog extensions:
//
//   body_1, ..., body_n, cond_1, ..., assign_1, ..., [agg] -> head.
//
// e.g.  sigma3: Control(x,z), Own(z,y,s), ts = sum(s,[z]), ts > 0.5
//               -> Control(x,y).
//
// Head variables not bound by the body, assignments, or the aggregate are
// existential: the chase invents a labelled null for each application.
struct Rule {
  // Short name used as the edge label in the dependency graph and in
  // reasoning-path notation (α, σ1, ...). Unique within a Program.
  std::string label;

  std::vector<Atom> body;
  // Negated body atoms (`not P(x, y)`), evaluated under stratified
  // negation-as-failure: the match survives iff no fact unifies with the
  // atom. Safety requires every variable of a negated atom to be bound by
  // the positive body.
  std::vector<Atom> negative_body;
  std::vector<Condition> conditions;
  std::vector<Assignment> assignments;
  std::optional<Aggregate> aggregate;
  // The head atom; unused when `is_constraint` is true.
  Atom head;
  // A negative constraint `body -> !.` (φ(x,y) → ⊥ in the paper's §3): no
  // head is derived; any body match is reported as a violation after the
  // chase reaches fixpoint.
  bool is_constraint = false;

  bool has_aggregate() const { return aggregate.has_value(); }

  // Variables bound by matching the body atoms (positional order, no dups).
  std::vector<std::string> BodyVariableNames() const;

  // Variables of the head atom.
  std::vector<std::string> HeadVariableNames() const;

  // All variables a complete application binds: body atoms, then
  // assignments, then the aggregate result.
  std::vector<std::string> AllBoundVariableNames() const;

  // Head variables with no binder -> existential.
  std::vector<std::string> ExistentialVariableNames() const;

  // Conditions that do NOT mention the aggregate result variable; these
  // filter body matches before they contribute to the aggregate.
  std::vector<const Condition*> PreAggregateConditions() const;

  // Conditions that mention the aggregate result variable; these are
  // re-evaluated whenever the group's aggregate value changes.
  std::vector<const Condition*> PostAggregateConditions() const;

  // Structural validation: non-empty body and head, assignments only use
  // bound variables, aggregate input bound, contributor keys bound, no
  // variable both assigned and body-bound, conditions over bound variables
  // (aggregate result allowed).
  Status Validate() const;

  // "label: body, conds -> head."
  std::string ToString() const;
};

}  // namespace templex

#endif  // TEMPLEX_DATALOG_RULE_H_
