#ifndef TEMPLEX_DATALOG_PRINTER_H_
#define TEMPLEX_DATALOG_PRINTER_H_

#include <string>

#include "datalog/program.h"

namespace templex {

// Pretty-printing helpers used by documentation, examples and benches.

// One rule per line, labels right-padded so rule bodies align:
//   alpha : Shock(f, s), HasCapital(f, p1), s > p1 -> Default(f).
//   beta  : Default(d), Debts(d, c, v), e = sum(v) -> Risk(c, e).
std::string FormatProgramAligned(const Program& program);

// Compact set notation for a list of rule labels: "{alpha, beta, gamma}".
std::string FormatRuleLabelSet(const std::vector<std::string>& labels);

}  // namespace templex

#endif  // TEMPLEX_DATALOG_PRINTER_H_
