#include "datalog/printer.h"

#include <algorithm>

#include "common/string_util.h"

namespace templex {

std::string FormatProgramAligned(const Program& program) {
  size_t width = 0;
  for (const Rule& r : program.rules()) {
    width = std::max(width, r.label.size());
  }
  std::string result;
  for (const Rule& r : program.rules()) {
    Rule unlabeled = r;
    unlabeled.label.clear();
    std::string line = r.label;
    line.append(width - r.label.size(), ' ');
    line += " : ";
    line += unlabeled.ToString();
    result += line;
    result += "\n";
  }
  return result;
}

std::string FormatRuleLabelSet(const std::vector<std::string>& labels) {
  return "{" + Join(labels, ", ") + "}";
}

}  // namespace templex
