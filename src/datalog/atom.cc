#include "datalog/atom.h"

#include <algorithm>

namespace templex {

std::vector<std::string> Atom::VariableNames() const {
  std::vector<std::string> names;
  for (const Term& t : terms) {
    if (t.is_variable() &&
        std::find(names.begin(), names.end(), t.variable_name()) ==
            names.end()) {
      names.push_back(t.variable_name());
    }
  }
  return names;
}

std::string Atom::ToString() const {
  std::string result = predicate;
  result += "(";
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) result += ", ";
    result += terms[i].ToString();
  }
  result += ")";
  return result;
}

}  // namespace templex
