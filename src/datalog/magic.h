#ifndef TEMPLEX_DATALOG_MAGIC_H_
#define TEMPLEX_DATALOG_MAGIC_H_

#include <string>
#include <vector>

#include "datalog/program.h"
#include "datalog/value.h"
#include "engine/fact.h"

namespace templex {

// Magic-set rewriting of a program for a ground or partially-bound goal
// atom (Bancilhon et al.; the goal-directed half of VLog's QSQR/wizard
// stack cited in PAPERS.md). Given a goal pattern — a Fact whose Null
// arguments mean "free" — the rewrite specializes every rule reachable
// from the goal predicate to the adornment under which it is called
// (left-to-right sideways information passing) and guards it with a magic
// predicate whose extension is exactly the set of subqueries the goal can
// ask, seeded by the goal's own bound arguments.
//
// The rewrite is deliberately conservative. It REFUSES (rewritten=false,
// refusal_reason set) instead of producing a program whose restricted
// evaluation could disagree with the full chase:
//   - a bound goal/subgoal position holds an aggregate result variable
//     (values cannot be seeded through a monotone aggregate);
//   - a rule in the goal's dependency cone has existential head variables
//     (labeled-null identities depend on global derivation order, so a
//     restricted run could not reproduce the full chase's explanations
//     byte for byte);
//   - the rewritten program fails stratification: magic rules add
//     positive dependencies from magic predicates to body prefixes, which
//     can close a cycle through a negated atom even when the original
//     program stratifies cleanly.
// Callers treat refusal as "fall back to full materialization".
//
// Rewriting an already-rewritten program is the identity (idempotence):
// adorned heads are detected and the input is returned unchanged.
struct MagicRewriteResult {
  // True when `program` below is a usable query-restricted program; false
  // when the rewrite refused and callers must materialize instead.
  bool rewritten = false;
  std::string refusal_reason;

  // The adorned program: one specialized copy of each reachable rule per
  // adornment it is called under, guarded by magic atoms, plus the magic
  // rules that derive the guards. Constraints are dropped (they assert
  // over the full instance, not the query cone). Empty when the goal
  // predicate is purely extensional.
  Program program;

  // Seed facts for the goal's magic predicate (empty when every goal
  // argument is free — an unrestricted query needs no seed).
  std::vector<Fact> seeds;

  // Adorned name of the goal predicate, e.g. "Control@bf". Equal to the
  // original predicate when the goal is purely extensional.
  std::string goal_predicate;

  // Every (predicate, adornment) pair reached by the sideways pass, in
  // discovery order: "Control@bf", "Control@ff", ...
  std::vector<std::string> adorned_predicates;
};

// Adornment string for a goal pattern: one char per argument, 'b' for a
// bound (non-Null) argument, 'f' for a free one. "Control(\"A\", _)" -> "bf".
std::string GoalAdornment(const Fact& goal_pattern);

// "Control" + "bf" -> "Control@bf".
std::string AdornedName(const std::string& predicate,
                        const std::string& adornment);

// "Control" + "bf" -> "m@Control@bf" (the magic guard predicate, arity =
// number of 'b' positions).
std::string MagicName(const std::string& predicate,
                      const std::string& adornment);

// True when the program already carries adorned/magic predicates.
bool IsMagicRewritten(const Program& program);

MagicRewriteResult MagicRewrite(const Program& program,
                                const Fact& goal_pattern);

}  // namespace templex

#endif  // TEMPLEX_DATALOG_MAGIC_H_
