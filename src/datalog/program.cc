#include "datalog/program.h"

#include <algorithm>
#include <map>
#include <set>

namespace templex {

const Rule* Program::FindRule(const std::string& label) const {
  for (const Rule& r : rules_) {
    if (r.label == label) return &r;
  }
  return nullptr;
}

int Program::RuleIndex(const std::string& label) const {
  for (size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].label == label) return static_cast<int>(i);
  }
  return -1;
}

std::vector<std::string> Program::Predicates() const {
  std::vector<std::string> preds;
  auto add = [&preds](const std::string& p) {
    if (std::find(preds.begin(), preds.end(), p) == preds.end()) {
      preds.push_back(p);
    }
  };
  for (const Rule& r : rules_) {
    for (const Atom& a : r.body) add(a.predicate);
    for (const Atom& a : r.negative_body) add(a.predicate);
    if (!r.is_constraint) add(r.head.predicate);
  }
  return preds;
}

bool Program::IsIntensional(const std::string& predicate) const {
  for (const Rule& r : rules_) {
    if (!r.is_constraint && r.head.predicate == predicate) return true;
  }
  return false;
}

std::vector<std::string> Program::IntensionalPredicates() const {
  std::vector<std::string> result;
  for (const std::string& p : Predicates()) {
    if (IsIntensional(p)) result.push_back(p);
  }
  return result;
}

std::vector<std::string> Program::ExtensionalPredicates() const {
  std::vector<std::string> result;
  for (const std::string& p : Predicates()) {
    if (!IsIntensional(p)) result.push_back(p);
  }
  return result;
}

Status Program::Validate() const {
  std::set<std::string> labels;
  std::map<std::string, int> arities;
  for (const Rule& r : rules_) {
    TEMPLEX_RETURN_IF_ERROR(r.Validate());
    if (!r.label.empty() && !labels.insert(r.label).second) {
      return Status::InvalidArgument("duplicate rule label '" + r.label + "'");
    }
    auto check_arity = [&arities](const Atom& atom) -> Status {
      auto [it, inserted] = arities.emplace(atom.predicate, atom.arity());
      if (!inserted && it->second != atom.arity()) {
        return Status::InvalidArgument(
            "predicate '" + atom.predicate + "' used with arities " +
            std::to_string(it->second) + " and " + std::to_string(atom.arity()));
      }
      return Status::OK();
    };
    for (const Atom& a : r.body) TEMPLEX_RETURN_IF_ERROR(check_arity(a));
    for (const Atom& a : r.negative_body) {
      TEMPLEX_RETURN_IF_ERROR(check_arity(a));
    }
    if (!r.is_constraint) TEMPLEX_RETURN_IF_ERROR(check_arity(r.head));
  }
  if (!goal_predicate_.empty()) {
    std::vector<std::string> preds = Predicates();
    if (std::find(preds.begin(), preds.end(), goal_predicate_) ==
        preds.end()) {
      return Status::InvalidArgument("goal predicate '" + goal_predicate_ +
                                     "' does not appear in the program");
    }
  }
  return Status::OK();
}

std::string Program::ToString() const {
  std::string result;
  for (const Rule& r : rules_) {
    result += r.ToString();
    result += "\n";
  }
  return result;
}

}  // namespace templex
