#include "datalog/aggregate.h"

#include "common/string_util.h"

namespace templex {

const char* AggregateFunctionToString(AggregateFunction fn) {
  switch (fn) {
    case AggregateFunction::kSum:
      return "sum";
    case AggregateFunction::kProd:
      return "prod";
    case AggregateFunction::kMin:
      return "min";
    case AggregateFunction::kMax:
      return "max";
    case AggregateFunction::kCount:
      return "count";
  }
  return "?";
}

std::string Aggregate::ToString() const {
  std::string result = result_variable;
  result += " = ";
  result += AggregateFunctionToString(function);
  result += "(";
  result += input_variable;
  if (!contributor_keys.empty()) {
    result += ", [";
    result += Join(contributor_keys, ", ");
    result += "]";
  }
  result += ")";
  return result;
}

}  // namespace templex
