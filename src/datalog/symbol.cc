#include "datalog/symbol.h"

namespace templex {

SymbolTable::SymbolTable(const SymbolTable& other) {
  for (const std::string& name : other.names_) Intern(name);
}

SymbolTable& SymbolTable::operator=(const SymbolTable& other) {
  if (this == &other) return *this;
  names_.clear();
  ids_.clear();
  for (const std::string& name : other.names_) Intern(name);
  return *this;
}

Symbol SymbolTable::Intern(std::string_view name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const Symbol symbol = static_cast<Symbol>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(std::string_view(names_.back()), symbol);
  return symbol;
}

Symbol SymbolTable::Lookup(std::string_view name) const {
  auto it = ids_.find(name);
  return it == ids_.end() ? kInvalidSymbol : it->second;
}

}  // namespace templex
