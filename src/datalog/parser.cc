#include "datalog/parser.h"

#include <utility>

#include "datalog/lexer.h"

namespace templex {

namespace {

// Aggregate function names recognized after `var =`.
bool LookupAggregateFunction(const std::string& name, AggregateFunction* fn) {
  if (name == "sum") {
    *fn = AggregateFunction::kSum;
  } else if (name == "prod") {
    *fn = AggregateFunction::kProd;
  } else if (name == "min") {
    *fn = AggregateFunction::kMin;
  } else if (name == "max") {
    *fn = AggregateFunction::kMax;
  } else if (name == "count") {
    *fn = AggregateFunction::kCount;
  } else {
    return false;
  }
  return true;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> ParseProgram() {
    Program program;
    int auto_label = 0;
    while (!Check(TokenKind::kEnd)) {
      if (Check(TokenKind::kAt)) {
        TEMPLEX_RETURN_IF_ERROR(ParseDirective(&program));
        continue;
      }
      Result<Rule> rule = ParseOneRule();
      if (!rule.ok()) return rule.status();
      Rule r = std::move(rule).value();
      if (r.label.empty()) {
        r.label = "r" + std::to_string(++auto_label);
      }
      program.AddRule(std::move(r));
    }
    TEMPLEX_RETURN_IF_ERROR(program.Validate());
    return program;
  }

  Result<Rule> ParseSingleRule() {
    Result<Rule> rule = ParseOneRule();
    if (!rule.ok()) return rule.status();
    if (!Check(TokenKind::kEnd)) {
      return Error("trailing input after rule");
    }
    return rule;
  }

 private:
  const Token& Peek(int offset = 0) const {
    size_t i = pos_ + static_cast<size_t>(offset);
    if (i >= tokens_.size()) return tokens_.back();
    return tokens_[i];
  }

  bool Check(TokenKind kind, int offset = 0) const {
    return Peek(offset).kind == kind;
  }

  const Token& Advance() { return tokens_[pos_++]; }

  bool Match(TokenKind kind) {
    if (!Check(kind)) return false;
    ++pos_;
    return true;
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("line " + std::to_string(Peek().line) +
                                   ": " + message + " (got " +
                                   TokenKindToString(Peek().kind) + ")");
  }

  Status Expect(TokenKind kind) {
    if (!Match(kind)) {
      return Error(std::string("expected ") + TokenKindToString(kind));
    }
    return Status::OK();
  }

  // `@goal Predicate.`
  Status ParseDirective(Program* program) {
    TEMPLEX_RETURN_IF_ERROR(Expect(TokenKind::kAt));
    if (!Check(TokenKind::kIdent)) return Error("expected directive name");
    std::string name = Advance().text;
    if (name != "goal") {
      return Status::InvalidArgument("unknown directive '@" + name + "'");
    }
    if (!Check(TokenKind::kIdent)) return Error("expected goal predicate");
    program->set_goal_predicate(Advance().text);
    return Expect(TokenKind::kDot);
  }

  Result<Rule> ParseOneRule() {
    Rule rule;
    // Optional label: IDENT ':' (but not IDENT '(' which is an atom).
    if (Check(TokenKind::kIdent) && Check(TokenKind::kColon, 1)) {
      rule.label = Advance().text;
      Advance();  // ':'
    }
    // Body elements until '->'.
    while (true) {
      TEMPLEX_RETURN_IF_ERROR(ParseBodyElement(&rule));
      if (Match(TokenKind::kComma)) continue;
      break;
    }
    TEMPLEX_RETURN_IF_ERROR(Expect(TokenKind::kArrow));
    if (Match(TokenKind::kBang)) {
      rule.is_constraint = true;  // `body -> !.`
    } else {
      Result<Atom> head = ParseAtom();
      if (!head.ok()) return head.status();
      rule.head = std::move(head).value();
    }
    TEMPLEX_RETURN_IF_ERROR(Expect(TokenKind::kDot));
    return rule;
  }

  Status ParseBodyElement(Rule* rule) {
    // Negated atom: 'not' IDENT '('.
    if (Check(TokenKind::kIdent) && Peek().text == "not" &&
        Check(TokenKind::kIdent, 1) && Check(TokenKind::kLParen, 2)) {
      Advance();  // 'not'
      Result<Atom> atom = ParseAtom();
      if (!atom.ok()) return atom.status();
      rule->negative_body.push_back(std::move(atom).value());
      return Status::OK();
    }
    // Atom: IDENT '('.
    if (Check(TokenKind::kIdent) && Check(TokenKind::kLParen, 1)) {
      Result<Atom> atom = ParseAtom();
      if (!atom.ok()) return atom.status();
      rule->body.push_back(std::move(atom).value());
      return Status::OK();
    }
    // Aggregate or assignment: IDENT '='.
    if (Check(TokenKind::kIdent) && Check(TokenKind::kAssign, 1)) {
      std::string result_var = Advance().text;
      Advance();  // '='
      AggregateFunction fn;
      if (Check(TokenKind::kIdent) && Check(TokenKind::kLParen, 1) &&
          LookupAggregateFunction(Peek().text, &fn)) {
        if (rule->aggregate.has_value()) {
          return Error("at most one aggregate per rule is supported");
        }
        Advance();  // function name
        Advance();  // '('
        if (!Check(TokenKind::kIdent)) {
          return Error("expected aggregate input variable");
        }
        Aggregate agg;
        agg.result_variable = std::move(result_var);
        agg.function = fn;
        agg.input_variable = Advance().text;
        if (Match(TokenKind::kComma)) {
          TEMPLEX_RETURN_IF_ERROR(Expect(TokenKind::kLBracket));
          while (true) {
            if (!Check(TokenKind::kIdent)) {
              return Error("expected contributor key variable");
            }
            agg.contributor_keys.push_back(Advance().text);
            if (Match(TokenKind::kComma)) continue;
            break;
          }
          TEMPLEX_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
        }
        TEMPLEX_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        rule->aggregate = std::move(agg);
        return Status::OK();
      }
      // Plain assignment.
      Result<std::unique_ptr<Expr>> expr = ParseExpr();
      if (!expr.ok()) return expr.status();
      rule->assignments.emplace_back(std::move(result_var),
                                     std::move(expr).value());
      return Status::OK();
    }
    // Condition: expr <cmp> expr.
    Result<std::unique_ptr<Expr>> lhs = ParseExpr();
    if (!lhs.ok()) return lhs.status();
    Comparator cmp;
    if (Match(TokenKind::kLt)) {
      cmp = Comparator::kLt;
    } else if (Match(TokenKind::kLe)) {
      cmp = Comparator::kLe;
    } else if (Match(TokenKind::kGt)) {
      cmp = Comparator::kGt;
    } else if (Match(TokenKind::kGe)) {
      cmp = Comparator::kGe;
    } else if (Match(TokenKind::kEq)) {
      cmp = Comparator::kEq;
    } else if (Match(TokenKind::kNe)) {
      cmp = Comparator::kNe;
    } else {
      return Error("expected comparison operator");
    }
    Result<std::unique_ptr<Expr>> rhs = ParseExpr();
    if (!rhs.ok()) return rhs.status();
    rule->conditions.emplace_back(std::move(lhs).value(), cmp,
                                  std::move(rhs).value());
    return Status::OK();
  }

  Result<Atom> ParseAtom() {
    if (!Check(TokenKind::kIdent)) return Error("expected predicate name");
    Atom atom;
    atom.predicate = Advance().text;
    TEMPLEX_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    if (!Match(TokenKind::kRParen)) {
      while (true) {
        Result<Term> term = ParseTerm();
        if (!term.ok()) return term.status();
        atom.terms.push_back(std::move(term).value());
        if (Match(TokenKind::kComma)) continue;
        break;
      }
      TEMPLEX_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    }
    return atom;
  }

  Result<Term> ParseTerm() {
    if (Check(TokenKind::kIdent)) {
      return Term::Variable(Advance().text);
    }
    if (Check(TokenKind::kString)) {
      return Term::Constant(Value::String(Advance().text));
    }
    bool negate = Match(TokenKind::kMinus);
    if (Check(TokenKind::kNumber)) {
      const Token& t = Advance();
      double v = negate ? -t.number : t.number;
      if (t.number_is_int) {
        return Term::Constant(Value::Int(static_cast<int64_t>(v)));
      }
      return Term::Constant(Value::Double(v));
    }
    return Error("expected term");
  }

  // expr := mul (('+'|'-') mul)*
  Result<std::unique_ptr<Expr>> ParseExpr() {
    Result<std::unique_ptr<Expr>> lhs = ParseMul();
    if (!lhs.ok()) return lhs.status();
    std::unique_ptr<Expr> node = std::move(lhs).value();
    while (Check(TokenKind::kPlus) || Check(TokenKind::kMinus)) {
      Expr::Op op = Match(TokenKind::kPlus) ? Expr::Op::kAdd
                                            : (Advance(), Expr::Op::kSub);
      Result<std::unique_ptr<Expr>> rhs = ParseMul();
      if (!rhs.ok()) return rhs.status();
      node = Expr::Binary(op, std::move(node), std::move(rhs).value());
    }
    return node;
  }

  // mul := primary (('*'|'/') primary)*
  Result<std::unique_ptr<Expr>> ParseMul() {
    Result<std::unique_ptr<Expr>> lhs = ParsePrimary();
    if (!lhs.ok()) return lhs.status();
    std::unique_ptr<Expr> node = std::move(lhs).value();
    while (Check(TokenKind::kStar) || Check(TokenKind::kSlash)) {
      Expr::Op op = Match(TokenKind::kStar) ? Expr::Op::kMul
                                            : (Advance(), Expr::Op::kDiv);
      Result<std::unique_ptr<Expr>> rhs = ParsePrimary();
      if (!rhs.ok()) return rhs.status();
      node = Expr::Binary(op, std::move(node), std::move(rhs).value());
    }
    return node;
  }

  // primary := NUMBER | STRING | IDENT | '(' expr ')' | '-' primary
  Result<std::unique_ptr<Expr>> ParsePrimary() {
    if (Match(TokenKind::kMinus)) {
      Result<std::unique_ptr<Expr>> inner = ParsePrimary();
      if (!inner.ok()) return inner.status();
      return Expr::Binary(Expr::Op::kSub, Expr::Constant(Value::Int(0)),
                          std::move(inner).value());
    }
    if (Check(TokenKind::kNumber)) {
      const Token& t = Advance();
      if (t.number_is_int) {
        return Expr::Constant(Value::Int(static_cast<int64_t>(t.number)));
      }
      return Expr::Constant(Value::Double(t.number));
    }
    if (Check(TokenKind::kString)) {
      return Expr::Constant(Value::String(Advance().text));
    }
    if (Check(TokenKind::kIdent)) {
      return Expr::Variable(Advance().text);
    }
    if (Match(TokenKind::kLParen)) {
      Result<std::unique_ptr<Expr>> inner = ParseExpr();
      if (!inner.ok()) return inner.status();
      TEMPLEX_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return inner;
    }
    return Error("expected expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Program> ParseProgram(const std::string& source) {
  Result<std::vector<Token>> tokens = Tokenize(source);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.ParseProgram();
}

Result<Rule> ParseRule(const std::string& source) {
  Result<std::vector<Token>> tokens = Tokenize(source);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.ParseSingleRule();
}

Result<Fact> ParseFactLiteral(const std::string& source) {
  Result<std::vector<Token>> tokens = Tokenize(source);
  if (!tokens.ok()) return tokens.status();
  const std::vector<Token>& ts = tokens.value();
  size_t i = 0;
  if (ts[i].kind != TokenKind::kIdent) {
    return Status::InvalidArgument("fact literal must start with a predicate");
  }
  Fact fact;
  fact.predicate = ts[i++].text;
  if (ts[i].kind != TokenKind::kLParen) {
    return Status::InvalidArgument("expected '(' after predicate");
  }
  ++i;
  if (ts[i].kind != TokenKind::kRParen) {
    while (true) {
      const Token& t = ts[i];
      if (t.kind == TokenKind::kIdent || t.kind == TokenKind::kString) {
        fact.args.push_back(Value::String(t.text));
        ++i;
      } else if (t.kind == TokenKind::kNumber ||
                 t.kind == TokenKind::kMinus) {
        double sign = 1.0;
        if (t.kind == TokenKind::kMinus) {
          sign = -1.0;
          ++i;
          if (ts[i].kind != TokenKind::kNumber) {
            return Status::InvalidArgument("expected number after '-'");
          }
        }
        const Token& n = ts[i++];
        if (n.number_is_int) {
          fact.args.push_back(
              Value::Int(static_cast<int64_t>(sign * n.number)));
        } else {
          fact.args.push_back(Value::Double(sign * n.number));
        }
      } else {
        return Status::InvalidArgument("expected constant argument");
      }
      if (ts[i].kind == TokenKind::kComma) {
        ++i;
        continue;
      }
      break;
    }
    if (ts[i].kind != TokenKind::kRParen) {
      return Status::InvalidArgument("expected ')' closing the fact");
    }
  }
  ++i;  // ')'
  if (ts[i].kind == TokenKind::kDot) ++i;
  if (ts[i].kind != TokenKind::kEnd) {
    return Status::InvalidArgument("trailing input after fact literal");
  }
  return fact;
}

}  // namespace templex
