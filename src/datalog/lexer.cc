#include "datalog/lexer.h"

#include <cctype>
#include <cstdlib>

namespace templex {

const char* TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kString:
      return "string";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kArrow:
      return "'->'";
    case TokenKind::kAt:
      return "'@'";
    case TokenKind::kBang:
      return "'!'";
    case TokenKind::kAssign:
      return "'='";
    case TokenKind::kEq:
      return "'=='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "?";
}

Result<std::vector<Token>> Tokenize(const std::string& source) {
  std::vector<Token> tokens;
  int line = 1;
  size_t i = 0;
  const size_t n = source.size();

  auto push = [&tokens, &line](TokenKind kind, std::string text = "") {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line;
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '%') {  // line comment
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])) ||
                       source[i] == '_')) {
        ++i;
      }
      push(TokenKind::kIdent, source.substr(start, i - start));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_int = true;
      while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) ++i;
      // A '.' is a decimal point only when followed by a digit; otherwise it
      // terminates the rule ("s > 5." parses as number 5 then dot).
      if (i + 1 < n && source[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(source[i + 1]))) {
        is_int = false;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) {
          ++i;
        }
      }
      Token t;
      t.kind = TokenKind::kNumber;
      t.text = source.substr(start, i - start);
      t.number = std::strtod(t.text.c_str(), nullptr);
      t.number_is_int = is_int;
      t.line = line;
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '"') {
      size_t start = ++i;
      while (i < n && source[i] != '"') {
        if (source[i] == '\n') ++line;
        ++i;
      }
      if (i >= n) {
        return Status::InvalidArgument("line " + std::to_string(line) +
                                       ": unterminated string literal");
      }
      push(TokenKind::kString, source.substr(start, i - start));
      ++i;  // closing quote
      continue;
    }
    auto two = [&source, i, n](char a, char b) {
      return source[i] == a && i + 1 < n && source[i + 1] == b;
    };
    if (two('-', '>')) {
      push(TokenKind::kArrow);
      i += 2;
      continue;
    }
    if (two('=', '=')) {
      push(TokenKind::kEq);
      i += 2;
      continue;
    }
    if (two('!', '=')) {
      push(TokenKind::kNe);
      i += 2;
      continue;
    }
    if (two('<', '=')) {
      push(TokenKind::kLe);
      i += 2;
      continue;
    }
    if (two('>', '=')) {
      push(TokenKind::kGe);
      i += 2;
      continue;
    }
    switch (c) {
      case '(':
        push(TokenKind::kLParen);
        break;
      case ')':
        push(TokenKind::kRParen);
        break;
      case '[':
        push(TokenKind::kLBracket);
        break;
      case ']':
        push(TokenKind::kRBracket);
        break;
      case ',':
        push(TokenKind::kComma);
        break;
      case '.':
        push(TokenKind::kDot);
        break;
      case ':':
        push(TokenKind::kColon);
        break;
      case '@':
        push(TokenKind::kAt);
        break;
      case '=':
        push(TokenKind::kAssign);
        break;
      case '<':
        push(TokenKind::kLt);
        break;
      case '>':
        push(TokenKind::kGt);
        break;
      case '+':
        push(TokenKind::kPlus);
        break;
      case '-':
        push(TokenKind::kMinus);
        break;
      case '*':
        push(TokenKind::kStar);
        break;
      case '/':
        push(TokenKind::kSlash);
        break;
      case '!':
        push(TokenKind::kBang);
        break;
      default:
        return Status::InvalidArgument("line " + std::to_string(line) +
                                       ": unexpected character '" +
                                       std::string(1, c) + "'");
    }
    ++i;
  }
  push(TokenKind::kEnd);
  return tokens;
}

}  // namespace templex
