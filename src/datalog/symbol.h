#ifndef TEMPLEX_DATALOG_SYMBOL_H_
#define TEMPLEX_DATALOG_SYMBOL_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace templex {

// Dense id of an interned string. The chase hot path (candidate lookup,
// atom matching, per-predicate indexing) compares and indexes Symbols —
// one int each — instead of hashing and comparing strings; the owning
// SymbolTable resolves the id back to its string at the explain/io
// boundary.
using Symbol = int32_t;

inline constexpr Symbol kInvalidSymbol = -1;

// Interns strings into dense Symbols: the i-th distinct string interned
// gets id i. Lookups never invalidate; interning more strings never
// invalidates existing ids or `name()` references (names live in a deque).
//
// Each ChaseGraph owns one table, so symbols are only comparable within
// one graph (and its moved-from successors — ChaseEngine::Extend moves the
// base graph, table included, so ids stay stable across extensions).
class SymbolTable {
 public:
  SymbolTable() = default;

  // The id map holds views into names_; copying must rebuild it against
  // the copy's own storage. Moves keep deque nodes alive, so the default
  // member-wise move preserves the views.
  SymbolTable(const SymbolTable& other);
  SymbolTable& operator=(const SymbolTable& other);
  SymbolTable(SymbolTable&&) = default;
  SymbolTable& operator=(SymbolTable&&) = default;

  // Id of `name`, interning it first if unknown.
  Symbol Intern(std::string_view name);

  // Id of `name`, or kInvalidSymbol if it was never interned.
  Symbol Lookup(std::string_view name) const;

  // The string behind a valid symbol of this table.
  const std::string& name(Symbol symbol) const { return names_[symbol]; }

  int size() const { return static_cast<int>(names_.size()); }

 private:
  std::deque<std::string> names_;  // symbol -> string; stable addresses
  std::unordered_map<std::string_view, Symbol> ids_;  // views into names_
};

}  // namespace templex

#endif  // TEMPLEX_DATALOG_SYMBOL_H_
