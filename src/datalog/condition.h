#ifndef TEMPLEX_DATALOG_CONDITION_H_
#define TEMPLEX_DATALOG_CONDITION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/binding.h"
#include "datalog/term.h"

namespace templex {

// Arithmetic expression over terms: constants, variables, and the binary
// operators + - * / (the "expressions in rule bodies" Vadalog extension).
class Expr {
 public:
  enum class Op { kAdd, kSub, kMul, kDiv };

  static std::unique_ptr<Expr> Constant(Value value);
  static std::unique_ptr<Expr> Variable(std::string name);
  static std::unique_ptr<Expr> Binary(Op op, std::unique_ptr<Expr> lhs,
                                      std::unique_ptr<Expr> rhs);

  // Deep copy.
  std::unique_ptr<Expr> Clone() const;

  // Evaluates under `binding`. Errors on unbound variables, non-numeric
  // operands of arithmetic, and division by zero.
  Result<Value> Eval(const Binding& binding) const;

  // Variable names occurring in the expression, without duplicates.
  std::vector<std::string> VariableNames() const;

  bool is_leaf() const { return !lhs_; }
  bool is_variable_leaf() const { return is_leaf() && term_.is_variable(); }
  const Term& term() const { return term_; }
  Op op() const { return op_; }
  // Operands; only valid for binary (non-leaf) nodes.
  const Expr& lhs() const { return *lhs_; }
  const Expr& rhs() const { return *rhs_; }

  std::string ToString() const;

 private:
  Expr() = default;

  // Leaf payload (constant or variable); unused for binary nodes.
  Term term_ = Term::Constant(Value::Null());
  Op op_ = Op::kAdd;
  std::unique_ptr<Expr> lhs_;
  std::unique_ptr<Expr> rhs_;
};

// Comparison operators of the Vadalog "expressions" extension.
enum class Comparator { kLt, kLe, kGt, kGe, kEq, kNe };

const char* ComparatorToString(Comparator cmp);

// A body condition `lhs <cmp> rhs`, e.g. `s > p1`.
struct Condition {
  std::unique_ptr<Expr> lhs;
  Comparator cmp = Comparator::kEq;
  std::unique_ptr<Expr> rhs;

  Condition() = default;
  Condition(std::unique_ptr<Expr> l, Comparator c, std::unique_ptr<Expr> r)
      : lhs(std::move(l)), cmp(c), rhs(std::move(r)) {}
  Condition(const Condition& other) { *this = other; }
  Condition& operator=(const Condition& other) {
    lhs = other.lhs ? other.lhs->Clone() : nullptr;
    cmp = other.cmp;
    rhs = other.rhs ? other.rhs->Clone() : nullptr;
    return *this;
  }
  Condition(Condition&&) = default;
  Condition& operator=(Condition&&) = default;

  // Evaluates the comparison under `binding`. Numeric comparisons compare
  // numerically; kEq/kNe additionally work on strings and booleans.
  Result<bool> Eval(const Binding& binding) const;

  std::vector<std::string> VariableNames() const;

  std::string ToString() const;
};

// A body assignment `var = expr` (expr is not an aggregate), which binds a
// fresh variable, e.g. `p = s1 * s2` in the close-link application.
struct Assignment {
  std::string variable;
  std::unique_ptr<Expr> expr;

  Assignment() = default;
  Assignment(std::string var, std::unique_ptr<Expr> e)
      : variable(std::move(var)), expr(std::move(e)) {}
  Assignment(const Assignment& other) { *this = other; }
  Assignment& operator=(const Assignment& other) {
    variable = other.variable;
    expr = other.expr ? other.expr->Clone() : nullptr;
    return *this;
  }
  Assignment(Assignment&&) = default;
  Assignment& operator=(Assignment&&) = default;

  std::string ToString() const;
};

}  // namespace templex

#endif  // TEMPLEX_DATALOG_CONDITION_H_
