#ifndef TEMPLEX_IO_JSON_PARSE_H_
#define TEMPLEX_IO_JSON_PARSE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/fact.h"

namespace templex {

// A parsed JSON value (RFC 8259 subset: no surrogate-pair decoding — \u
// escapes outside the BMP keep their escaped form). Enough to import facts
// and configuration exported by other systems without a third-party
// dependency.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double d);
  static JsonValue String(std::string s);
  static JsonValue Array(std::vector<JsonValue> items);
  static JsonValue Object(std::map<std::string, JsonValue> members);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  const std::map<std::string, JsonValue>& members() const { return members_; }

  // Member lookup on objects; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::map<std::string, JsonValue> members_;
};

// Parses one JSON document.
Result<JsonValue> ParseJson(const std::string& text);

// Imports facts from JSON: either a top-level array of
// {"predicate": "...", "args": [...]} objects, or an object with a "facts"
// member holding such an array — the shape ChaseGraphToJson exports, so a
// chase graph dumped by one process can seed another's EDB. String args
// stay strings, integral numbers become Int, other numbers Double.
Result<std::vector<Fact>> FactsFromJson(const std::string& text);

}  // namespace templex

#endif  // TEMPLEX_IO_JSON_PARSE_H_
