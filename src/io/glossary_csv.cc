#include "io/glossary_csv.h"

#include "common/string_util.h"
#include "io/csv.h"

namespace templex {

Result<DomainGlossary> ParseGlossaryCsv(const std::string& content) {
  DomainGlossary glossary;
  // Rows share the fact-CSV shape: predicate, pattern, token:style fields.
  Result<std::vector<Fact>> rows = ParseFactsCsv(content);
  if (!rows.ok()) return rows.status();
  for (const Fact& row : rows.value()) {
    if (row.args.empty() || !row.args[0].is_string()) {
      return Status::InvalidArgument("glossary row for '" + row.predicate +
                                     "' lacks a pattern");
    }
    GlossaryEntry entry;
    entry.pattern = row.args[0].string_value();
    for (size_t i = 1; i < row.args.size(); ++i) {
      const std::string field = row.args[i].ToDisplayString();
      const size_t colon = field.find(':');
      const std::string token =
          colon == std::string::npos ? field : field.substr(0, colon);
      const std::string style =
          colon == std::string::npos ? "plain" : field.substr(colon + 1);
      entry.arg_tokens.push_back(Trim(token));
      if (style == "millions") {
        entry.arg_styles.push_back(NumberStyle::kMillions);
      } else if (style == "percent") {
        entry.arg_styles.push_back(NumberStyle::kPercent);
      } else if (style == "plain" || style.empty()) {
        entry.arg_styles.push_back(NumberStyle::kPlain);
      } else {
        return Status::InvalidArgument("glossary row for '" + row.predicate +
                                       "': unknown style '" + style + "'");
      }
    }
    TEMPLEX_RETURN_IF_ERROR(glossary.Register(row.predicate, entry));
  }
  return glossary;
}

std::string GlossaryToCsv(const DomainGlossary& glossary) {
  std::string csv;
  for (const std::string& predicate : glossary.predicates()) {
    const GlossaryEntry& entry = *glossary.Find(predicate);
    csv += predicate + ",\"" +
           ReplaceAll(entry.pattern, "\"", "\"\"") + "\"";
    for (size_t i = 0; i < entry.arg_tokens.size(); ++i) {
      csv += "," + entry.arg_tokens[i];
      switch (entry.arg_styles[i]) {
        case NumberStyle::kMillions:
          csv += ":millions";
          break;
        case NumberStyle::kPercent:
          csv += ":percent";
          break;
        case NumberStyle::kPlain:
          csv += ":plain";
          break;
      }
    }
    csv += "\n";
  }
  return csv;
}

Result<DomainGlossary> LoadGlossaryCsv(const std::string& path) {
  Result<std::string> content = ReadFileToString(path);
  if (!content.ok()) return content.status();
  return ParseGlossaryCsv(content.value());
}

}  // namespace templex
