#ifndef TEMPLEX_IO_CHECKPOINT_H_
#define TEMPLEX_IO_CHECKPOINT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/fs.h"
#include "common/status.h"
#include "engine/chase.h"
#include "engine/chase_graph.h"
#include "engine/node_graph.h"
#include "obs/event_log.h"
#include "obs/metrics.h"

namespace templex {

// Crash-safe persistence for a chase run (DESIGN.md §9). A checkpoint
// directory holds one committed full snapshot plus an append-only journal
// of per-round deltas for the snapshot's generation:
//
//   snapshot.tpx           full resumable state, atomically replaced
//   journal.<gen>.tpx      round deltas appended since that snapshot
//
// Both files share one binary container: an 8-byte magic, then framed
// records `[u32 payload_len][u32 crc32(payload)][payload]` with the record
// type in payload[0]. Every record is individually checksummed, so any
// torn write or bit flip is detected instead of resumed from.
//
// Commit protocol:
//   - WriteSnapshot builds `snapshot.tpx.tmp`, Sync()s it, then Rename()s
//     over `snapshot.tpx` — readers see the old or the new snapshot, never
//     a mix. Committing a snapshot starts a new journal generation and
//     retires prior-generation journals.
//   - AppendDelta appends one framed delta record to the open journal and
//     Sync()s before reporting OK, so an OK delta survives a power cut.
//
// Failure semantics on Load:
//   - corrupt snapshot (bad magic / CRC / truncated before the footer) is
//     kDataLoss: the rename committed it, so damage means real corruption
//     and resuming silently from scratch would hide it;
//   - a corrupt or truncated journal *tail* is the expected shape of a
//     crash mid-append: replay stops at the last intact record (counted in
//     checkpoint.corrupt_records) and the run resumes from there;
//   - a config-hash mismatch is kFailedPrecondition: the checkpoint is
//     intact but belongs to a different program/EDB/config.

// Position of a run at a committed round boundary, sufficient to restart
// the stratified semi-naive loop exactly where it stopped.
struct CheckpointCursor {
  // Index into the program's strata (RuleStrata order).
  int32_t stratum_index = 0;
  // Delta window start to resume the stratum with: the graph size at the
  // committed boundary, or -1 when the stratum has not run its first full
  // evaluation pass yet (empty-body rules only fire in that pass, so the
  // distinction must survive the round trip).
  FactId resume_delta = -1;
  ChaseStats stats;
  // Next fresh labelled-null id (ChaseRun::next_null_id_).
  int64_t next_null_id = 1;
};

// One recorded aggregate contribution: the monotone update stream of
// AggregateState, replayed with overwrite semantics.
struct AggregateEntryRecord {
  int32_t rule_index = -1;
  std::vector<Value> group_key;
  std::vector<Value> contributor_key;
  Value value;
  std::vector<FactId> parents;
};

// An alternative derivation attached to an already-existing fact.
struct AlternativeRecord {
  FactId fact = kInvalidFactId;
  Derivation derivation;
};

// Everything one round (or a batch of rounds) added on top of the previous
// commit. Replay order is: intern new_symbols, append nodes (written
// without alternatives), attach alternatives, apply aggregate updates.
struct CheckpointDelta {
  CheckpointCursor cursor;
  std::vector<std::string> new_symbols;
  std::vector<ChaseNode> nodes;
  std::vector<AlternativeRecord> alternatives;
  std::vector<AggregateEntryRecord> aggregates;
  // Trigger-graph records accrued since the previous commit
  // (engine/node_graph.h): resumed runs must report the same
  // chase.join.* totals as uninterrupted ones.
  std::vector<SegmentNode> segment_nodes;
  std::vector<RuleExecution> rule_executions;
};

// Full resumable chase state. Rule labels are not stored — the config hash
// pins the program, so the engine re-derives them from rule_index.
struct ChaseCheckpoint {
  uint64_t config_hash = 0;
  std::vector<std::string> symbols;  // SymbolTable in id order
  std::vector<ChaseNode> nodes;      // chase graph in id order
  std::vector<AggregateEntryRecord> aggregates;
  // Full trigger-graph history (engine/node_graph.h), in record order.
  std::vector<SegmentNode> segment_nodes;
  std::vector<RuleExecution> rule_executions;
  CheckpointCursor cursor;
};

// Owns one checkpoint directory. Not thread-safe: the chase commits from
// its driving thread only. All I/O goes through the injected Fs, so chaos
// tests swap in MemFs/FaultInjectingFs.
//
// Metrics (when a registry is attached): checkpoint.writes,
// checkpoint.bytes, checkpoint.corrupt_records counters and the
// checkpoint.write.seconds histogram (docs/OBSERVABILITY.md).
//
// Events (when a flight recorder is attached): snapshot/delta commits at
// info level, corrupt journal tails at warn, and kDataLoss loads at error
// — so a post-mortem crash report shows the durability layer's last acts
// next to the chase's.
class CheckpointStore {
 public:
  CheckpointStore(Fs* fs, std::string dir,
                  obs::MetricsRegistry* metrics = nullptr,
                  obs::EventLog* event_log = nullptr);
  ~CheckpointStore();

  // Creates the directory and sweeps `*.tmp` leftovers of interrupted
  // snapshot commits. Must be called (and succeed) before anything else.
  Status Open();

  // True when a committed snapshot exists to resume from.
  bool CanResume() const;

  // Atomically commits `snapshot` as the next generation and opens its
  // journal. On any error the previous generation remains the committed
  // state.
  Status WriteSnapshot(const ChaseCheckpoint& snapshot);

  // Durably appends one delta to the current generation's journal.
  // Requires a preceding successful WriteSnapshot in this process.
  Status AppendDelta(const CheckpointDelta& delta);

  // Reads the committed snapshot, replays its journal up to the last
  // intact record, and returns the merged state. kNotFound when no
  // snapshot exists; kDataLoss / kFailedPrecondition per the file comment.
  Result<ChaseCheckpoint> Load(uint64_t expected_config_hash);

  uint64_t generation() const { return generation_; }

 private:
  Status StartJournal(uint64_t config_hash);
  void RetireOtherJournals();
  Result<ChaseCheckpoint> LoadImpl(uint64_t expected_config_hash);
  void LogEvent(obs::EventLevel level, std::string_view name,
                std::vector<std::pair<std::string, std::string>> fields);

  Fs* fs_;
  std::string dir_;
  obs::EventLog* event_log_ = nullptr;      // may be null
  obs::Counter* writes_ = nullptr;          // may stay null (no registry)
  obs::Counter* bytes_ = nullptr;
  obs::Counter* corrupt_records_ = nullptr;
  obs::Histogram* write_seconds_ = nullptr;
  bool opened_ = false;
  uint64_t generation_ = 0;
  std::unique_ptr<WritableFile> journal_;  // open current-generation journal
};

// The serialized format version; bumped on any incompatible layout change
// and folded into the engine's checkpoint config hash.
// v2: trigger-graph records (segment nodes + rule executions) joined the
// snapshot and delta payloads.
inline constexpr uint32_t kCheckpointFormatVersion = 2;

}  // namespace templex

#endif  // TEMPLEX_IO_CHECKPOINT_H_
