#ifndef TEMPLEX_IO_CSV_H_
#define TEMPLEX_IO_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "engine/fact.h"

namespace templex {

// CSV-backed fact exchange, so KG applications can run over exported
// database tables (the extensional component of the EKG).
//
// Format: one fact per line, first field the predicate, remaining fields
// the arguments:
//
//   Own,"Banca Uno","Fondo Due",0.83
//   HasCapital,BancaUno,5
//
// Unquoted numeric fields parse as Int (no '.') or Double; everything else
// is a String. Quoted fields are always strings; embedded quotes are
// doubled (""). '#' at the start of a line is a comment.

// Parses facts from CSV text.
Result<std::vector<Fact>> ParseFactsCsv(const std::string& content);

// Serializes facts to CSV text (strings quoted, numbers bare).
std::string FactsToCsv(const std::vector<Fact>& facts);

// File variants.
Result<std::vector<Fact>> LoadFactsCsv(const std::string& path);
Status SaveFactsCsv(const std::string& path, const std::vector<Fact>& facts);

// Reads a whole file into a string (shared helper; NotFound on failure).
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace templex

#endif  // TEMPLEX_IO_CSV_H_
