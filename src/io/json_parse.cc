#include "io/json_parse.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace templex {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::Object(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  auto it = members_.find(key);
  return it == members_.end() ? nullptr : &it->second;
}

namespace {

// Nesting cap for arrays/objects: parsing is recursive, so unbounded depth
// in hostile input would overflow the stack long before exhausting memory.
// 192 is far beyond any legitimate fact file and well within the default
// stack even under sanitizers.
constexpr int kMaxNestingDepth = 192;

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    Result<JsonValue> value = ParseValue();
    if (!value.ok()) return value;
    SkipWhitespace();
    if (pos_ != text_.size()) return Error("trailing content");
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                        Peek() == '\r')) {
      ++pos_;
    }
  }

  Result<JsonValue> ParseValue() {
    if (AtEnd()) return Error("unexpected end of input");
    switch (Peek()) {
      case '{': {
        if (depth_ >= kMaxNestingDepth) return Error("nesting too deep");
        ++depth_;
        Result<JsonValue> v = ParseObject();
        --depth_;
        return v;
      }
      case '[': {
        if (depth_ >= kMaxNestingDepth) return Error("nesting too deep");
        ++depth_;
        Result<JsonValue> v = ParseArray();
        --depth_;
        return v;
      }
      case '"': {
        Result<std::string> s = ParseString();
        if (!s.ok()) return s.status();
        return JsonValue::String(std::move(s).value());
      }
      case 't':
        return ParseLiteral("true", JsonValue::Bool(true));
      case 'f':
        return ParseLiteral("false", JsonValue::Bool(false));
      case 'n':
        return ParseLiteral("null", JsonValue::Null());
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseLiteral(const std::string& word, JsonValue value) {
    if (text_.compare(pos_, word.size(), word) != 0) {
      return Error("invalid literal");
    }
    pos_ += word.size();
    return value;
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    std::map<std::string, JsonValue> members;
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return JsonValue::Object(std::move(members));
    }
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') return Error("expected member key");
      Result<std::string> key = ParseString();
      if (!key.ok()) return key.status();
      SkipWhitespace();
      if (AtEnd() || Peek() != ':') return Error("expected ':'");
      ++pos_;
      SkipWhitespace();
      Result<JsonValue> value = ParseValue();
      if (!value.ok()) return value;
      members[key.value()] = std::move(value).value();
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated object");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return JsonValue::Object(std::move(members));
      }
      return Error("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return JsonValue::Array(std::move(items));
    }
    while (true) {
      SkipWhitespace();
      Result<JsonValue> value = ParseValue();
      if (!value.ok()) return value;
      items.push_back(std::move(value).value());
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated array");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return JsonValue::Array(std::move(items));
      }
      return Error("expected ',' or ']'");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (AtEnd()) return Error("unterminated string");
      const unsigned char c = static_cast<unsigned char>(Peek());
      ++pos_;
      if (c == '"') return out;
      if (c < 0x20) return Error("unescaped control character");
      if (c != '\\') {
        out.push_back(static_cast<char>(c));
        continue;
      }
      if (AtEnd()) return Error("dangling escape");
      const char escape = Peek();
      ++pos_;
      switch (escape) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("invalid \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + i];
            if (!std::isxdigit(static_cast<unsigned char>(h))) {
              return Error("invalid \\u escape");
            }
            code = code * 16 +
                   (std::isdigit(static_cast<unsigned char>(h))
                        ? h - '0'
                        : std::tolower(h) - 'a' + 10);
          }
          pos_ += 4;
          // UTF-8 encode the BMP code point (no surrogate pairing).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (!AtEnd() && Peek() == '+') {
      // strtod would accept a leading '+'; JSON does not.
      return Error("invalid number");
    }
    if (!AtEnd() && Peek() == '-') ++pos_;
    while (!AtEnd() && (std::isdigit(static_cast<unsigned char>(Peek())) ||
                        Peek() == '.' || Peek() == 'e' || Peek() == 'E' ||
                        Peek() == '+' || Peek() == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("invalid number");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("invalid number");
    // JSON has no syntax for infinities or NaN; an overflowing literal like
    // 1e999 must be rejected, not smuggled in as +inf.
    if (!std::isfinite(value)) return Error("number out of range");
    return JsonValue::Number(value);
  }

  const std::string& text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

Result<Fact> FactFromJsonObject(const JsonValue& object) {
  const JsonValue* predicate = object.Find("predicate");
  if (predicate == nullptr || !predicate->is_string()) {
    return Status::InvalidArgument(
        "fact object needs a string \"predicate\" member");
  }
  Fact fact;
  fact.predicate = predicate->string_value();
  const JsonValue* args = object.Find("args");
  if (args != nullptr) {
    if (!args->is_array()) {
      return Status::InvalidArgument("\"args\" must be an array");
    }
    for (const JsonValue& arg : args->items()) {
      switch (arg.kind()) {
        case JsonValue::Kind::kString:
          fact.args.push_back(Value::String(arg.string_value()));
          break;
        case JsonValue::Kind::kNumber: {
          const double d = arg.number_value();
          if (d == std::floor(d) && std::fabs(d) < 1e15) {
            fact.args.push_back(Value::Int(static_cast<int64_t>(d)));
          } else {
            fact.args.push_back(Value::Double(d));
          }
          break;
        }
        case JsonValue::Kind::kBool:
          fact.args.push_back(Value::Bool(arg.bool_value()));
          break;
        case JsonValue::Kind::kNull:
          fact.args.push_back(Value::Null());
          break;
        default:
          return Status::InvalidArgument(
              "fact arguments must be scalars, got a composite");
      }
    }
  }
  return fact;
}

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return JsonParser(text).Parse();
}

Result<std::vector<Fact>> FactsFromJson(const std::string& text) {
  Result<JsonValue> document = ParseJson(text);
  if (!document.ok()) return document.status();
  const JsonValue* array = &document.value();
  if (document.value().is_object()) {
    array = document.value().Find("facts");
    if (array == nullptr || !array->is_array()) {
      return Status::InvalidArgument(
          "expected a \"facts\" array in the JSON object");
    }
  } else if (!document.value().is_array()) {
    return Status::InvalidArgument(
        "expected a JSON array of facts or an object with a \"facts\" "
        "member");
  }
  std::vector<Fact> facts;
  for (const JsonValue& item : array->items()) {
    if (!item.is_object()) {
      return Status::InvalidArgument("every fact must be a JSON object");
    }
    Result<Fact> fact = FactFromJsonObject(item);
    if (!fact.ok()) return fact.status();
    facts.push_back(std::move(fact).value());
  }
  return facts;
}

}  // namespace templex
