#include "io/csv.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/number_format.h"
#include "common/string_util.h"

namespace templex {

namespace {

// Splits one CSV line into fields, honouring quotes with "" escaping.
// Returns false on malformed quoting.
bool SplitCsvLine(const std::string& line, std::vector<std::string>* fields,
                  std::vector<bool>* quoted) {
  fields->clear();
  quoted->clear();
  std::string current;
  bool in_quotes = false;
  bool was_quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      was_quoted = true;
      continue;
    }
    if (c == ',') {
      fields->push_back(std::move(current));
      quoted->push_back(was_quoted);
      current.clear();
      was_quoted = false;
      continue;
    }
    current.push_back(c);
  }
  if (in_quotes) return false;
  fields->push_back(std::move(current));
  quoted->push_back(was_quoted);
  return true;
}

bool LooksNumeric(const std::string& field, bool* is_int) {
  if (field.empty()) return false;
  size_t i = field[0] == '-' || field[0] == '+' ? 1 : 0;
  if (i >= field.size()) return false;
  bool dot = false;
  for (; i < field.size(); ++i) {
    if (field[i] == '.') {
      if (dot) return false;
      dot = true;
    } else if (!std::isdigit(static_cast<unsigned char>(field[i]))) {
      return false;
    }
  }
  *is_int = !dot;
  return true;
}

Value FieldToValue(const std::string& field, bool was_quoted) {
  if (!was_quoted) {
    bool is_int = false;
    if (LooksNumeric(field, &is_int)) {
      if (is_int) return Value::Int(std::strtoll(field.c_str(), nullptr, 10));
      return Value::Double(std::strtod(field.c_str(), nullptr));
    }
  }
  return Value::String(field);
}

std::string QuoteField(const std::string& field) {
  return "\"" + ReplaceAll(field, "\"", "\"\"") + "\"";
}

}  // namespace

Result<std::vector<Fact>> ParseFactsCsv(const std::string& content) {
  std::vector<Fact> facts;
  int line_number = 0;
  for (const std::string& raw_line : Split(content, '\n')) {
    ++line_number;
    std::string line = Trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields;
    std::vector<bool> quoted;
    if (!SplitCsvLine(line, &fields, &quoted)) {
      return Status::InvalidArgument("CSV line " + std::to_string(line_number) +
                                     ": unterminated quote");
    }
    if (fields.empty() || Trim(fields[0]).empty()) {
      return Status::InvalidArgument("CSV line " + std::to_string(line_number) +
                                     ": missing predicate");
    }
    Fact fact;
    fact.predicate = Trim(fields[0]);
    for (size_t i = 1; i < fields.size(); ++i) {
      fact.args.push_back(
          FieldToValue(quoted[i] ? fields[i] : Trim(fields[i]), quoted[i]));
    }
    facts.push_back(std::move(fact));
  }
  return facts;
}

std::string FactsToCsv(const std::vector<Fact>& facts) {
  std::string csv;
  for (const Fact& fact : facts) {
    csv += fact.predicate;
    for (const Value& arg : fact.args) {
      csv += ",";
      switch (arg.kind()) {
        case Value::Kind::kString:
          csv += QuoteField(arg.string_value());
          break;
        case Value::Kind::kInt:
          csv += std::to_string(arg.int_value());
          break;
        case Value::Kind::kDouble:
          csv += FormatDouble(arg.double_value());
          break;
        default:
          csv += QuoteField(arg.ToDisplayString());
          break;
      }
    }
    csv += "\n";
  }
  return csv;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream stream(path, std::ios::binary);
  if (!stream) {
    return Status::NotFound("cannot open file: " + path);
  }
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  return buffer.str();
}

Result<std::vector<Fact>> LoadFactsCsv(const std::string& path) {
  Result<std::string> content = ReadFileToString(path);
  if (!content.ok()) return content.status();
  return ParseFactsCsv(content.value());
}

Status SaveFactsCsv(const std::string& path, const std::vector<Fact>& facts) {
  std::ofstream stream(path, std::ios::binary | std::ios::trunc);
  if (!stream) {
    return Status::Internal("cannot write file: " + path);
  }
  stream << FactsToCsv(facts);
  return stream ? Status::OK() : Status::Internal("write failed: " + path);
}

}  // namespace templex
