#ifndef TEMPLEX_IO_JSON_H_
#define TEMPLEX_IO_JSON_H_

#include <string>
#include <vector>

#include "core/structural_analyzer.h"
#include "engine/chase.h"
#include "engine/proof.h"
#include "explain/template.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace templex {

// Minimal streaming JSON writer (objects, arrays, scalars, correct string
// escaping). Enough to feed graph-based front-ends — the paper's analysts
// interact with the EKG through one (KG-Roar, [10]) — without a third-party
// dependency.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  // Object key; must be followed by a value (or Begin*).
  JsonWriter& Key(const std::string& key);
  JsonWriter& String(const std::string& value);
  JsonWriter& Number(double value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();
  // A templex Value, rendered as the matching JSON scalar.
  JsonWriter& TemplexValue(const Value& value);

  const std::string& str() const { return out_; }

 private:
  void Separate();

  std::string out_;
  // Whether the current nesting level already has an element (comma rule).
  std::vector<bool> has_element_ = {false};
  bool pending_key_ = false;
};

// Escapes a string for inclusion in JSON (quotes not included).
std::string JsonEscape(const std::string& text);

// The chase graph as {"facts": [{id, predicate, args, rule, parents}...]}.
std::string ChaseGraphToJson(const ChaseGraph& graph);

// A proof as {"goal", "steps": [...], "edb": [...], "rules": [...]}.
std::string ProofToJson(const Proof& proof);

// The template catalog as an array of {name, kind, rules, deterministic,
// enhanced}.
std::string TemplatesToJson(const std::vector<ExplanationTemplate>& templates);

// The structural analysis as {"predicates", "edges", "criticals", "paths"}.
std::string AnalysisToJson(const StructuralAnalysis& analysis);

// A metrics snapshot as {"counters": {name: value}, "gauges": {...},
// "histograms": {name: {count, sum, min, max, p50, p95, p99}}} — the
// templex_cli --metrics-json payload and the sidecar the Figure 18
// benchmark writes next to its results.
std::string MetricsSnapshotToJson(const obs::MetricsSnapshot& snapshot);

// Trace events in Chrome trace-event format: a JSON array of complete
// ("ph":"X") events [{name, cat, ph, ts, dur, pid, tid, args}, ...],
// loadable in chrome://tracing and Perfetto.
std::string TraceEventsToJson(const std::vector<obs::TraceEvent>& events);

}  // namespace templex

#endif  // TEMPLEX_IO_JSON_H_
