#ifndef TEMPLEX_IO_JSON_VALIDATE_H_
#define TEMPLEX_IO_JSON_VALIDATE_H_

#include <string>

#include "common/status.h"

namespace templex {

// Validates that `text` is one well-formed JSON value (RFC 8259 syntax:
// objects, arrays, strings with escapes, numbers, true/false/null). Used by
// tests to guarantee every export the library produces parses, and by
// integrations as a cheap sanity gate. Reports the byte offset of the first
// error.
Status ValidateJson(const std::string& text);

}  // namespace templex

#endif  // TEMPLEX_IO_JSON_VALIDATE_H_
