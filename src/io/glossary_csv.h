#ifndef TEMPLEX_IO_GLOSSARY_CSV_H_
#define TEMPLEX_IO_GLOSSARY_CSV_H_

#include <string>

#include "common/status.h"
#include "explain/glossary.h"

namespace templex {

// CSV representation of a domain glossary, the exchange format between the
// organization's data dictionary and the explanation pipeline:
//
//   Own,"<x> owns <s> of the shares of <y>",x:plain,y:plain,s:percent
//   Control,"<x> exercises control over <y>",x,y
//
// One row per predicate: the pattern, then one `token[:style]` field per
// argument position (styles: plain | millions | percent; default plain).

Result<DomainGlossary> ParseGlossaryCsv(const std::string& content);

std::string GlossaryToCsv(const DomainGlossary& glossary);

Result<DomainGlossary> LoadGlossaryCsv(const std::string& path);

}  // namespace templex

#endif  // TEMPLEX_IO_GLOSSARY_CSV_H_
