#include "io/json.h"

#include <cstdio>

#include "common/number_format.h"

namespace templex {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonWriter::Separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (has_element_.back()) out_ += ",";
  has_element_.back() = true;
}

JsonWriter& JsonWriter::BeginObject() {
  Separate();
  out_ += "{";
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += "}";
  has_element_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Separate();
  out_ += "[";
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += "]";
  has_element_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& key) {
  Separate();
  out_ += "\"" + JsonEscape(key) + "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  Separate();
  out_ += "\"" + JsonEscape(value) + "\"";
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  Separate();
  out_ += FormatDouble(value);
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  Separate();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  Separate();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  Separate();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::TemplexValue(const Value& value) {
  switch (value.kind()) {
    case Value::Kind::kNull:
      return Null();
    case Value::Kind::kBool:
      return Bool(value.bool_value());
    case Value::Kind::kInt:
      return Int(value.int_value());
    case Value::Kind::kDouble:
      return Number(value.double_value());
    case Value::Kind::kString:
      return String(value.string_value());
    case Value::Kind::kLabeledNull:
      return String(value.ToString());
  }
  return Null();
}

namespace {

void WriteFactNode(JsonWriter& json, const ChaseGraph& graph, FactId id) {
  const ChaseNode& node = graph.node(id);
  json.BeginObject();
  json.Key("id").Int(id);
  json.Key("predicate").String(node.fact.predicate);
  json.Key("args").BeginArray();
  for (const Value& arg : node.fact.args) json.TemplexValue(arg);
  json.EndArray();
  if (!node.is_extensional()) {
    json.Key("rule").String(node.rule_label);
    json.Key("parents").BeginArray();
    for (FactId parent : node.parents) json.Int(parent);
    json.EndArray();
    if (!node.contributions.empty()) {
      json.Key("contributions").BeginArray();
      for (const AggregateContribution& c : node.contributions) {
        json.BeginObject();
        json.Key("input").TemplexValue(c.input);
        json.Key("parents").BeginArray();
        for (FactId parent : c.parents) json.Int(parent);
        json.EndArray();
        json.EndObject();
      }
      json.EndArray();
    }
    if (!node.alternatives.empty()) {
      json.Key("alternatives").BeginArray();
      for (const Derivation& alt : node.alternatives) {
        json.BeginObject();
        json.Key("rule").String(alt.rule_label);
        json.Key("parents").BeginArray();
        for (FactId parent : alt.parents) json.Int(parent);
        json.EndArray();
        json.EndObject();
      }
      json.EndArray();
    }
  }
  json.EndObject();
}

}  // namespace

std::string ChaseGraphToJson(const ChaseGraph& graph) {
  JsonWriter json;
  json.BeginObject();
  json.Key("facts").BeginArray();
  for (FactId id = 0; id < graph.size(); ++id) {
    WriteFactNode(json, graph, id);
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

std::string ProofToJson(const Proof& proof) {
  JsonWriter json;
  json.BeginObject();
  json.Key("goal").Int(proof.goal());
  json.Key("chase_steps").Int(proof.num_chase_steps());
  json.Key("rules").BeginArray();
  for (const std::string& label : proof.RuleLabelSequence()) {
    json.String(label);
  }
  json.EndArray();
  json.Key("edb").BeginArray();
  for (FactId id : proof.edb_facts()) {
    WriteFactNode(json, proof.graph(), id);
  }
  json.EndArray();
  json.Key("steps").BeginArray();
  for (FactId id : proof.steps()) {
    WriteFactNode(json, proof.graph(), id);
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

std::string TemplatesToJson(
    const std::vector<ExplanationTemplate>& templates) {
  JsonWriter json;
  json.BeginArray();
  for (const ExplanationTemplate& tmpl : templates) {
    json.BeginObject();
    json.Key("name").String(tmpl.name);
    json.Key("kind").String(tmpl.path.is_cycle() ? "cycle" : "simple_path");
    json.Key("target").String(tmpl.path.target);
    if (tmpl.path.is_cycle()) json.Key("anchor").String(tmpl.path.anchor);
    json.Key("rules").BeginArray();
    for (const std::string& label : tmpl.path.rules) json.String(label);
    json.EndArray();
    json.Key("aggregation_variant").Bool(tmpl.path.is_aggregation_variant());
    json.Key("deterministic").String(tmpl.DeterministicText());
    json.Key("enhanced").String(tmpl.EffectiveText());
    json.EndObject();
  }
  json.EndArray();
  return json.str();
}

std::string AnalysisToJson(const StructuralAnalysis& analysis) {
  JsonWriter json;
  json.BeginObject();
  json.Key("predicates").BeginArray();
  for (const std::string& predicate : analysis.graph.predicates()) {
    json.String(predicate);
  }
  json.EndArray();
  json.Key("leaf").String(analysis.graph.leaf());
  json.Key("critical").BeginArray();
  for (const std::string& predicate : analysis.graph.CriticalNodes()) {
    json.String(predicate);
  }
  json.EndArray();
  json.Key("edges").BeginArray();
  for (const DependencyEdge& edge : analysis.graph.edges()) {
    json.BeginObject();
    json.Key("from").String(edge.from);
    json.Key("to").String(edge.to);
    json.Key("rule").String(edge.rule_label);
    json.EndObject();
  }
  json.EndArray();
  json.Key("paths").BeginArray();
  for (const ReasoningPath& path : analysis.catalog) {
    json.BeginObject();
    json.Key("name").String(path.name);
    json.Key("kind").String(path.is_cycle() ? "cycle" : "simple_path");
    json.Key("rules").BeginArray();
    for (const std::string& label : path.rules) json.String(label);
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

std::string MetricsSnapshotToJson(const obs::MetricsSnapshot& snapshot) {
  JsonWriter json;
  json.BeginObject();
  json.Key("counters").BeginObject();
  for (const obs::CounterSnapshot& c : snapshot.counters) {
    json.Key(c.name).Int(c.value);
  }
  json.EndObject();
  json.Key("gauges").BeginObject();
  for (const obs::GaugeSnapshot& g : snapshot.gauges) {
    json.Key(g.name).Number(g.value);
  }
  json.EndObject();
  json.Key("histograms").BeginObject();
  for (const obs::HistogramSnapshot& h : snapshot.histograms) {
    json.Key(h.name).BeginObject();
    json.Key("count").Int(h.count);
    json.Key("sum").Number(h.sum);
    json.Key("min").Number(h.min);
    json.Key("max").Number(h.max);
    json.Key("p50").Number(h.p50);
    json.Key("p95").Number(h.p95);
    json.Key("p99").Number(h.p99);
    // Full bucket layout (buckets has a trailing overflow cell), so offline
    // analyses (stats SummarizeHistogram boxplots) can run from the file.
    json.Key("bounds").BeginArray();
    for (double bound : h.bounds) json.Number(bound);
    json.EndArray();
    json.Key("buckets").BeginArray();
    for (int64_t bucket : h.buckets) json.Int(bucket);
    json.EndArray();
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
  return json.str();
}

std::string TraceEventsToJson(const std::vector<obs::TraceEvent>& events) {
  JsonWriter json;
  json.BeginArray();
  for (const obs::TraceEvent& event : events) {
    json.BeginObject();
    json.Key("name").String(event.name);
    json.Key("cat").String("templex");
    json.Key("ph").String("X");
    json.Key("ts").Number(event.ts_micros);
    json.Key("dur").Number(event.dur_micros);
    json.Key("pid").Int(1);
    json.Key("tid").Int(event.tid);
    json.Key("args").BeginObject();
    json.Key("depth").Int(event.depth);
    for (const auto& [key, value] : event.attributes) {
      json.Key(key).String(value);
    }
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();
  return json.str();
}

}  // namespace templex
