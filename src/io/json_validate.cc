#include "io/json_validate.h"

#include <cctype>

namespace templex {

namespace {

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  Status Validate() {
    SkipWhitespace();
    TEMPLEX_RETURN_IF_ERROR(Value());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing content after JSON value");
    }
    return Status::OK();
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                        Peek() == '\r')) {
      ++pos_;
    }
  }

  Status Expect(char c) {
    if (AtEnd() || Peek() != c) {
      return Error(std::string("expected '") + c + "'");
    }
    ++pos_;
    return Status::OK();
  }

  Status Value() {
    if (AtEnd()) return Error("unexpected end of input");
    switch (Peek()) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  Status Literal(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) {
      return Error("invalid literal");
    }
    pos_ += word.size();
    return Status::OK();
  }

  Status Object() {
    TEMPLEX_RETURN_IF_ERROR(Expect('{'));
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      TEMPLEX_RETURN_IF_ERROR(String());
      SkipWhitespace();
      TEMPLEX_RETURN_IF_ERROR(Expect(':'));
      SkipWhitespace();
      TEMPLEX_RETURN_IF_ERROR(Value());
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated object");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      return Expect('}');
    }
  }

  Status Array() {
    TEMPLEX_RETURN_IF_ERROR(Expect('['));
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      TEMPLEX_RETURN_IF_ERROR(Value());
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated array");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      return Expect(']');
    }
  }

  Status String() {
    TEMPLEX_RETURN_IF_ERROR(Expect('"'));
    while (true) {
      if (AtEnd()) return Error("unterminated string");
      const unsigned char c = static_cast<unsigned char>(Peek());
      ++pos_;
      if (c == '"') return Status::OK();
      if (c < 0x20) return Error("unescaped control character in string");
      if (c == '\\') {
        if (AtEnd()) return Error("dangling escape");
        const char escape = Peek();
        ++pos_;
        switch (escape) {
          case '"':
          case '\\':
          case '/':
          case 'b':
          case 'f':
          case 'n':
          case 'r':
          case 't':
            break;
          case 'u': {
            for (int i = 0; i < 4; ++i) {
              if (AtEnd() ||
                  !std::isxdigit(static_cast<unsigned char>(Peek()))) {
                return Error("invalid \\u escape");
              }
              ++pos_;
            }
            break;
          }
          default:
            return Error("invalid escape character");
        }
      }
    }
  }

  Status Number() {
    const size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Error("invalid number");
    }
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("digits required after decimal point");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("digits required in exponent");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    return pos_ > start ? Status::OK() : Error("empty number");
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Status ValidateJson(const std::string& text) {
  return JsonValidator(text).Validate();
}

}  // namespace templex
