#include "io/checkpoint.h"

#include <algorithm>
#include <cstring>

#include "common/hash.h"
#include "common/timer.h"

namespace templex {

namespace {

constexpr char kMagic[8] = {'T', 'P', 'X', 'C', 'K', 'P', 'T', '\n'};
constexpr const char* kSnapshotName = "snapshot.tpx";
constexpr const char* kTmpSuffix = ".tmp";
// Nodes / aggregate entries per framed record: keeps every record (and the
// blast radius of one bad CRC) modest without paying a frame per node.
constexpr size_t kChunk = 256;

enum RecordType : uint8_t {
  kSnapshotHeader = 1,
  kSymbols = 2,
  kNodes = 3,
  kAggregates = 4,
  kSnapshotFooter = 5,
  kJournalHeader = 6,
  kDelta = 7,
  kSegmentNodes = 8,
  kRuleExecutions = 9,
};

std::string JournalName(uint64_t generation) {
  return "journal." + std::to_string(generation) + ".tpx";
}

bool HasSuffix(const std::string& name, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return name.size() >= n && name.compare(name.size() - n, n, suffix) == 0;
}

// ---------------------------------------------------------------------------
// Primitive little-endian serialization

class ByteWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }

  const std::string& str() const { return out_; }

 private:
  std::string out_;
};

// Reads the writer's layout back; any underflow or malformed field puts
// the reader into a sticky failed state instead of reading garbage, and
// `offset()` reports the absolute file offset for the diagnostic.
class ByteReader {
 public:
  ByteReader(std::string_view data, size_t file_offset)
      : data_(data), file_offset_(file_offset) {}

  bool ok() const { return ok_; }
  size_t offset() const { return file_offset_ + pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  // True when `count` elements of at least `min_size` bytes each can still
  // fit — the guard that keeps a bogus count from driving a giant reserve.
  bool FitCount(uint64_t count, size_t min_size) {
    if (ok_ && count * min_size <= remaining()) return true;
    ok_ = false;
    return false;
  }

  uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }
  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_++]))
           << (8 * i);
    }
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_++]))
           << (8 * i);
    }
    return v;
  }
  int32_t I32() { return static_cast<int32_t>(U32()); }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64() {
    const uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string Str() {
    const uint32_t n = U32();
    if (!Need(n)) return std::string();
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

 private:
  bool Need(size_t n) {
    if (ok_ && n <= remaining()) return true;
    ok_ = false;
    return false;
  }

  std::string_view data_;
  size_t file_offset_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Domain serialization (Value, Binding, Derivation, ChaseNode, ...)

void WriteValue(ByteWriter& w, const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kNull:
      w.U8(0);
      break;
    case Value::Kind::kBool:
      w.U8(1);
      w.U8(v.bool_value() ? 1 : 0);
      break;
    case Value::Kind::kInt:
      w.U8(2);
      w.I64(v.int_value());
      break;
    case Value::Kind::kDouble:
      w.U8(3);
      w.F64(v.double_value());
      break;
    case Value::Kind::kString:
      w.U8(4);
      w.Str(v.string_value());
      break;
    case Value::Kind::kLabeledNull:
      w.U8(5);
      w.I64(v.labeled_null_id());
      break;
  }
}

bool ReadValue(ByteReader& r, Value* out) {
  switch (r.U8()) {
    case 0:
      *out = Value::Null();
      break;
    case 1:
      *out = Value::Bool(r.U8() != 0);
      break;
    case 2:
      *out = Value::Int(r.I64());
      break;
    case 3:
      *out = Value::Double(r.F64());
      break;
    case 4:
      *out = Value::String(r.Str());
      break;
    case 5:
      *out = Value::LabeledNull(r.I64());
      break;
    default:
      return false;
  }
  return r.ok();
}

void WriteValues(ByteWriter& w, const std::vector<Value>& values) {
  w.U32(static_cast<uint32_t>(values.size()));
  for (const Value& v : values) WriteValue(w, v);
}

bool ReadValues(ByteReader& r, std::vector<Value>* out) {
  const uint32_t n = r.U32();
  if (!r.FitCount(n, 1)) return false;
  out->resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!ReadValue(r, &(*out)[i])) return false;
  }
  return true;
}

void WriteBinding(ByteWriter& w, const Binding& binding) {
  w.U32(static_cast<uint32_t>(binding.entries().size()));
  for (const auto& [name, value] : binding.entries()) {
    w.Str(name);
    WriteValue(w, value);
  }
}

bool ReadBinding(ByteReader& r, Binding* out) {
  const uint32_t n = r.U32();
  if (!r.FitCount(n, 5)) return false;
  for (uint32_t i = 0; i < n; ++i) {
    std::string name = r.Str();
    Value value;
    if (!ReadValue(r, &value)) return false;
    out->Set(name, value);
  }
  return r.ok();
}

void WriteParents(ByteWriter& w, const std::vector<FactId>& parents) {
  w.U32(static_cast<uint32_t>(parents.size()));
  for (FactId id : parents) w.I32(id);
}

bool ReadParents(ByteReader& r, std::vector<FactId>* out) {
  const uint32_t n = r.U32();
  if (!r.FitCount(n, 4)) return false;
  out->resize(n);
  for (uint32_t i = 0; i < n; ++i) (*out)[i] = r.I32();
  return r.ok();
}

void WriteContributions(ByteWriter& w,
                        const std::vector<AggregateContribution>& cs) {
  w.U32(static_cast<uint32_t>(cs.size()));
  for (const AggregateContribution& c : cs) {
    WriteValue(w, c.input);
    WriteParents(w, c.parents);
  }
}

bool ReadContributions(ByteReader& r, std::vector<AggregateContribution>* out) {
  const uint32_t n = r.U32();
  if (!r.FitCount(n, 5)) return false;
  out->resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!ReadValue(r, &(*out)[i].input)) return false;
    if (!ReadParents(r, &(*out)[i].parents)) return false;
  }
  return true;
}

// The shared core of a primary derivation and an alternative: rule index,
// homomorphism, parents, contributions. Rule labels are re-derived from the
// program at restore (the config hash pins the program text).
void WriteDerivationCore(ByteWriter& w, int rule_index, const Binding& binding,
                         const std::vector<FactId>& parents,
                         const std::vector<AggregateContribution>& cs) {
  w.I32(rule_index);
  WriteBinding(w, binding);
  WriteParents(w, parents);
  WriteContributions(w, cs);
}

bool ReadDerivationCore(ByteReader& r, int* rule_index, Binding* binding,
                        std::vector<FactId>* parents,
                        std::vector<AggregateContribution>* cs) {
  *rule_index = r.I32();
  return ReadBinding(r, binding) && ReadParents(r, parents) &&
         ReadContributions(r, cs);
}

// `with_alternatives` is false for delta nodes: a node born since the last
// commit carries its re-derivations in the delta's alternatives stream, in
// arrival order, so replay rebuilds the exact alternative list.
void WriteNode(ByteWriter& w, const ChaseNode& node, bool with_alternatives) {
  w.U32(static_cast<uint32_t>(node.fact.pred_symbol));
  WriteValues(w, node.fact.args);
  WriteDerivationCore(w, node.rule_index, node.binding, node.parents,
                      node.contributions);
  if (!with_alternatives) {
    w.U32(0);
    return;
  }
  w.U32(static_cast<uint32_t>(node.alternatives.size()));
  for (const Derivation& alt : node.alternatives) {
    WriteDerivationCore(w, alt.rule_index, alt.binding, alt.parents,
                        alt.contributions);
  }
}

bool ReadNode(ByteReader& r, const std::vector<std::string>& symbols,
              ChaseNode* out) {
  const uint32_t pred = r.U32();
  if (!r.ok() || pred >= symbols.size()) return false;
  out->fact.predicate = symbols[pred];
  if (!ReadValues(r, &out->fact.args)) return false;
  if (!ReadDerivationCore(r, &out->rule_index, &out->binding, &out->parents,
                          &out->contributions)) {
    return false;
  }
  const uint32_t alts = r.U32();
  if (!r.FitCount(alts, 13)) return false;
  out->alternatives.resize(alts);
  for (uint32_t i = 0; i < alts; ++i) {
    Derivation& alt = out->alternatives[i];
    if (!ReadDerivationCore(r, &alt.rule_index, &alt.binding, &alt.parents,
                            &alt.contributions)) {
      return false;
    }
  }
  return true;
}

void WriteCursor(ByteWriter& w, const CheckpointCursor& cursor) {
  w.I32(cursor.stratum_index);
  w.I32(cursor.resume_delta);
  w.I64(cursor.stats.initial_facts);
  w.I64(cursor.stats.derived_facts);
  w.I64(cursor.stats.rounds);
  w.I64(cursor.stats.matches);
  w.I64(cursor.next_null_id);
}

bool ReadCursor(ByteReader& r, CheckpointCursor* out) {
  out->stratum_index = r.I32();
  out->resume_delta = r.I32();
  out->stats.initial_facts = r.I64();
  out->stats.derived_facts = r.I64();
  out->stats.rounds = r.I64();
  out->stats.matches = r.I64();
  out->next_null_id = r.I64();
  return r.ok();
}

void WriteAggregateEntry(ByteWriter& w, const AggregateEntryRecord& e) {
  w.I32(e.rule_index);
  WriteValues(w, e.group_key);
  WriteValues(w, e.contributor_key);
  WriteValue(w, e.value);
  WriteParents(w, e.parents);
}

bool ReadAggregateEntry(ByteReader& r, AggregateEntryRecord* out) {
  out->rule_index = r.I32();
  return ReadValues(r, &out->group_key) &&
         ReadValues(r, &out->contributor_key) && ReadValue(r, &out->value) &&
         ReadParents(r, &out->parents);
}

// Trigger-graph records (engine/node_graph.h). Fixed-width layouts; the
// predicate is a symbol id, valid under the same symbol table the nodes
// use (the config hash pins the program, so ids are stable across runs).

void WriteSegmentNode(ByteWriter& w, const SegmentNode& node) {
  w.I32(node.predicate);
  w.I64(node.round);
  w.I32(node.id_begin);
  w.I32(node.id_end);
}

bool ReadSegmentNode(ByteReader& r, SegmentNode* out) {
  out->predicate = r.I32();
  out->round = r.I64();
  out->id_begin = r.I32();
  out->id_end = r.I32();
  return r.ok();
}

void WriteRuleExecution(ByteWriter& w, const RuleExecution& exec) {
  w.I32(exec.rule_index);
  w.I32(exec.stratum);
  w.I64(exec.round);
  w.I32(exec.passes_run);
  w.I32(exec.passes_skipped);
  w.I32(exec.merge_atoms);
  w.I32(exec.probe_atoms);
  w.U8(exec.skipped ? 1 : 0);
}

bool ReadRuleExecution(ByteReader& r, RuleExecution* out) {
  out->rule_index = r.I32();
  out->stratum = r.I32();
  out->round = r.I64();
  out->passes_run = r.I32();
  out->passes_skipped = r.I32();
  out->merge_atoms = r.I32();
  out->probe_atoms = r.I32();
  out->skipped = r.U8() != 0;
  return r.ok();
}

// ---------------------------------------------------------------------------
// Record framing: [u32 payload_len][u32 crc32(payload)][payload]

void AppendFramed(std::string* out, std::string_view payload) {
  ByteWriter frame;
  frame.U32(static_cast<uint32_t>(payload.size()));
  frame.U32(Crc32(payload.data(), payload.size()));
  out->append(frame.str());
  out->append(payload.data(), payload.size());
}

// Walks the framed records of a file after its magic. Distinguishes a
// clean end from a torn or corrupt tail, which is what separates "crash
// cut mid-append" (resume before it) from "nothing wrong".
class RecordScanner {
 public:
  enum class Next { kRecord, kEof, kCorrupt };

  RecordScanner(std::string_view data, size_t pos) : data_(data), pos_(pos) {}

  Next Read(std::string_view* payload, size_t* payload_offset) {
    if (pos_ == data_.size()) return Next::kEof;
    if (data_.size() - pos_ < 8) return Next::kCorrupt;  // torn frame header
    ByteReader header(data_.substr(pos_, 8), pos_);
    const uint32_t len = header.U32();
    const uint32_t crc = header.U32();
    if (data_.size() - pos_ - 8 < len) return Next::kCorrupt;  // torn payload
    std::string_view body = data_.substr(pos_ + 8, len);
    if (Crc32(body.data(), body.size()) != crc) return Next::kCorrupt;
    *payload = body;
    *payload_offset = pos_ + 8;
    pos_ += 8 + len;
    return Next::kRecord;
  }

  size_t pos() const { return pos_; }

 private:
  std::string_view data_;
  size_t pos_;
};

Status MalformedRecord(const char* what, size_t offset) {
  return Status::DataLoss(std::string("checkpoint: malformed ") + what +
                          " record at offset " + std::to_string(offset));
}

// Header/footer payload shapes shared by snapshot and journal.
struct FileHeader {
  uint32_t version = 0;
  uint64_t config_hash = 0;
  uint64_t generation = 0;
};

void WriteFileHeader(ByteWriter& w, uint8_t type, uint64_t config_hash,
                     uint64_t generation) {
  w.U8(type);
  w.U32(kCheckpointFormatVersion);
  w.U64(config_hash);
  w.U64(generation);
}

bool ReadFileHeader(ByteReader& r, FileHeader* out) {
  out->version = r.U32();
  out->config_hash = r.U64();
  out->generation = r.U64();
  return r.ok();
}

// Validates a parsed header against what the caller expects. `kind` names
// the file for diagnostics.
Status CheckFileHeader(const FileHeader& header, uint64_t expected_hash,
                       const char* kind) {
  if (header.version != kCheckpointFormatVersion) {
    return Status::FailedPrecondition(
        std::string("checkpoint ") + kind + ": format version " +
        std::to_string(header.version) + " is not supported (expected " +
        std::to_string(kCheckpointFormatVersion) + ")");
  }
  if (header.config_hash != expected_hash) {
    return Status::FailedPrecondition(
        std::string("checkpoint ") + kind +
        ": config hash mismatch — the checkpoint was written for a "
        "different program, EDB, or chase configuration; refusing to "
        "resume (delete the checkpoint directory to start fresh)");
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// CheckpointStore

CheckpointStore::CheckpointStore(Fs* fs, std::string dir,
                                 obs::MetricsRegistry* metrics,
                                 obs::EventLog* event_log)
    : fs_(fs), dir_(std::move(dir)), event_log_(event_log) {
  if (metrics != nullptr) {
    writes_ = metrics->counter("checkpoint.writes");
    bytes_ = metrics->counter("checkpoint.bytes");
    corrupt_records_ = metrics->counter("checkpoint.corrupt_records");
    write_seconds_ = metrics->histogram("checkpoint.write.seconds");
  }
}

CheckpointStore::~CheckpointStore() = default;

void CheckpointStore::LogEvent(
    obs::EventLevel level, std::string_view name,
    std::vector<std::pair<std::string, std::string>> fields) {
  if (event_log_ == nullptr) return;
  event_log_->Log(level, "checkpoint", name, std::move(fields));
}

Status CheckpointStore::Open() {
  TEMPLEX_RETURN_IF_ERROR(fs_->CreateDir(dir_));
  // Sweep temp files of interrupted snapshot commits; they were never
  // renamed, so they are not part of any committed state.
  Result<std::vector<std::string>> names = fs_->ListDir(dir_);
  if (!names.ok()) return names.status();
  for (const std::string& name : names.value()) {
    if (HasSuffix(name, kTmpSuffix)) {
      TEMPLEX_RETURN_IF_ERROR(fs_->RemoveFile(JoinPath(dir_, name)));
    }
  }
  opened_ = true;
  return Status::OK();
}

bool CheckpointStore::CanResume() const {
  return fs_->Exists(JoinPath(dir_, kSnapshotName));
}

Status CheckpointStore::WriteSnapshot(const ChaseCheckpoint& snapshot) {
  if (!opened_) return Status::Internal("CheckpointStore used before Open()");
  double seconds = 0.0;
  ScopedTimer timer(&seconds);
  const uint64_t generation = generation_ + 1;

  std::string content(kMagic, sizeof(kMagic));
  {
    ByteWriter w;
    WriteFileHeader(w, kSnapshotHeader, snapshot.config_hash, generation);
    AppendFramed(&content, w.str());
  }
  {
    ByteWriter w;
    w.U8(kSymbols);
    w.U32(static_cast<uint32_t>(snapshot.symbols.size()));
    for (const std::string& name : snapshot.symbols) w.Str(name);
    AppendFramed(&content, w.str());
  }
  for (size_t begin = 0; begin < snapshot.nodes.size(); begin += kChunk) {
    const size_t end = std::min(begin + kChunk, snapshot.nodes.size());
    ByteWriter w;
    w.U8(kNodes);
    w.U32(static_cast<uint32_t>(end - begin));
    for (size_t i = begin; i < end; ++i) {
      WriteNode(w, snapshot.nodes[i], /*with_alternatives=*/true);
    }
    AppendFramed(&content, w.str());
  }
  for (size_t begin = 0; begin < snapshot.aggregates.size(); begin += kChunk) {
    const size_t end = std::min(begin + kChunk, snapshot.aggregates.size());
    ByteWriter w;
    w.U8(kAggregates);
    w.U32(static_cast<uint32_t>(end - begin));
    for (size_t i = begin; i < end; ++i) {
      WriteAggregateEntry(w, snapshot.aggregates[i]);
    }
    AppendFramed(&content, w.str());
  }
  for (size_t begin = 0; begin < snapshot.segment_nodes.size();
       begin += kChunk) {
    const size_t end = std::min(begin + kChunk, snapshot.segment_nodes.size());
    ByteWriter w;
    w.U8(kSegmentNodes);
    w.U32(static_cast<uint32_t>(end - begin));
    for (size_t i = begin; i < end; ++i) {
      WriteSegmentNode(w, snapshot.segment_nodes[i]);
    }
    AppendFramed(&content, w.str());
  }
  for (size_t begin = 0; begin < snapshot.rule_executions.size();
       begin += kChunk) {
    const size_t end =
        std::min(begin + kChunk, snapshot.rule_executions.size());
    ByteWriter w;
    w.U8(kRuleExecutions);
    w.U32(static_cast<uint32_t>(end - begin));
    for (size_t i = begin; i < end; ++i) {
      WriteRuleExecution(w, snapshot.rule_executions[i]);
    }
    AppendFramed(&content, w.str());
  }
  {
    ByteWriter w;
    w.U8(kSnapshotFooter);
    WriteCursor(w, snapshot.cursor);
    w.U64(snapshot.nodes.size());
    w.U64(snapshot.aggregates.size());
    AppendFramed(&content, w.str());
  }

  // Commit: temp + sync + rename. On any failure the previous generation
  // stays committed and the temp (if created) is swept by the next Open().
  const std::string path = JoinPath(dir_, kSnapshotName);
  const std::string tmp = path + kTmpSuffix;
  Result<std::unique_ptr<WritableFile>> file = fs_->NewWritableFile(tmp);
  if (!file.ok()) return file.status();
  TEMPLEX_RETURN_IF_ERROR(file.value()->Append(content));
  TEMPLEX_RETURN_IF_ERROR(file.value()->Sync());
  TEMPLEX_RETURN_IF_ERROR(file.value()->Close());
  TEMPLEX_RETURN_IF_ERROR(fs_->Rename(tmp, path));

  generation_ = generation;
  journal_.reset();  // the old generation's journal is retired below
  TEMPLEX_RETURN_IF_ERROR(StartJournal(snapshot.config_hash));
  RetireOtherJournals();

  timer.Stop();
  if (writes_ != nullptr) {
    writes_->Increment();
    bytes_->Increment(static_cast<int64_t>(content.size()));
    write_seconds_->Observe(seconds);
  }
  LogEvent(obs::EventLevel::kInfo, "snapshot.committed",
           {{"generation", std::to_string(generation_)},
            {"bytes", std::to_string(content.size())}});
  return Status::OK();
}

Status CheckpointStore::StartJournal(uint64_t config_hash) {
  std::string content(kMagic, sizeof(kMagic));
  ByteWriter w;
  WriteFileHeader(w, kJournalHeader, config_hash, generation_);
  AppendFramed(&content, w.str());
  Result<std::unique_ptr<WritableFile>> file =
      fs_->NewWritableFile(JoinPath(dir_, JournalName(generation_)));
  if (!file.ok()) return file.status();
  journal_ = std::move(file).value();
  TEMPLEX_RETURN_IF_ERROR(journal_->Append(content));
  TEMPLEX_RETURN_IF_ERROR(journal_->Sync());
  if (bytes_ != nullptr) {
    bytes_->Increment(static_cast<int64_t>(content.size()));
  }
  return Status::OK();
}

void CheckpointStore::RetireOtherJournals() {
  // Best-effort: a stale journal is never read (its name carries the wrong
  // generation), so a failed removal costs disk, not correctness.
  Result<std::vector<std::string>> names = fs_->ListDir(dir_);
  if (!names.ok()) return;
  const std::string current = JournalName(generation_);
  for (const std::string& name : names.value()) {
    if (name.rfind("journal.", 0) == 0 && name != current) {
      fs_->RemoveFile(JoinPath(dir_, name));
    }
  }
}

Status CheckpointStore::AppendDelta(const CheckpointDelta& delta) {
  if (journal_ == nullptr) {
    return Status::Internal("AppendDelta without a committed snapshot");
  }
  double seconds = 0.0;
  ScopedTimer timer(&seconds);
  ByteWriter w;
  w.U8(kDelta);
  WriteCursor(w, delta.cursor);
  w.U32(static_cast<uint32_t>(delta.new_symbols.size()));
  for (const std::string& name : delta.new_symbols) w.Str(name);
  w.U32(static_cast<uint32_t>(delta.nodes.size()));
  for (const ChaseNode& node : delta.nodes) {
    WriteNode(w, node, /*with_alternatives=*/false);
  }
  w.U32(static_cast<uint32_t>(delta.alternatives.size()));
  for (const AlternativeRecord& alt : delta.alternatives) {
    w.I32(alt.fact);
    WriteDerivationCore(w, alt.derivation.rule_index, alt.derivation.binding,
                        alt.derivation.parents, alt.derivation.contributions);
  }
  w.U32(static_cast<uint32_t>(delta.aggregates.size()));
  for (const AggregateEntryRecord& e : delta.aggregates) {
    WriteAggregateEntry(w, e);
  }
  w.U32(static_cast<uint32_t>(delta.segment_nodes.size()));
  for (const SegmentNode& node : delta.segment_nodes) {
    WriteSegmentNode(w, node);
  }
  w.U32(static_cast<uint32_t>(delta.rule_executions.size()));
  for (const RuleExecution& exec : delta.rule_executions) {
    WriteRuleExecution(w, exec);
  }
  std::string framed;
  AppendFramed(&framed, w.str());
  TEMPLEX_RETURN_IF_ERROR(journal_->Append(framed));
  TEMPLEX_RETURN_IF_ERROR(journal_->Sync());
  timer.Stop();
  if (writes_ != nullptr) {
    writes_->Increment();
    bytes_->Increment(static_cast<int64_t>(framed.size()));
    write_seconds_->Observe(seconds);
  }
  LogEvent(obs::EventLevel::kInfo, "delta.committed",
           {{"generation", std::to_string(generation_)},
            {"bytes", std::to_string(framed.size())},
            {"round", std::to_string(delta.cursor.stats.rounds)}});
  return Status::OK();
}

Result<ChaseCheckpoint> CheckpointStore::Load(uint64_t expected_config_hash) {
  Result<ChaseCheckpoint> loaded = LoadImpl(expected_config_hash);
  if (loaded.ok()) {
    LogEvent(obs::EventLevel::kInfo, "load.ok",
             {{"generation", std::to_string(generation_)},
              {"facts", std::to_string(loaded.value().nodes.size())}});
  } else if (loaded.status().code() == StatusCode::kDataLoss) {
    // A corrupt committed checkpoint is exactly what the flight recorder
    // exists for — record it before the caller turns it into exit code 6.
    LogEvent(obs::EventLevel::kError, "load.dataloss",
             {{"status", loaded.status().ToString()}});
  }
  return loaded;
}

Result<ChaseCheckpoint> CheckpointStore::LoadImpl(
    uint64_t expected_config_hash) {
  if (!opened_) return Status::Internal("CheckpointStore used before Open()");

  // --- Snapshot: must parse completely, footer included. It was committed
  // by a rename, so any damage is real corruption — kDataLoss, never a
  // silent fresh start.
  Result<std::string> snapshot_content =
      fs_->ReadFile(JoinPath(dir_, kSnapshotName));
  if (!snapshot_content.ok()) return snapshot_content.status();
  const std::string& data = snapshot_content.value();
  if (data.size() < sizeof(kMagic) ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::DataLoss("checkpoint snapshot: bad magic");
  }

  ChaseCheckpoint checkpoint;
  FileHeader header;
  bool saw_header = false;
  bool saw_symbols = false;
  bool saw_footer = false;
  uint64_t footer_nodes = 0;
  uint64_t footer_aggregates = 0;

  RecordScanner scanner(data, sizeof(kMagic));
  while (true) {
    std::string_view payload;
    size_t offset = 0;
    const RecordScanner::Next next = scanner.Read(&payload, &offset);
    if (next == RecordScanner::Next::kEof) break;
    if (next == RecordScanner::Next::kCorrupt) {
      if (corrupt_records_ != nullptr) corrupt_records_->Increment();
      return Status::DataLoss(
          "checkpoint snapshot: torn or corrupt record at offset " +
          std::to_string(scanner.pos()));
    }
    if (saw_footer) {
      return Status::DataLoss(
          "checkpoint snapshot: data after footer at offset " +
          std::to_string(offset));
    }
    ByteReader r(payload, offset);
    const uint8_t type = r.U8();
    if (!saw_header) {
      if (type != kSnapshotHeader || !ReadFileHeader(r, &header)) {
        return MalformedRecord("snapshot header", offset);
      }
      TEMPLEX_RETURN_IF_ERROR(
          CheckFileHeader(header, expected_config_hash, "snapshot"));
      checkpoint.config_hash = header.config_hash;
      saw_header = true;
      continue;
    }
    switch (type) {
      case kSymbols: {
        const uint32_t n = r.U32();
        if (!r.FitCount(n, 4)) return MalformedRecord("symbols", offset);
        for (uint32_t i = 0; i < n; ++i) {
          checkpoint.symbols.push_back(r.Str());
        }
        if (!r.ok()) return MalformedRecord("symbols", offset);
        saw_symbols = true;
        break;
      }
      case kNodes: {
        if (!saw_symbols) {
          return Status::DataLoss(
              "checkpoint snapshot: nodes before symbol table at offset " +
              std::to_string(offset));
        }
        const uint32_t n = r.U32();
        if (!r.FitCount(n, 17)) return MalformedRecord("nodes", offset);
        for (uint32_t i = 0; i < n; ++i) {
          ChaseNode node;
          if (!ReadNode(r, checkpoint.symbols, &node)) {
            return MalformedRecord("nodes", offset);
          }
          checkpoint.nodes.push_back(std::move(node));
        }
        break;
      }
      case kAggregates: {
        const uint32_t n = r.U32();
        if (!r.FitCount(n, 17)) return MalformedRecord("aggregates", offset);
        for (uint32_t i = 0; i < n; ++i) {
          AggregateEntryRecord entry;
          if (!ReadAggregateEntry(r, &entry)) {
            return MalformedRecord("aggregates", offset);
          }
          checkpoint.aggregates.push_back(std::move(entry));
        }
        break;
      }
      case kSegmentNodes: {
        const uint32_t n = r.U32();
        if (!r.FitCount(n, 20)) return MalformedRecord("segment nodes", offset);
        for (uint32_t i = 0; i < n; ++i) {
          SegmentNode node;
          if (!ReadSegmentNode(r, &node)) {
            return MalformedRecord("segment nodes", offset);
          }
          checkpoint.segment_nodes.push_back(node);
        }
        break;
      }
      case kRuleExecutions: {
        const uint32_t n = r.U32();
        if (!r.FitCount(n, 33)) {
          return MalformedRecord("rule executions", offset);
        }
        for (uint32_t i = 0; i < n; ++i) {
          RuleExecution exec;
          if (!ReadRuleExecution(r, &exec)) {
            return MalformedRecord("rule executions", offset);
          }
          checkpoint.rule_executions.push_back(exec);
        }
        break;
      }
      case kSnapshotFooter: {
        if (!ReadCursor(r, &checkpoint.cursor)) {
          return MalformedRecord("footer", offset);
        }
        footer_nodes = r.U64();
        footer_aggregates = r.U64();
        if (!r.ok() || !r.AtEnd()) return MalformedRecord("footer", offset);
        saw_footer = true;
        break;
      }
      default:
        return Status::DataLoss(
            "checkpoint snapshot: unknown record type " +
            std::to_string(type) + " at offset " + std::to_string(offset));
    }
  }
  if (!saw_footer) {
    return Status::DataLoss(
        "checkpoint snapshot: truncated (no footer record)");
  }
  if (footer_nodes != checkpoint.nodes.size() ||
      footer_aggregates != checkpoint.aggregates.size()) {
    return Status::DataLoss(
        "checkpoint snapshot: footer counts disagree with records (" +
        std::to_string(footer_nodes) + " vs " +
        std::to_string(checkpoint.nodes.size()) + " nodes)");
  }
  generation_ = header.generation;

  // --- Journal: replay deltas up to the last intact record. A torn or
  // corrupt tail is the expected residue of a crash mid-append — resume
  // from just before it.
  Result<std::string> journal_content =
      fs_->ReadFile(JoinPath(dir_, JournalName(generation_)));
  if (!journal_content.ok()) {
    if (journal_content.status().code() == StatusCode::kNotFound) {
      // Crash between snapshot commit and journal creation: the snapshot
      // alone is the state.
      return checkpoint;
    }
    return journal_content.status();
  }
  const std::string& jdata = journal_content.value();
  auto crash_cut = [&]() {
    if (corrupt_records_ != nullptr) corrupt_records_->Increment();
    LogEvent(obs::EventLevel::kWarn, "journal.torn_tail",
             {{"generation", std::to_string(generation_)}});
  };
  if (jdata.size() < sizeof(kMagic) ||
      std::memcmp(jdata.data(), kMagic, sizeof(kMagic)) != 0) {
    // Journal died before its magic was durable; zero deltas committed.
    crash_cut();
    return checkpoint;
  }
  RecordScanner jscanner(jdata, sizeof(kMagic));
  bool saw_journal_header = false;
  while (true) {
    std::string_view payload;
    size_t offset = 0;
    const RecordScanner::Next next = jscanner.Read(&payload, &offset);
    if (next == RecordScanner::Next::kEof) break;
    if (next == RecordScanner::Next::kCorrupt) {
      crash_cut();
      break;
    }
    ByteReader r(payload, offset);
    const uint8_t type = r.U8();
    if (!saw_journal_header) {
      FileHeader jheader;
      if (type != kJournalHeader || !ReadFileHeader(r, &jheader)) {
        return MalformedRecord("journal header", offset);
      }
      TEMPLEX_RETURN_IF_ERROR(
          CheckFileHeader(jheader, expected_config_hash, "journal"));
      if (jheader.generation != generation_) {
        return Status::DataLoss(
            "checkpoint journal: generation " +
            std::to_string(jheader.generation) +
            " does not match its file name (expected " +
            std::to_string(generation_) + ")");
      }
      saw_journal_header = true;
      continue;
    }
    if (type != kDelta) {
      return Status::DataLoss("checkpoint journal: unexpected record type " +
                              std::to_string(type) + " at offset " +
                              std::to_string(offset));
    }
    // Parse the whole delta before applying any of it, so a malformed
    // record never leaves the checkpoint half-updated.
    CheckpointDelta delta;
    if (!ReadCursor(r, &delta.cursor)) {
      return MalformedRecord("delta cursor", offset);
    }
    const uint32_t syms = r.U32();
    if (!r.FitCount(syms, 4)) return MalformedRecord("delta symbols", offset);
    for (uint32_t i = 0; i < syms; ++i) delta.new_symbols.push_back(r.Str());
    if (!r.ok()) return MalformedRecord("delta symbols", offset);
    // Delta nodes may reference symbols interned in this same delta, so
    // grow the table before parsing them.
    for (std::string& name : delta.new_symbols) {
      checkpoint.symbols.push_back(std::move(name));
    }
    const uint32_t nodes = r.U32();
    if (!r.FitCount(nodes, 17)) return MalformedRecord("delta nodes", offset);
    for (uint32_t i = 0; i < nodes; ++i) {
      ChaseNode node;
      if (!ReadNode(r, checkpoint.symbols, &node)) {
        return MalformedRecord("delta nodes", offset);
      }
      delta.nodes.push_back(std::move(node));
    }
    const uint32_t alts = r.U32();
    if (!r.FitCount(alts, 17)) {
      return MalformedRecord("delta alternatives", offset);
    }
    const size_t node_count = checkpoint.nodes.size() + delta.nodes.size();
    for (uint32_t i = 0; i < alts; ++i) {
      AlternativeRecord alt;
      alt.fact = r.I32();
      if (!ReadDerivationCore(r, &alt.derivation.rule_index,
                              &alt.derivation.binding,
                              &alt.derivation.parents,
                              &alt.derivation.contributions)) {
        return MalformedRecord("delta alternatives", offset);
      }
      if (alt.fact < 0 || static_cast<size_t>(alt.fact) >= node_count) {
        return Status::DataLoss(
            "checkpoint journal: alternative for out-of-range fact " +
            std::to_string(alt.fact) + " at offset " +
            std::to_string(offset));
      }
      delta.alternatives.push_back(std::move(alt));
    }
    const uint32_t aggs = r.U32();
    if (!r.FitCount(aggs, 17)) {
      return MalformedRecord("delta aggregates", offset);
    }
    for (uint32_t i = 0; i < aggs; ++i) {
      AggregateEntryRecord entry;
      if (!ReadAggregateEntry(r, &entry)) {
        return MalformedRecord("delta aggregates", offset);
      }
      delta.aggregates.push_back(std::move(entry));
    }
    const uint32_t segs = r.U32();
    if (!r.FitCount(segs, 20)) {
      return MalformedRecord("delta segment nodes", offset);
    }
    for (uint32_t i = 0; i < segs; ++i) {
      SegmentNode node;
      if (!ReadSegmentNode(r, &node)) {
        return MalformedRecord("delta segment nodes", offset);
      }
      delta.segment_nodes.push_back(node);
    }
    const uint32_t execs = r.U32();
    if (!r.FitCount(execs, 33)) {
      return MalformedRecord("delta rule executions", offset);
    }
    for (uint32_t i = 0; i < execs; ++i) {
      RuleExecution exec;
      if (!ReadRuleExecution(r, &exec)) {
        return MalformedRecord("delta rule executions", offset);
      }
      delta.rule_executions.push_back(exec);
    }
    if (!r.AtEnd()) return MalformedRecord("delta", offset);
    // Apply.
    for (ChaseNode& node : delta.nodes) {
      checkpoint.nodes.push_back(std::move(node));
    }
    for (AlternativeRecord& alt : delta.alternatives) {
      checkpoint.nodes[alt.fact].alternatives.push_back(
          std::move(alt.derivation));
    }
    for (AggregateEntryRecord& entry : delta.aggregates) {
      checkpoint.aggregates.push_back(std::move(entry));
    }
    for (const SegmentNode& node : delta.segment_nodes) {
      checkpoint.segment_nodes.push_back(node);
    }
    for (const RuleExecution& exec : delta.rule_executions) {
      checkpoint.rule_executions.push_back(exec);
    }
    checkpoint.cursor = delta.cursor;
  }

  // The cursor's delta window starts at the graph size before the last
  // committed round, so it can never exceed the restored fact count
  // (equality means the run was at fixpoint).
  if (checkpoint.cursor.resume_delta >= 0 &&
      static_cast<size_t>(checkpoint.cursor.resume_delta) >
          checkpoint.nodes.size()) {
    return Status::DataLoss(
        "checkpoint: cursor at fact " +
        std::to_string(checkpoint.cursor.resume_delta) + " but only " +
        std::to_string(checkpoint.nodes.size()) + " facts restored");
  }
  return checkpoint;
}

}  // namespace templex
