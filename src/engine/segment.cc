#include "engine/segment.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <numeric>

namespace templex {

JoinMode JoinModeFromEnv(JoinMode fallback) {
  const char* env = std::getenv("TEMPLEX_JOIN_MODE");
  if (env == nullptr) return fallback;
  if (std::strcmp(env, "merge") == 0) return JoinMode::kMerge;
  if (std::strcmp(env, "probe") == 0) return JoinMode::kProbe;
  return fallback;
}

bool SegmentValueLess(const Value& a, const Value& b) {
  if (a.is_numeric() && b.is_numeric()) {
    const double x = a.AsDouble();
    const double y = b.AsDouble();
    const bool x_nan = std::isnan(x);
    const bool y_nan = std::isnan(y);
    if (x_nan || y_nan) return !x_nan && y_nan;  // non-NaN < NaN, NaN ~ NaN
    return x < y;
  }
  return a < b;
}

bool SegmentValueEquivalent(const Value& a, const Value& b) {
  return !SegmentValueLess(a, b) && !SegmentValueLess(b, a);
}

namespace {

bool IsNanValue(const Value& v) {
  return v.is_numeric() && std::isnan(v.AsDouble());
}

// (value, row) order for one column: the sort key of a position's view.
// The row tie-break makes the order total and keeps equal runs ascending
// by row index — and rows are id-sorted, so runs ascend by fact id.
struct ColumnLess {
  const std::vector<Value>* column;
  bool operator()(uint32_t a, uint32_t b) const {
    const Value& va = (*column)[a];
    const Value& vb = (*column)[b];
    if (SegmentValueLess(va, vb)) return true;
    if (SegmentValueLess(vb, va)) return false;
    return a < b;
  }
};

}  // namespace

DeltaSegment::DeltaSegment(Symbol predicate, int arity,
                           std::vector<FactId> ids,
                           std::vector<std::vector<Value>> columns)
    : predicate_(predicate),
      arity_(arity),
      ids_(std::move(ids)),
      columns_(std::move(columns)) {
  sorted_.resize(static_cast<size_t>(arity_));
  for (int pos = 0; pos < arity_; ++pos) {
    std::vector<uint32_t>& view = sorted_[static_cast<size_t>(pos)];
    view.resize(ids_.size());
    std::iota(view.begin(), view.end(), 0u);
    std::sort(view.begin(), view.end(),
              ColumnLess{&columns_[static_cast<size_t>(pos)]});
  }
  BuildTypedKeys();
  ComputeApproxBytes();
}

void DeltaSegment::ComputeApproxBytes() {
  int64_t total = static_cast<int64_t>(ids_.size() * sizeof(FactId));
  for (const std::vector<Value>& col : columns_) {
    for (const Value& v : col) total += v.ApproxBytes();
  }
  for (const std::vector<uint32_t>& view : sorted_) {
    total += static_cast<int64_t>(view.size() * sizeof(uint32_t));
  }
  for (const std::vector<double>& keys : num_keys_) {
    total += static_cast<int64_t>(keys.size() * sizeof(double));
  }
  for (const std::vector<std::string_view>& keys : str_keys_) {
    total += static_cast<int64_t>(keys.size() * sizeof(std::string_view));
  }
  approx_bytes_ = total;
}

void DeltaSegment::BuildTypedKeys() {
  num_keys_.assign(static_cast<size_t>(arity_), {});
  str_keys_.assign(static_cast<size_t>(arity_), {});
  for (int pos = 0; pos < arity_; ++pos) {
    const std::vector<Value>& col = columns_[static_cast<size_t>(pos)];
    bool all_num = !col.empty();
    bool all_str = !col.empty();
    for (const Value& v : col) {
      if (!v.is_numeric() || std::isnan(v.AsDouble())) all_num = false;
      if (!v.is_string()) all_str = false;
      if (!all_num && !all_str) break;
    }
    const std::vector<uint32_t>& view = sorted_[static_cast<size_t>(pos)];
    if (all_num) {
      std::vector<double>& keys = num_keys_[static_cast<size_t>(pos)];
      keys.reserve(view.size());
      for (uint32_t row : view) keys.push_back(col[row].AsDouble());
    } else if (all_str) {
      std::vector<std::string_view>& keys =
          str_keys_[static_cast<size_t>(pos)];
      keys.reserve(view.size());
      for (uint32_t row : view) keys.push_back(col[row].string_value());
    }
  }
}

DeltaSegment DeltaSegment::Merge(const DeltaSegment& a, const DeltaSegment& b) {
  DeltaSegment merged;
  merged.predicate_ = a.predicate_;
  merged.arity_ = a.arity_;
  merged.ids_.reserve(a.rows() + b.rows());
  merged.ids_.insert(merged.ids_.end(), a.ids_.begin(), a.ids_.end());
  merged.ids_.insert(merged.ids_.end(), b.ids_.begin(), b.ids_.end());
  merged.columns_.resize(static_cast<size_t>(a.arity_));
  for (int pos = 0; pos < a.arity_; ++pos) {
    std::vector<Value>& col = merged.columns_[static_cast<size_t>(pos)];
    col.reserve(merged.ids_.size());
    const std::vector<Value>& ca = a.columns_[static_cast<size_t>(pos)];
    const std::vector<Value>& cb = b.columns_[static_cast<size_t>(pos)];
    col.insert(col.end(), ca.begin(), ca.end());
    col.insert(col.end(), cb.begin(), cb.end());
  }
  // Linear merge of the two inputs' already-sorted views (b's rows shift
  // by a.rows()) — no from-scratch sort, so size-tiered consolidation
  // stays amortized-linear per round.
  merged.sorted_.resize(static_cast<size_t>(a.arity_));
  const uint32_t shift = static_cast<uint32_t>(a.rows());
  for (int pos = 0; pos < a.arity_; ++pos) {
    const std::vector<uint32_t>& va = a.sorted_[static_cast<size_t>(pos)];
    const std::vector<uint32_t>& vb = b.sorted_[static_cast<size_t>(pos)];
    std::vector<uint32_t>& out = merged.sorted_[static_cast<size_t>(pos)];
    out.reserve(va.size() + vb.size());
    const std::vector<Value>& col = merged.columns_[static_cast<size_t>(pos)];
    size_t i = 0;
    size_t j = 0;
    while (i < va.size() && j < vb.size()) {
      const uint32_t ra = va[i];
      const uint32_t rb = vb[j] + shift;
      // Equal values: a's row first (smaller row index keeps the tie-break).
      if (SegmentValueLess(col[rb], col[ra])) {
        out.push_back(rb);
        ++j;
      } else {
        out.push_back(ra);
        ++i;
      }
    }
    for (; i < va.size(); ++i) out.push_back(va[i]);
    for (; j < vb.size(); ++j) out.push_back(vb[j] + shift);
  }
  merged.BuildTypedKeys();
  merged.ComputeApproxBytes();
  return merged;
}

DeltaSegment::Run DeltaSegment::EqualRangeGeneral(int pos,
                                                  const Value& probe) const {
  if (IsNanValue(probe)) return Run{};
  const std::vector<uint32_t>& view = sorted_[static_cast<size_t>(pos)];
  const std::vector<Value>& col = columns_[static_cast<size_t>(pos)];
  auto lo = std::lower_bound(
      view.begin(), view.end(), probe,
      [&col](uint32_t row, const Value& v) {
        return SegmentValueLess(col[row], v);
      });
  auto hi = std::upper_bound(
      lo, view.end(), probe,
      [&col](const Value& v, uint32_t row) {
        return SegmentValueLess(v, col[row]);
      });
  return Run{view.data() + (lo - view.begin()), view.data() + (hi - view.begin())};
}

DeltaSegment::Run DeltaSegment::Restrict(Run run, FactId lo, FactId hi) const {
  const uint32_t* begin = std::lower_bound(
      run.begin, run.end, lo,
      [this](uint32_t row, FactId id) { return ids_[row] < id; });
  const uint32_t* end = std::lower_bound(
      begin, run.end, hi,
      [this](uint32_t row, FactId id) { return ids_[row] < id; });
  return Run{begin, end};
}

std::pair<size_t, size_t> DeltaSegment::RowRange(FactId lo, FactId hi) const {
  auto first = std::lower_bound(ids_.begin(), ids_.end(), lo);
  auto last = std::lower_bound(first, ids_.end(), hi);
  return {static_cast<size_t>(first - ids_.begin()),
          static_cast<size_t>(last - ids_.begin())};
}

void SegmentChain::Append(DeltaSegment segment) {
  if (!regular_) return;
  if (arity_ < 0) arity_ = segment.arity();
  segments_.push_back(std::move(segment));
  // Size-tiered consolidation: adjacent segments keep ascending id ranges,
  // so merging the last two preserves the chain invariant.
  while (segments_.size() >= 2 &&
         segments_[segments_.size() - 1].rows() >=
             segments_[segments_.size() - 2].rows()) {
    DeltaSegment merged = DeltaSegment::Merge(
        segments_[segments_.size() - 2], segments_[segments_.size() - 1]);
    segments_.pop_back();
    segments_.back() = std::move(merged);
  }
}

void SegmentChain::MarkIrregular() {
  regular_ = false;
  segments_.clear();
}

std::vector<uint32_t> LexOrder(const DeltaSegment& seg) {
  std::vector<uint32_t> order(seg.rows());
  std::iota(order.begin(), order.end(), 0u);
  const int arity = seg.arity();
  std::sort(order.begin(), order.end(), [&seg, arity](uint32_t a, uint32_t b) {
    for (int pos = 0; pos < arity; ++pos) {
      const Value& va = seg.value(pos, a);
      const Value& vb = seg.value(pos, b);
      if (SegmentValueLess(va, vb)) return true;
      if (SegmentValueLess(vb, va)) return false;
    }
    return a < b;
  });
  return order;
}

std::vector<uint32_t> SortTuples(
    const std::vector<std::vector<Value>>& tuples) {
  std::vector<uint32_t> order(tuples.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&tuples](uint32_t a, uint32_t b) {
              const std::vector<Value>& ta = tuples[a];
              const std::vector<Value>& tb = tuples[b];
              for (size_t pos = 0; pos < ta.size(); ++pos) {
                if (SegmentValueLess(ta[pos], tb[pos])) return true;
                if (SegmentValueLess(tb[pos], ta[pos])) return false;
              }
              return a < b;
            });
  return order;
}

namespace {

// Three-way compare of a candidate tuple against a segment row, starting
// at column `from` (earlier columns are known equal). Returns the sign and
// reports the length of the equal prefix found.
int CompareFrom(const std::vector<Value>& tuple, const DeltaSegment& seg,
                uint32_t row, int from, int arity, int* eq_prefix) {
  for (int pos = from; pos < arity; ++pos) {
    const Value& a = tuple[static_cast<size_t>(pos)];
    const Value& b = seg.value(pos, row);
    if (SegmentValueLess(a, b)) {
      *eq_prefix = pos;
      return -1;
    }
    if (SegmentValueLess(b, a)) {
      *eq_prefix = pos;
      return 1;
    }
  }
  *eq_prefix = arity;
  return 0;
}

int SharedPrefix(const std::vector<Value>& a, const std::vector<Value>& b,
                 int arity) {
  int pos = 0;
  while (pos < arity && SegmentValueEquivalent(a[static_cast<size_t>(pos)],
                                               b[static_cast<size_t>(pos)])) {
    ++pos;
  }
  return pos;
}

}  // namespace

std::vector<uint32_t> RetainNewTuples(
    const DeltaSegment& seg, const std::vector<uint32_t>& lex,
    const std::vector<std::vector<Value>>& tuples,
    const std::vector<uint32_t>& order) {
  std::vector<uint32_t> kept;
  const int arity = seg.arity();
  size_t j = 0;  // cursor into the segment's lex order
  const std::vector<Value>* prev = nullptr;  // previous sorted candidate
  // Equality prefix between the previous candidate and lex[j], carried
  // across candidates while j stands still (the CacheRetainEntry cache).
  int seg_eq_prefix = 0;
  for (uint32_t idx : order) {
    const std::vector<Value>& tuple = tuples[idx];
    int cand_shared = 0;
    if (prev != nullptr) {
      cand_shared = SharedPrefix(tuple, *prev, arity);
      if (cand_shared == arity) continue;  // duplicate candidate: collapse
    }
    prev = &tuple;
    bool duplicate = false;
    while (j < lex.size()) {
      // prev-candidate == seg[j] on seg_eq_prefix columns and this
      // candidate == prev-candidate on cand_shared columns, so the first
      // min() columns need no re-compare.
      const int start = std::min(cand_shared, seg_eq_prefix);
      int eq_prefix = 0;
      const int cmp =
          CompareFrom(tuple, seg, lex[j], start, arity, &eq_prefix);
      if (cmp < 0) {
        seg_eq_prefix = eq_prefix;
        break;  // candidate precedes every remaining segment row: new
      }
      if (cmp == 0) {
        seg_eq_prefix = arity;
        duplicate = true;
        break;
      }
      ++j;  // segment row precedes the candidate: advance the scan
      seg_eq_prefix = 0;
      cand_shared = 0;  // nothing known about the new row
    }
    if (!duplicate) kept.push_back(idx);
  }
  return kept;
}

}  // namespace templex
