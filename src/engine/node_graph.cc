#include "engine/node_graph.h"

#include <utility>

namespace templex {

void NodeGraph::AddSegmentNode(Symbol predicate, int64_t round,
                               FactId id_begin, FactId id_end) {
  if (id_begin >= id_end) return;
  if (id_end <= restored_limit_) return;  // covered by restored history
  segment_nodes_.push_back(SegmentNode{predicate, round, id_begin, id_end});
}

void NodeGraph::AddRuleExecution(const RuleExecution& exec) {
  rule_executions_.push_back(exec);
  if (exec.skipped) {
    ++skipped_rules_;
  } else {
    ++executed_rules_;
    merge_choices_ += exec.merge_atoms;
    probe_choices_ += exec.probe_atoms;
  }
}

bool NodeGraph::PredicateGrewSince(Symbol predicate, FactId since) const {
  // Nodes are appended in seal order: rounds ascend across the vector, but
  // ranges of sibling nodes within one round can interleave. A node with
  // id_end <= since proves every strictly-earlier round is stale too (all
  // their ids sit below this round's delta window) — so after meeting one,
  // only the rest of its own round still needs checking.
  bool saw_stale = false;
  int64_t stale_round = 0;
  for (auto it = segment_nodes_.rbegin(); it != segment_nodes_.rend(); ++it) {
    if (saw_stale && it->round != stale_round) break;
    if (it->id_end <= since) {
      if (!saw_stale) {
        saw_stale = true;
        stale_round = it->round;
      }
      continue;
    }
    if (it->predicate == predicate) return true;
  }
  return false;
}

void NodeGraph::Restore(std::vector<SegmentNode> nodes,
                        std::vector<RuleExecution> executions,
                        FactId restored_limit) {
  segment_nodes_ = std::move(nodes);
  rule_executions_.clear();
  merge_choices_ = 0;
  probe_choices_ = 0;
  skipped_rules_ = 0;
  executed_rules_ = 0;
  for (const RuleExecution& exec : executions) AddRuleExecution(exec);
  restored_limit_ = restored_limit;
}

}  // namespace templex
