#include "engine/query_planner.h"

#include <cstdlib>
#include <deque>
#include <set>
#include <string>

#include "datalog/magic.h"

namespace templex {
namespace {

// Below this many cone EDB facts a full chase is effectively free; the
// top-down pass's bookkeeping would dominate.
constexpr int64_t kSmallConeFacts = 64;

// Fixed overhead factor charged to the query-driven side: the relevance
// pass re-enumerates joins the restricted chase then performs again.
constexpr double kQsqrOverhead = 2.0;

struct ConeStats {
  std::set<std::string> predicates;
  int rules = 0;
  bool recursive = false;
};

ConeStats GoalCone(const Program& program, const std::string& goal_pred) {
  ConeStats cone;
  std::deque<std::string> work{goal_pred};
  cone.predicates.insert(goal_pred);
  while (!work.empty()) {
    std::string pred = work.front();
    work.pop_front();
    for (const Rule& rule : program.rules()) {
      if (rule.is_constraint || rule.head.predicate != pred) continue;
      ++cone.rules;
      for (const auto* atoms : {&rule.body, &rule.negative_body}) {
        for (const Atom& atom : *atoms) {
          if (atom.predicate == rule.head.predicate) cone.recursive = true;
          if (cone.predicates.insert(atom.predicate).second) {
            work.push_back(atom.predicate);
          } else if (program.IsIntensional(atom.predicate)) {
            // A revisited IDB predicate means a cycle through the cone.
            cone.recursive = true;
          }
        }
      }
    }
  }
  return cone;
}

}  // namespace

const char* EvalModeName(EvalMode mode) {
  switch (mode) {
    case EvalMode::kAuto:
      return "auto";
    case EvalMode::kMaterialize:
      return "materialize";
    case EvalMode::kQsqr:
      return "qsqr";
  }
  return "unknown";
}

Result<EvalMode> ParseEvalMode(std::string_view text) {
  if (text == "auto") return EvalMode::kAuto;
  if (text == "materialize") return EvalMode::kMaterialize;
  if (text == "qsqr") return EvalMode::kQsqr;
  return Status::InvalidArgument("unknown eval mode '" + std::string(text) +
                                 "' (want auto, materialize, or qsqr)");
}

QueryPlan PlanQuery(const Program& program, const std::vector<Fact>& edb,
                    const Fact& goal_pattern, EvalMode requested) {
  QueryPlan plan;
  plan.arity = goal_pattern.arity();
  for (const Value& arg : goal_pattern.args) {
    if (!arg.is_null()) ++plan.bound_args;
  }
  plan.edb_facts = static_cast<int64_t>(edb.size());

  if (requested == EvalMode::kAuto) {
    if (const char* env = std::getenv("TEMPLEX_EVAL_MODE");
        env != nullptr && *env != '\0') {
      if (Result<EvalMode> parsed = ParseEvalMode(env);
          parsed.ok() && parsed.value() != EvalMode::kAuto) {
        requested = parsed.value();
      }
    }
  }

  ConeStats cone = GoalCone(program, goal_pattern.predicate);
  plan.cone_rules = cone.rules;
  plan.recursive_cone = cone.recursive;
  for (const Fact& fact : edb) {
    if (cone.predicates.count(fact.predicate) > 0) ++plan.cone_edb_facts;
  }

  // Abstract work units: a chase touches every cone EDB fact once per cone
  // rule (recursion multiplies the passes); a query-driven run touches the
  // same shape scaled by the fraction of the instance the bound arguments
  // select, plus a fixed re-enumeration overhead.
  double recursion_factor = cone.recursive ? 4.0 : 1.0;
  plan.materialize_cost = static_cast<double>(plan.cone_edb_facts) *
                          static_cast<double>(plan.cone_rules > 0
                                                  ? plan.cone_rules
                                                  : 1) *
                          recursion_factor;
  double selectivity =
      plan.arity > 0
          ? static_cast<double>(plan.arity - plan.bound_args) /
                static_cast<double>(plan.arity)
          : 1.0;
  plan.query_cost = plan.materialize_cost * selectivity * kQsqrOverhead +
                    static_cast<double>(plan.cone_edb_facts);

  if (requested == EvalMode::kMaterialize) {
    plan.mode = EvalMode::kMaterialize;
    plan.reason = "forced by --eval-mode=materialize";
    return plan;
  }
  if (requested == EvalMode::kQsqr) {
    plan.mode = EvalMode::kQsqr;
    plan.reason = "forced by --eval-mode=qsqr";
    return plan;
  }

  if (plan.bound_args == 0) {
    plan.mode = EvalMode::kMaterialize;
    plan.reason =
        "goal has no bound arguments; enumeration needs the full relation";
    return plan;
  }
  if (plan.cone_edb_facts < kSmallConeFacts) {
    plan.mode = EvalMode::kMaterialize;
    plan.reason = "cone EDB (" + std::to_string(plan.cone_edb_facts) +
                  " facts) below the " + std::to_string(kSmallConeFacts) +
                  "-fact threshold; full chase is effectively free";
    return plan;
  }
  MagicRewriteResult rewrite = MagicRewrite(program, goal_pattern);
  if (!rewrite.rewritten) {
    plan.mode = EvalMode::kMaterialize;
    plan.reason = "magic rewrite refused: " + rewrite.refusal_reason;
    return plan;
  }
  if (plan.query_cost < plan.materialize_cost) {
    plan.mode = EvalMode::kQsqr;
  } else {
    plan.mode = EvalMode::kMaterialize;
  }
  plan.reason = "estimated query cost " + std::to_string(plan.query_cost) +
                " vs materialize " + std::to_string(plan.materialize_cost) +
                " over a " + std::to_string(plan.cone_edb_facts) +
                "-fact cone with " + std::to_string(plan.cone_rules) +
                " rules";
  return plan;
}

}  // namespace templex
