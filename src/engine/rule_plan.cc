#include "engine/rule_plan.h"

#include <algorithm>

namespace templex {

namespace {

bool VectorContains(const std::vector<std::string>& names,
                    const std::string& n) {
  return std::find(names.begin(), names.end(), n) != names.end();
}

int SlotOf(std::vector<std::string>* slot_names, const std::string& name) {
  for (size_t i = 0; i < slot_names->size(); ++i) {
    if ((*slot_names)[i] == name) return static_cast<int>(i);
  }
  slot_names->push_back(name);
  return static_cast<int>(slot_names->size() - 1);
}

// Shared by both CompileMatchPlan overloads; `resolve` maps a predicate
// name to its symbol (interning or lookup-only).
template <typename Resolve>
void Compile(RulePlan* plan, Resolve&& resolve) {
  plan->body.clear();
  plan->slot_names.clear();
  // Slots whose variable first occurred in an atom BEFORE the current one.
  // bound_at_entry must not see slots introduced by the current atom's own
  // earlier positions: those values exist only per candidate fact.
  std::vector<bool> bound_by_earlier_atoms;
  for (const Atom& atom : plan->rule->body) {
    AtomPlan ap;
    ap.predicate = resolve(atom.predicate);
    ap.arity = atom.arity();
    ap.terms.reserve(atom.terms.size());
    for (const Term& term : atom.terms) {
      TermPlan tp;
      if (term.is_constant()) {
        tp.is_constant = true;
        tp.constant = term.constant_value();
        tp.bound_at_entry = true;
      } else {
        const size_t slots_before = plan->slot_names.size();
        tp.slot = SlotOf(&plan->slot_names, term.variable_name());
        tp.binds = plan->slot_names.size() > slots_before;  // fresh slot
        tp.bound_at_entry =
            tp.slot < static_cast<int>(bound_by_earlier_atoms.size()) &&
            bound_by_earlier_atoms[tp.slot];
      }
      if (tp.bound_at_entry && ap.probe_position < 0) {
        ap.probe_position =
            static_cast<int>(ap.terms.size());  // first bound position
      }
      ap.terms.push_back(std::move(tp));
    }
    bound_by_earlier_atoms.resize(plan->slot_names.size(), true);
    plan->body.push_back(std::move(ap));
  }
  plan->head_predicate = plan->rule->is_constraint
                             ? kInvalidSymbol
                             : resolve(plan->rule->head.predicate);
  plan->compiled = true;
}

}  // namespace

RulePlan MakeRulePlan(const Rule& rule, int index) {
  RulePlan plan;
  plan.rule = &rule;
  plan.index = index;
  plan.pre_conditions = rule.PreAggregateConditions();
  plan.post_conditions = rule.PostAggregateConditions();
  plan.existential_vars = rule.ExistentialVariableNames();
  if (rule.has_aggregate()) {
    const Aggregate& agg = *rule.aggregate;
    // Group key: head variables plus post-condition variables, minus the
    // aggregate result and existential variables.
    auto add_group_var = [&plan, &agg](const std::string& v) {
      if (v == agg.result_variable) return;
      if (VectorContains(plan.existential_vars, v)) return;
      if (!VectorContains(plan.group_vars, v)) plan.group_vars.push_back(v);
    };
    for (const std::string& v : rule.HeadVariableNames()) add_group_var(v);
    for (const Condition* c : plan.post_conditions) {
      for (const std::string& v : c->VariableNames()) add_group_var(v);
    }
    plan.explicit_contributor_keys = !agg.contributor_keys.empty();
    if (!plan.explicit_contributor_keys) {
      for (const std::string& v : rule.AllBoundVariableNames()) {
        if (v == agg.result_variable) continue;
        if (!VectorContains(plan.group_vars, v)) {
          plan.contributor_vars.push_back(v);
        }
      }
    } else {
      plan.contributor_vars = agg.contributor_keys;
    }
  }
  return plan;
}

void CompileMatchPlan(RulePlan* plan, SymbolTable* symbols) {
  Compile(plan, [symbols](const std::string& name) {
    return symbols->Intern(name);
  });
}

void CompileMatchPlan(RulePlan* plan, const SymbolTable& symbols) {
  Compile(plan, [&symbols](const std::string& name) {
    return symbols.Lookup(name);
  });
}

}  // namespace templex
