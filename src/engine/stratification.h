#ifndef TEMPLEX_ENGINE_STRATIFICATION_H_
#define TEMPLEX_ENGINE_STRATIFICATION_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/program.h"

namespace templex {

// Computes a stratification of the program's predicates for
// negation-as-failure: a level per predicate such that positive
// dependencies never decrease the level and negative dependencies strictly
// increase it. Fails with InvalidArgument when the program negates through
// recursion (no stratification exists).
Result<std::map<std::string, int>> StratifyProgram(const Program& program);

// Rule indexes grouped by the stratum of their head predicate, ascending.
// Programs without negation yield a single stratum with every rule.
Result<std::vector<std::vector<int>>> RuleStrata(const Program& program);

}  // namespace templex

#endif  // TEMPLEX_ENGINE_STRATIFICATION_H_
