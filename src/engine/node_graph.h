#ifndef TEMPLEX_ENGINE_NODE_GRAPH_H_
#define TEMPLEX_ENGINE_NODE_GRAPH_H_

#include <cstdint>
#include <vector>

#include "datalog/symbol.h"
#include "engine/fact.h"

namespace templex {

// One sealed delta of a predicate: the fact-id range [id_begin, id_end)
// that round `round` contributed (round 0 is the EDB load, or on resume
// the whole restored base). These are the nodes of the trigger graph —
// a rule is only worth executing when at least one of its body predicates
// gained a node since the rule's last execution.
struct SegmentNode {
  Symbol predicate = kInvalidSymbol;
  int64_t round = 0;
  FactId id_begin = 0;
  FactId id_end = 0;

  friend bool operator==(const SegmentNode&, const SegmentNode&) = default;
};

// One rule execution the chase decided on (whether or not it ran): which
// passes actually scanned pivot rows, which were skipped because the pivot
// window was empty, and how each body atom's join was sourced. Recorded on
// the driving thread once per (rule, round) — never per worker task — so
// the totals are identical at any thread count and any join mode's probe
// fallbacks are visible in chase.join.*.
struct RuleExecution {
  int rule_index = 0;
  int stratum = 0;
  int64_t round = 0;
  int passes_run = 0;
  int passes_skipped = 0;
  int merge_atoms = 0;  // body-atom join choices resolved to merge-join
  int probe_atoms = 0;  // body-atom join choices resolved to index probe
  bool skipped = false;  // no pass had pivot rows: matching bypassed entirely

  friend bool operator==(const RuleExecution&, const RuleExecution&) = default;
};

// Append-only record of the chase's segment nodes and rule executions.
// Checkpoints serialize both vectors, so a resumed run reports the same
// chase.join.* counters as the uninterrupted one: Restore seeds the
// history and the restored watermark suppresses the duplicate node records
// the post-resume initial seal would otherwise add (the restored base is
// already covered by the restored nodes).
class NodeGraph {
 public:
  // Records the delta [id_begin, id_end) predicate `predicate` gained in
  // `round`. Ranges entirely at or below the restored watermark are
  // dropped (already present from Restore). Empty ranges are dropped.
  void AddSegmentNode(Symbol predicate, int64_t round, FactId id_begin,
                      FactId id_end);

  void AddRuleExecution(const RuleExecution& exec);

  // True when `predicate` gained any fact at id >= `since` — the trigger
  // test: a rule whose every body predicate is unchanged since its last
  // execution cannot produce new matches.
  bool PredicateGrewSince(Symbol predicate, FactId since) const;

  const std::vector<SegmentNode>& segment_nodes() const {
    return segment_nodes_;
  }
  const std::vector<RuleExecution>& rule_executions() const {
    return rule_executions_;
  }

  int64_t merge_choices() const { return merge_choices_; }
  int64_t probe_choices() const { return probe_choices_; }
  int64_t skipped_rules() const { return skipped_rules_; }
  int64_t executed_rules() const { return executed_rules_; }

  // Content-based footprint: both records are flat structs, so element
  // counts times element sizes (never vector capacities) is exact.
  int64_t approx_bytes() const {
    return static_cast<int64_t>(segment_nodes_.size() * sizeof(SegmentNode)) +
           static_cast<int64_t>(rule_executions_.size() *
                                sizeof(RuleExecution));
  }

  // Seeds the graph from a checkpoint and arms the watermark: subsequent
  // AddSegmentNode calls covering only ids below `restored_limit` are
  // duplicates of restored history and are ignored.
  void Restore(std::vector<SegmentNode> nodes,
               std::vector<RuleExecution> executions, FactId restored_limit);

 private:
  std::vector<SegmentNode> segment_nodes_;
  std::vector<RuleExecution> rule_executions_;
  FactId restored_limit_ = 0;
  int64_t merge_choices_ = 0;
  int64_t probe_choices_ = 0;
  int64_t skipped_rules_ = 0;
  int64_t executed_rules_ = 0;
};

}  // namespace templex

#endif  // TEMPLEX_ENGINE_NODE_GRAPH_H_
