#include "engine/chase_graph.h"

#include <algorithm>

namespace templex {

namespace {

// Fixed per-node charge for the dedup index entry and the per-predicate id
// list slot. A constant (rather than live bucket-count arithmetic) keeps
// the figure a pure function of graph content.
constexpr int64_t kPerNodeIndexBytes = 64;

}  // namespace

int64_t ApproxBytes(const AggregateContribution& contribution) {
  int64_t total = static_cast<int64_t>(sizeof(AggregateContribution)) +
                  contribution.input.ApproxBytes() -
                  static_cast<int64_t>(sizeof(Value));
  total += static_cast<int64_t>(contribution.parents.size() * sizeof(FactId));
  return total;
}

int64_t ApproxBytes(const Derivation& derivation) {
  int64_t total = static_cast<int64_t>(sizeof(Derivation)) +
                  static_cast<int64_t>(derivation.rule_label.size()) +
                  derivation.binding.ApproxBytes() +
                  static_cast<int64_t>(derivation.parents.size() *
                                       sizeof(FactId));
  for (const AggregateContribution& c : derivation.contributions) {
    total += ApproxBytes(c);
  }
  return total;
}

int64_t ApproxBytes(const ChaseNode& node) {
  int64_t total = static_cast<int64_t>(sizeof(ChaseNode)) +
                  node.fact.ApproxBytes() -
                  static_cast<int64_t>(sizeof(Fact)) +
                  static_cast<int64_t>(node.rule_label.size()) +
                  node.binding.ApproxBytes() +
                  static_cast<int64_t>(node.parents.size() * sizeof(FactId));
  for (const AggregateContribution& c : node.contributions) {
    total += ApproxBytes(c);
  }
  for (const Derivation& d : node.alternatives) total += ApproxBytes(d);
  return total;
}

std::pair<FactId, bool> ChaseGraph::AddNode(ChaseNode node) {
  const size_t hash = node.fact.Hash();
  auto [first, last] = index_.equal_range(hash);
  for (auto it = first; it != last; ++it) {
    if (nodes_[it->second].fact == node.fact) return {it->second, false};
  }
  const FactId id = static_cast<FactId>(nodes_.size());
  node.fact.pred_symbol = symbols_.Intern(node.fact.predicate);
  if (node.fact.pred_symbol >= static_cast<Symbol>(by_predicate_.size())) {
    by_predicate_.resize(node.fact.pred_symbol + 1);
  }
  by_predicate_[node.fact.pred_symbol].push_back(id);
  index_.emplace(hash, id);
  approx_bytes_ += ApproxBytes(node) + kPerNodeIndexBytes;
  nodes_.push_back(std::move(node));
  return {id, true};
}

std::optional<FactId> ChaseGraph::Find(const Fact& fact) const {
  auto [first, last] = index_.equal_range(fact.Hash());
  for (auto it = first; it != last; ++it) {
    if (nodes_[it->second].fact == fact) return it->second;
  }
  return std::nullopt;
}

std::vector<FactId> ChaseGraph::AncestorClosure(FactId id) const {
  std::vector<FactId> stack = {id};
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<FactId> result;
  while (!stack.empty()) {
    FactId current = stack.back();
    stack.pop_back();
    if (seen[current]) continue;
    seen[current] = true;
    result.push_back(current);
    for (FactId parent : nodes_[current].parents) {
      if (!seen[parent]) stack.push_back(parent);
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

bool ChaseGraph::DependsOn(FactId node, FactId target) const {
  if (target > node) return false;  // ancestors only have smaller ids
  if (target == node) return true;
  // Only ids in (target, node] can lie on a path to target; track visits
  // over just that range.
  const FactId base = target + 1;
  std::vector<bool> seen(static_cast<size_t>(node - target), false);
  std::vector<FactId> stack = {node};
  while (!stack.empty()) {
    const FactId current = stack.back();
    stack.pop_back();
    if (current == target) return true;
    if (current < base) continue;  // below target: no way back up
    if (seen[current - base]) continue;
    seen[current - base] = true;
    for (FactId parent : nodes_[current].parents) stack.push_back(parent);
  }
  return false;
}

const std::vector<FactId>& ChaseGraph::FactsOf(
    const std::string& predicate) const {
  return FactsOf(symbols_.Lookup(predicate));
}

const std::vector<FactId>& ChaseGraph::FactsOf(Symbol predicate) const {
  if (predicate < 0 || predicate >= static_cast<Symbol>(by_predicate_.size())) {
    return empty_;
  }
  return by_predicate_[predicate];
}

ChaseGraph ChaseGraph::WithAlternative(FactId id,
                                       size_t alternative_index) const {
  ChaseGraph copy = *this;
  ChaseNode& node = copy.nodes_[id];
  if (alternative_index < node.alternatives.size()) {
    Derivation primary;
    primary.rule_index = node.rule_index;
    primary.rule_label = node.rule_label;
    primary.binding = node.binding;
    primary.parents = node.parents;
    primary.contributions = node.contributions;
    Derivation chosen = node.alternatives[alternative_index];
    node.rule_index = chosen.rule_index;
    node.rule_label = std::move(chosen.rule_label);
    node.binding = std::move(chosen.binding);
    node.parents = std::move(chosen.parents);
    node.contributions = std::move(chosen.contributions);
    node.alternatives[alternative_index] = std::move(primary);
  }
  return copy;
}

std::string ChaseGraph::ToDot(FactId goal) const {
  std::vector<FactId> ids;
  if (goal == kInvalidFactId) {
    ids.resize(nodes_.size());
    for (FactId id = 0; id < size(); ++id) ids[id] = id;
  } else {
    ids = AncestorClosure(goal);
  }
  std::string dot = "digraph chase {\n  rankdir=TB;\n";
  for (FactId id : ids) {
    dot += "  n" + std::to_string(id) + " [label=\"" + nodes_[id].fact.ToString() +
           "\", shape=box];\n";
  }
  for (FactId id : ids) {
    for (FactId parent : nodes_[id].parents) {
      dot += "  n" + std::to_string(parent) + " -> n" + std::to_string(id) +
             " [label=\"" + nodes_[id].rule_label + "\"];\n";
    }
  }
  dot += "}\n";
  return dot;
}

}  // namespace templex
