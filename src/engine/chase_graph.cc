#include "engine/chase_graph.h"

#include <algorithm>

namespace templex {

std::pair<FactId, bool> ChaseGraph::AddNode(ChaseNode node) {
  auto it = index_.find(node.fact);
  if (it != index_.end()) return {it->second, false};
  FactId id = static_cast<FactId>(nodes_.size());
  index_.emplace(node.fact, id);
  nodes_.push_back(std::move(node));
  return {id, true};
}

std::optional<FactId> ChaseGraph::Find(const Fact& fact) const {
  auto it = index_.find(fact);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::vector<FactId> ChaseGraph::AncestorClosure(FactId id) const {
  std::vector<FactId> stack = {id};
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<FactId> result;
  while (!stack.empty()) {
    FactId current = stack.back();
    stack.pop_back();
    if (seen[current]) continue;
    seen[current] = true;
    result.push_back(current);
    for (FactId parent : nodes_[current].parents) {
      if (!seen[parent]) stack.push_back(parent);
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<FactId> ChaseGraph::FactsOf(const std::string& predicate) const {
  std::vector<FactId> result;
  for (FactId id = 0; id < size(); ++id) {
    if (nodes_[id].fact.predicate == predicate) result.push_back(id);
  }
  return result;
}

ChaseGraph ChaseGraph::WithAlternative(FactId id,
                                       size_t alternative_index) const {
  ChaseGraph copy = *this;
  ChaseNode& node = copy.nodes_[id];
  if (alternative_index < node.alternatives.size()) {
    Derivation primary;
    primary.rule_index = node.rule_index;
    primary.rule_label = node.rule_label;
    primary.binding = node.binding;
    primary.parents = node.parents;
    primary.contributions = node.contributions;
    Derivation chosen = node.alternatives[alternative_index];
    node.rule_index = chosen.rule_index;
    node.rule_label = std::move(chosen.rule_label);
    node.binding = std::move(chosen.binding);
    node.parents = std::move(chosen.parents);
    node.contributions = std::move(chosen.contributions);
    node.alternatives[alternative_index] = std::move(primary);
  }
  return copy;
}

std::string ChaseGraph::ToDot(FactId goal) const {
  std::vector<FactId> ids;
  if (goal == kInvalidFactId) {
    ids.resize(nodes_.size());
    for (FactId id = 0; id < size(); ++id) ids[id] = id;
  } else {
    ids = AncestorClosure(goal);
  }
  std::string dot = "digraph chase {\n  rankdir=TB;\n";
  for (FactId id : ids) {
    dot += "  n" + std::to_string(id) + " [label=\"" + nodes_[id].fact.ToString() +
           "\", shape=box];\n";
  }
  for (FactId id : ids) {
    for (FactId parent : nodes_[id].parents) {
      dot += "  n" + std::to_string(parent) + " -> n" + std::to_string(id) +
             " [label=\"" + nodes_[id].rule_label + "\"];\n";
    }
  }
  dot += "}\n";
  return dot;
}

}  // namespace templex
