#ifndef TEMPLEX_ENGINE_FACT_H_
#define TEMPLEX_ENGINE_FACT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datalog/symbol.h"
#include "datalog/value.h"

namespace templex {

// Identifier of a fact inside a ChaseGraph. Ids are assigned in derivation
// order, so a fact's parents always have smaller ids — proofs sorted by id
// are topologically ordered.
using FactId = int32_t;

inline constexpr FactId kInvalidFactId = -1;

// A ground tuple R(v1, ..., vn).
struct Fact {
  std::string predicate;
  std::vector<Value> args;
  // Interned id of `predicate`, assigned by the owning ChaseGraph when the
  // fact is inserted (kInvalidSymbol until then). The match/index hot path
  // compares this int; equality and hashing below stay on the string, so
  // boundary-constructed facts (parsers, queries, tests) and interned facts
  // agree. Only meaningful relative to that graph's SymbolTable.
  Symbol pred_symbol = kInvalidSymbol;

  Fact() = default;
  Fact(std::string pred, std::vector<Value> as)
      : predicate(std::move(pred)), args(std::move(as)) {}

  int arity() const { return static_cast<int>(args.size()); }

  bool operator==(const Fact& other) const {
    return predicate == other.predicate && args == other.args;
  }

  // "Default(\"C\")".
  std::string ToString() const;

  size_t Hash() const;

  // Content-based footprint (see Value::ApproxBytes): predicate length plus
  // argument bytes, independent of container capacities.
  int64_t ApproxBytes() const {
    int64_t total = static_cast<int64_t>(sizeof(Fact)) +
                    static_cast<int64_t>(predicate.size());
    for (const Value& v : args) total += v.ApproxBytes();
    return total;
  }
};

struct FactHash {
  size_t operator()(const Fact& f) const { return f.Hash(); }
};

}  // namespace templex

#endif  // TEMPLEX_ENGINE_FACT_H_
