#ifndef TEMPLEX_ENGINE_FACT_STORE_H_
#define TEMPLEX_ENGINE_FACT_STORE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "datalog/atom.h"
#include "datalog/binding.h"
#include "engine/chase_graph.h"
#include "engine/fact.h"
#include "engine/node_graph.h"
#include "engine/rule_plan.h"
#include "engine/segment.h"

namespace templex {

// Secondary index layer over a ChaseGraph used by the body matcher: facts
// per (predicate, argument position, value) so joins can scan only
// candidates agreeing with already-bound variables. Per-predicate lists
// live in the graph itself (ChaseGraph::FactsOf); this class only owns the
// position index and (in merge-join mode) the per-predicate columnar
// segment chains the merge path enumerates instead of probing.
//
// The position index is keyed by a packed 64-bit hash of
// (pred_symbol, position, value hash) — no string ever touches a probe.
// Hash collisions can merge two value groups into one candidate list;
// that is sound (and preserves ascending-id enumeration order) because
// every candidate is still verified by the full atom match. Collisions
// ARE counted (chase.index.collision_groups): each bucket remembers the
// (predicate, position, value-hash) triple of its first fact and flags the
// bucket the first time a fact with a different triple lands in it.
class FactStore {
 public:
  explicit FactStore(const ChaseGraph* graph) : graph_(graph) {}

  FactStore(const FactStore&) = delete;
  FactStore& operator=(const FactStore&) = delete;

  // Registers a newly inserted fact in the position index. Must be called
  // exactly once per ChaseGraph node, in id order, after the graph assigned
  // the fact's pred_symbol.
  void OnNewFact(FactId id);

  // All facts of a predicate, ascending by id (delegates to the graph's
  // per-predicate index).
  const std::vector<FactId>& FactsOf(const std::string& predicate) const {
    return graph_->FactsOf(predicate);
  }

  // Candidate facts that could match `atom` under `binding`: if some atom
  // position holds a constant or an already-bound variable, the most
  // selective position index is used; otherwise the full predicate list is
  // returned. Candidates still need a full MatchAtom check.
  const std::vector<FactId>& CandidatesFor(const Atom& atom,
                                           const Binding& binding) const;

  // Compiled-plan twin of CandidatesFor: slot-indexed bound lookups, int
  // predicate — the chase hot path. `slots` is the enumerator's per-slot
  // value array; which slots are readable is static (TermPlan::
  // bound_at_entry), so no bound flags travel with it.
  const std::vector<FactId>& CandidatesFor(const AtomPlan& atom,
                                           const Value* slots) const;

  // --- Columnar delta segments (merge-join mode) ---

  // Turns on segment building: every SealRound from now on appends the
  // new facts' columns to per-predicate chains. Off by default — probe
  // mode pays nothing for the machinery it never reads.
  void EnableSegments() { segments_enabled_ = true; }
  bool segments_enabled() const { return segments_enabled_; }

  // Turns segment building off and releases every chain — the memory
  // governor's soft-pressure degradation step. The matcher's join chooser
  // (ComputeAtomJoins) keys on segments_enabled(), so from the next round's
  // planning on, every atom falls back to the probe path; SealRound keeps
  // recording SegmentNodes (the trigger graph is semantics-relevant and
  // cheap). Call only between rounds: ChainOf pointers cached by compiled
  // plans die here.
  void DisableSegments() {
    segments_enabled_ = false;
    chains_.clear();
  }

  // Sealing heuristic: a predicate's chain is only built once the predicate
  // holds at least this many facts below the seal limit; the first build
  // then backfills one segment covering all of them, so a present chain
  // always spans [0, sealed_limit). Colder predicates stay chain-less —
  // ComputeAtomJoins sees arity() == -1 and probes, which recovers the
  // small-workload sealing overhead. <= 0 (the default) builds on first
  // contact. Hotness is a pure function of (predicate, seal limit), so
  // resumed runs make identical choices at identical limits.
  void SetSegmentHotMinFacts(int64_t min_facts) {
    segment_hot_min_facts_ = min_facts;
  }
  int64_t segment_hot_min_facts() const { return segment_hot_min_facts_; }

  // Restricts segment building to the flagged predicates (index = Symbol).
  // The matcher only merge-joins predicates occurring in positive rule
  // bodies, so chains for head-only output predicates are pure overhead —
  // the chase flags body predicates once plans are compiled. Predicates
  // beyond the vector (interned later) are treated as unflagged. An empty
  // vector means no filter: every predicate builds chains.
  void SetSegmentPredicates(std::vector<bool> wanted) {
    segment_predicates_ = std::move(wanted);
  }

  // Seals the facts in [sealed_limit, limit): records one SegmentNode per
  // predicate that grew (into `node_graph`, tagged `round`) and, when
  // segments are enabled, builds the round's columnar segments. Must be
  // called with non-decreasing limits, in id order, after the facts exist.
  void SealRound(FactId limit, NodeGraph* node_graph, int64_t round);

  // Highest id below which facts are covered by sealed segments. The merge
  // path only applies to windows within this limit.
  FactId sealed_limit() const { return sealed_limit_; }

  // Segment chain of a predicate, or nullptr when the predicate has no
  // sealed fact (or segments are disabled).
  const SegmentChain* ChainOf(Symbol predicate) const {
    if (predicate < 0 || predicate >= static_cast<Symbol>(chains_.size())) {
      return nullptr;
    }
    return &chains_[static_cast<size_t>(predicate)];
  }

  // Index shape, exported as chase.index.* counters at the end of a run.
  int64_t position_keys() const {
    return static_cast<int64_t>(by_position_.size());
  }
  int64_t position_entries() const;
  int64_t collision_groups() const { return collision_groups_; }

  // Content-based footprint of the position index plus the segment chains
  // (common/memory.h accounting; index entries and bucket overhead are
  // charged at fixed per-element rates, never hash-table capacities).
  int64_t approx_bytes() const {
    int64_t total = index_bytes_;
    for (const SegmentChain& chain : chains_) total += chain.approx_bytes();
    return total;
  }

  // Narrows PosKey to its low bits so tests can force collisions without
  // crafting hash-colliding values. Production keeps the full 64 bits.
  void set_position_key_mask_for_testing(uint64_t mask) {
    poskey_mask_ = mask;
  }

 private:
  // One position-index bucket: the candidate ids plus the identity of the
  // first (pred, pos, value-hash) triple that landed here, so later facts
  // can detect they were merged in by a PosKey collision. Distinct values
  // with EQUAL hashes remain indistinguishable — undetected but harmless,
  // the full atom match filters them.
  struct PosBucket {
    std::vector<FactId> ids;
    Symbol predicate = kInvalidSymbol;
    int position = -1;
    uint64_t value_hash = 0;
    bool collided = false;
  };

  // Packed probe key. Exact (pred, position) packing is not required —
  // downstream verification makes any collision harmless — but pred and
  // position are small, so this is near-injective in practice.
  uint64_t PosKey(Symbol predicate, int position, uint64_t value_hash) const {
    return HashCombine(
               (static_cast<uint64_t>(static_cast<uint32_t>(predicate)) << 8) ^
                   static_cast<uint64_t>(static_cast<uint32_t>(position)),
               value_hash) &
           poskey_mask_;
  }

  const ChaseGraph* graph_;
  std::unordered_map<uint64_t, PosBucket> by_position_;
  std::vector<FactId> empty_;
  int64_t collision_groups_ = 0;
  uint64_t poskey_mask_ = ~uint64_t{0};

  bool segments_enabled_ = false;
  std::vector<bool> segment_predicates_;  // empty: build for every predicate
  int64_t segment_hot_min_facts_ = 0;  // <= 0: build on first contact
  FactId sealed_limit_ = 0;
  std::vector<SegmentChain> chains_;  // indexed by predicate symbol
  int64_t index_bytes_ = 0;  // position-index footprint (OnNewFact)
};

// Returns true and extends `binding` iff `fact` matches `atom` under the
// current (partial) binding: constants must equal, variables unify.
bool MatchAtom(const Atom& atom, const Fact& fact, Binding* binding);

}  // namespace templex

#endif  // TEMPLEX_ENGINE_FACT_STORE_H_
