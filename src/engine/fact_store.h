#ifndef TEMPLEX_ENGINE_FACT_STORE_H_
#define TEMPLEX_ENGINE_FACT_STORE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "datalog/atom.h"
#include "datalog/binding.h"
#include "engine/chase_graph.h"
#include "engine/fact.h"

namespace templex {

// Secondary index layer over a ChaseGraph used by the body matcher: facts
// per predicate, and facts per (predicate, argument position, value) so
// joins can scan only candidates agreeing with already-bound variables.
class FactStore {
 public:
  explicit FactStore(const ChaseGraph* graph) : graph_(graph) {}

  FactStore(const FactStore&) = delete;
  FactStore& operator=(const FactStore&) = delete;

  // Registers a newly inserted fact in all indexes. Must be called exactly
  // once per ChaseGraph node, in id order.
  void OnNewFact(FactId id);

  // All facts of a predicate, ascending by id.
  const std::vector<FactId>& FactsOf(const std::string& predicate) const;

  // Candidate facts that could match `atom` under `binding`: if some atom
  // position holds a constant or an already-bound variable, the most
  // selective position index is used; otherwise the full predicate list is
  // returned. Candidates still need a full MatchAtom check.
  const std::vector<FactId>& CandidatesFor(const Atom& atom,
                                           const Binding& binding) const;

 private:
  struct PosKey {
    std::string predicate;
    int position;
    Value value;

    bool operator==(const PosKey& o) const {
      return position == o.position && predicate == o.predicate &&
             value == o.value;
    }
  };
  struct PosKeyHash {
    size_t operator()(const PosKey& k) const {
      size_t h = std::hash<std::string>{}(k.predicate);
      h ^= std::hash<int>{}(k.position) + 0x9e3779b9 + (h << 6) + (h >> 2);
      h ^= k.value.Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
      return h;
    }
  };

  const ChaseGraph* graph_;
  std::unordered_map<std::string, std::vector<FactId>> by_predicate_;
  std::unordered_map<PosKey, std::vector<FactId>, PosKeyHash> by_position_;
  std::vector<FactId> empty_;
};

// Returns true and extends `binding` iff `fact` matches `atom` under the
// current (partial) binding: constants must equal, variables unify.
bool MatchAtom(const Atom& atom, const Fact& fact, Binding* binding);

}  // namespace templex

#endif  // TEMPLEX_ENGINE_FACT_STORE_H_
