#ifndef TEMPLEX_ENGINE_FACT_STORE_H_
#define TEMPLEX_ENGINE_FACT_STORE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "datalog/atom.h"
#include "datalog/binding.h"
#include "engine/chase_graph.h"
#include "engine/fact.h"
#include "engine/rule_plan.h"

namespace templex {

// Secondary index layer over a ChaseGraph used by the body matcher: facts
// per (predicate, argument position, value) so joins can scan only
// candidates agreeing with already-bound variables. Per-predicate lists
// live in the graph itself (ChaseGraph::FactsOf); this class only owns the
// position index.
//
// The position index is keyed by a packed 64-bit hash of
// (pred_symbol, position, value hash) — no string ever touches a probe.
// Hash collisions can merge two value groups into one candidate list;
// that is sound (and preserves ascending-id enumeration order) because
// every candidate is still verified by the full atom match.
class FactStore {
 public:
  explicit FactStore(const ChaseGraph* graph) : graph_(graph) {}

  FactStore(const FactStore&) = delete;
  FactStore& operator=(const FactStore&) = delete;

  // Registers a newly inserted fact in the position index. Must be called
  // exactly once per ChaseGraph node, in id order, after the graph assigned
  // the fact's pred_symbol.
  void OnNewFact(FactId id);

  // All facts of a predicate, ascending by id (delegates to the graph's
  // per-predicate index).
  const std::vector<FactId>& FactsOf(const std::string& predicate) const {
    return graph_->FactsOf(predicate);
  }

  // Candidate facts that could match `atom` under `binding`: if some atom
  // position holds a constant or an already-bound variable, the most
  // selective position index is used; otherwise the full predicate list is
  // returned. Candidates still need a full MatchAtom check.
  const std::vector<FactId>& CandidatesFor(const Atom& atom,
                                           const Binding& binding) const;

  // Compiled-plan twin of CandidatesFor: slot-indexed bound lookups, int
  // predicate — the chase hot path. `slots`/`bound` are the enumerator's
  // per-slot value array and bound flags.
  const std::vector<FactId>& CandidatesFor(const AtomPlan& atom,
                                           const Value* slots,
                                           const uint8_t* bound) const;

  // Index shape, exported as chase.index.* counters at the end of a run.
  int64_t position_keys() const {
    return static_cast<int64_t>(by_position_.size());
  }
  int64_t position_entries() const;

 private:
  // Packed probe key. Exact (pred, position) packing is not required —
  // downstream verification makes any collision harmless — but pred and
  // position are small, so this is near-injective in practice.
  static uint64_t PosKey(Symbol predicate, int position, const Value& value) {
    return HashCombine(
        (static_cast<uint64_t>(static_cast<uint32_t>(predicate)) << 8) ^
            static_cast<uint64_t>(static_cast<uint32_t>(position)),
        value.Hash());
  }

  const ChaseGraph* graph_;
  std::unordered_map<uint64_t, std::vector<FactId>> by_position_;
  std::vector<FactId> empty_;
};

// Returns true and extends `binding` iff `fact` matches `atom` under the
// current (partial) binding: constants must equal, variables unify.
bool MatchAtom(const Atom& atom, const Fact& fact, Binding* binding);

}  // namespace templex

#endif  // TEMPLEX_ENGINE_FACT_STORE_H_
