#ifndef TEMPLEX_ENGINE_SEGMENT_H_
#define TEMPLEX_ENGINE_SEGMENT_H_

#include <cmath>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "datalog/symbol.h"
#include "datalog/value.h"
#include "engine/fact.h"

namespace templex {

// How the match enumerator sources candidates for a body atom (DESIGN.md
// §10): merge-join over sorted columnar delta segments, or the legacy
// hash probe into the FactStore position index. The mode is a pure
// execution-strategy knob — chase output is byte-identical either way.
enum class JoinMode {
  kMerge,  // columnar segments + merge-join where applicable (default)
  kProbe,  // legacy row-at-a-time hash probing only
};

// Resolves the effective join mode: the TEMPLEX_JOIN_MODE environment
// variable ("merge" / "probe") when set, otherwise `fallback`. Unknown
// values fall through to `fallback` — an env typo must not silently change
// semantics-neutral but perf-relevant behavior without a trace, so the
// caller default wins.
JoinMode JoinModeFromEnv(JoinMode fallback);

// Total order over Values for sorted segment views. Value::operator< is
// not a strict weak order in the presence of NaN (NaN compares false both
// ways against every number, making unequal numbers "equivalent"), so the
// segment order handles numerics explicitly: cross-kind by numeric value,
// with every non-NaN below NaN and all NaNs equivalent. Non-numeric pairs
// defer to Value::operator< (kind rank, then per-kind order) — Int and
// Double both rank strictly between Bool and String, so merging them into
// one numeric class preserves transitivity.
bool SegmentValueLess(const Value& a, const Value& b);

// Equivalence under SegmentValueLess. Coincides with Value::operator== on
// every pair except NaN-vs-NaN (equivalent here, unequal under ==), which
// is why EqualRange refuses NaN probes rather than return a run whose rows
// would all fail the == check.
bool SegmentValueEquivalent(const Value& a, const Value& b);

// An immutable, column-major slice of one predicate's facts: the delta a
// chase round (or the EDB load) contributed, sealed after the round by
// FactStore::SealRound. Rows are stored in ascending fact-id order; every
// argument position additionally carries a (value, row)-sorted view so the
// matcher can binary-search a join key and walk its equal run — rows
// within a run ascend by row index, hence by fact id, which is what keeps
// merge-join enumeration order identical to the legacy index scan.
//
// Columns own copies of the Values: ChaseGraph nodes live in a growing
// vector whose elements move on reallocation, and the copies pack the hot
// join data contiguously anyway.
class DeltaSegment {
 public:
  // `ids` ascending, `columns[pos][row]` the argument values; all rows of
  // one predicate and arity. Builds the per-position sorted views.
  DeltaSegment(Symbol predicate, int arity, std::vector<FactId> ids,
               std::vector<std::vector<Value>> columns);

  // Concatenates two segments with disjoint, adjacent id ranges
  // (a entirely before b); sorted views are merged linearly.
  static DeltaSegment Merge(const DeltaSegment& a, const DeltaSegment& b);

  Symbol predicate() const { return predicate_; }
  int arity() const { return arity_; }
  size_t rows() const { return ids_.size(); }
  FactId id(size_t row) const { return ids_[row]; }
  FactId id_begin() const { return ids_.empty() ? 0 : ids_.front(); }
  FactId id_end() const { return ids_.empty() ? 0 : ids_.back() + 1; }
  const Value& value(int pos, size_t row) const {
    return columns_[static_cast<size_t>(pos)][row];
  }
  const std::vector<uint32_t>& sorted_view(int pos) const {
    return sorted_[static_cast<size_t>(pos)];
  }

  // A contiguous run of a position's sorted view (row indices).
  struct Run {
    const uint32_t* begin = nullptr;
    const uint32_t* end = nullptr;
    bool empty() const { return begin == end; }
  };

  // Rows whose value at `pos` equals `probe` under Value::operator==, as
  // the equal run of the sorted view; rows ascend by id within the run.
  // NaN probes return the empty run (NaN == nothing, itself included) —
  // exactly what the legacy hash probe yields after verification.
  // Defined inline below: this runs once per candidate binding on the
  // chase hot path and the typed fast paths must inline into the matcher.
  Run EqualRange(int pos, const Value& probe) const;

  // Restricts a run to rows with id in [lo, hi) (binary search; run rows
  // ascend by id).
  Run Restrict(Run run, FactId lo, FactId hi) const;

  // Row range [first, last) with id in [lo, hi) — rows are id-sorted.
  std::pair<size_t, size_t> RowRange(FactId lo, FactId hi) const;

  // Content-based footprint (ids + columns + sorted views + typed keys),
  // computed once at construction/merge. Counts string lengths, never
  // capacities, so the figure is (up to typed-key eligibility of merged
  // columns) a function of segment content, not of chain shape.
  int64_t approx_bytes() const { return approx_bytes_; }

 private:
  // For Merge, which fills every field itself (linear view merge instead
  // of the constructor's from-scratch sort).
  DeltaSegment() = default;

  // Rebuilds the typed key arrays below from columns_ and sorted_.
  void BuildTypedKeys();

  // Recomputes approx_bytes_ from the populated fields (constructor and
  // Merge call it last).
  void ComputeApproxBytes();

  // Comparator-path EqualRange for columns without a typed key array.
  Run EqualRangeGeneral(int pos, const Value& probe) const;

  Symbol predicate_;
  int arity_;
  std::vector<FactId> ids_;                   // ascending
  std::vector<std::vector<Value>> columns_;   // [pos][row]
  std::vector<std::vector<uint32_t>> sorted_;  // [pos] rows by (value, row)
  // Typed sort keys in sorted-view order, so EqualRange can binary-search
  // contiguous machine values instead of dispatching SegmentValueLess per
  // probe step. num_keys_[pos] is populated iff every value of the column
  // is numeric and non-NaN (AsDouble order == segment order there);
  // str_keys_[pos] iff every value is a string (views into columns_, which
  // the segment owns and never mutates). Mixed columns leave both empty
  // and EqualRange takes the general comparator path.
  std::vector<std::vector<double>> num_keys_;
  std::vector<std::vector<std::string_view>> str_keys_;
  int64_t approx_bytes_ = 0;
};

// Per-predicate chain of delta segments with disjoint, ascending id
// ranges. Append consolidates size-tiered: whenever the newest segment has
// at least as many rows as its predecessor the two merge, so a chain holds
// O(log rows) segments and consolidation work stays amortized-linearithmic.
// Chain shape is output-invisible (enumeration concatenates the segments
// in id order), which is why a resumed run may legitimately hold one big
// restored segment where the uninterrupted run held several.
class SegmentChain {
 public:
  // `segment` must start at or after the chain's current id_end.
  void Append(DeltaSegment segment);

  const std::vector<DeltaSegment>& segments() const { return segments_; }
  int arity() const { return arity_; }
  // Content-based footprint: sum of the segments' (cached) figures.
  int64_t approx_bytes() const {
    int64_t total = 0;
    for (const DeltaSegment& seg : segments_) total += seg.approx_bytes();
    return total;
  }
  // False once the predicate showed more than one arity: the columnar
  // layout no longer applies and the matcher falls back to probing.
  bool regular() const { return regular_; }
  void MarkIrregular();

 private:
  std::vector<DeltaSegment> segments_;
  int arity_ = -1;
  bool regular_ = true;
};

// --- Node-level retain (TGChase's retainVsNodeFast / CacheRetainEntry) ---

// Row order of `seg` sorted lexicographically across all columns under
// SegmentValueLess (ties by row index).
std::vector<uint32_t> LexOrder(const DeltaSegment& seg);

// Of the candidate `tuples` (row-major, all of seg's arity), returns the
// indexes of those NOT already present in `seg`, in lexicographic order
// with duplicate candidates collapsed to their first occurrence. `order`
// is the candidates' lex-sorted index order (SortTuples) and `lex` the
// segment's (LexOrder).
//
// This is a single merge scan with the shared-prefix trick: consecutive
// sorted candidates usually agree on their leading columns, and the
// previous candidate's comparison against the current segment row already
// established an equality prefix — the next comparison starts at the
// minimum of the two prefixes instead of column 0, so wide tuples with
// long shared prefixes dedup in near-constant comparisons per row.
std::vector<uint32_t> RetainNewTuples(
    const DeltaSegment& seg, const std::vector<uint32_t>& lex,
    const std::vector<std::vector<Value>>& tuples,
    const std::vector<uint32_t>& order);

// Lexicographic index order of `tuples` under SegmentValueLess.
std::vector<uint32_t> SortTuples(const std::vector<std::vector<Value>>& tuples);

// --- inline hot path -----------------------------------------------------

namespace segment_internal {

// Branchless lower bound over a sorted key array: every step is a
// conditional move instead of a compare-and-branch, and the whole search
// inlines into the matcher's per-candidate probe.
template <typename K, typename P>
inline size_t LowerBoundIndex(const std::vector<K>& keys, const P& probe) {
  const K* base = keys.data();
  size_t n = keys.size();
  while (n > 1) {
    const size_t half = n / 2;
    base += (base[half - 1] < probe) ? half : 0;
    n -= half;
  }
  return (keys.empty() || !(*base < probe))
             ? static_cast<size_t>(base - keys.data())
             : static_cast<size_t>(base - keys.data()) + 1;
}

}  // namespace segment_internal

inline DeltaSegment::Run DeltaSegment::EqualRange(int pos,
                                                  const Value& probe) const {
  const std::vector<uint32_t>& view = sorted_[static_cast<size_t>(pos)];
  if (probe.is_numeric()) {
    const double p = probe.AsDouble();
    if (std::isnan(p)) return Run{};  // NaN == nothing, itself included
    const std::vector<double>& keys = num_keys_[static_cast<size_t>(pos)];
    if (!keys.empty()) {
      const size_t klo = segment_internal::LowerBoundIndex(keys, p);
      size_t khi = klo;  // equal runs are short: scan beats a second search
      while (khi < keys.size() && keys[khi] == p) ++khi;
      return Run{view.data() + klo, view.data() + khi};
    }
  } else if (probe.is_string()) {
    const std::vector<std::string_view>& keys =
        str_keys_[static_cast<size_t>(pos)];
    if (!keys.empty()) {
      const std::string_view p = probe.string_value();
      const size_t klo = segment_internal::LowerBoundIndex(keys, p);
      size_t khi = klo;
      while (khi < keys.size() && keys[khi] == p) ++khi;
      return Run{view.data() + klo, view.data() + khi};
    }
  }
  // Mixed column (or a probe kind the column cannot hold): the comparator
  // path. NaN numeric probes were rejected above, so it need not re-check.
  return EqualRangeGeneral(pos, probe);
}

}  // namespace templex

#endif  // TEMPLEX_ENGINE_SEGMENT_H_
