#ifndef TEMPLEX_ENGINE_CHASE_H_
#define TEMPLEX_ENGINE_CHASE_H_

#include <atomic>
#include <memory>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "datalog/program.h"
#include "engine/chase_graph.h"
#include "engine/fact.h"
#include "engine/node_graph.h"
#include "engine/segment.h"
#include "obs/metrics.h"
#include "obs/rule_profile.h"

namespace templex {

class AggregateState;  // engine/aggregate_state.h
class Fs;              // common/fs.h
class MemoryBudget;    // common/memory.h
class StallWatchdog;   // common/watchdog.h
class ThreadPool;      // common/thread_pool.h

namespace obs {
class EventLog;  // obs/event_log.h
class Tracer;    // obs/trace.h
}

// Live chase progress for long-lived hosts (src/service): when attached via
// ChaseConfig::progress, the run stores its completed-round count and total
// fact count here at every round boundary (and once at start, so a resumed
// run reports its restored position immediately). An external observer —
// the service's /readyz warming report — reads the atomics without touching
// the mid-chase graph. Written by the driving thread only; relaxed loads
// are fine (the values are advisory, not a synchronization point).
struct ChaseProgress {
  std::atomic<int64_t> rounds{0};
  std::atomic<int64_t> facts{0};
};

// Tuning and safety limits for a chase run.
struct ChaseConfig {
  // Hard cap on fixpoint rounds; exceeding it is a ResourceExhausted error
  // (the paper only considers programs with guaranteed termination, so the
  // caps act as guard rails for mis-specified inputs). 64-bit like
  // ChaseStats: fact counts outgrow int at the ROADMAP's target scale.
  int64_t max_rounds = 100000;
  // Hard cap on the total number of facts (extensional + derived).
  int64_t max_facts = 5000000;
  // When false, every round re-evaluates all rules over the whole database
  // (naive evaluation); used by the ablation benchmarks.
  bool semi_naive = true;
  // When true, any negative-constraint violation turns the whole run into a
  // FailedPrecondition error; otherwise violations are reported in
  // ChaseResult::violations.
  bool fail_on_violation = false;
  // How many alternative derivations to keep per fact (0 disables the
  // feature). Only acyclic re-derivations through a different rule or
  // different facts are recorded.
  int max_alternative_derivations = 4;
  // Threads for the match phase of each chase round. 1 (the default) keeps
  // the fully sequential engine; 0 means "use hardware concurrency"; N > 1
  // fans (rule, id-window) match tasks across N threads and merges their
  // buffered heads in canonical order before the sequential apply phase.
  // Successful runs are byte-identical across thread counts: same fact ids,
  // chase graph, provenance, stats, and per-rule counters (only the phase
  // *latency* histograms and span shapes differ — see DESIGN.md).
  int num_threads = 1;
  // How body atoms source their candidates (engine/segment.h): kMerge (the
  // default) seals each round's facts into sorted columnar segments and
  // merge-joins atoms whose predicate chains are regular; kProbe keeps the
  // legacy hash-probe-only path (the merge machinery then costs nothing).
  // A pure execution-strategy knob: match sets, enumeration order, and
  // every chase output are byte-identical in both modes, so — like
  // num_threads — it is deliberately outside the checkpoint config hash.
  // The ChaseEngine constructor lets the TEMPLEX_JOIN_MODE environment
  // variable ("merge"/"probe") override this field.
  JoinMode join_mode = JoinMode::kMerge;
  // Optional observability sinks (obs/metrics.h, obs/trace.h); both may be
  // null, in which case instrumented code paths reduce to one pointer test
  // each — tier-1 timings are unaffected. When `metrics` is set, the run
  // maintains per-rule firing/match/duplicate counters and per-phase
  // latency histograms (matching, head creation, aggregation, constraint
  // checking — VLog's breakdown) and ChaseResult::metrics carries the final
  // snapshot. When `tracer` is set, the run records nested spans
  // (chase.run -> chase.round -> chase.rule) exportable as Chrome
  // trace-event JSON. Both must outlive the run.
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
  // Flight recorder (obs/event_log.h); may be null, in which case event
  // sites reduce to one pointer test each. When set, the run records
  // structured events — run/stratum/round boundaries at info level, per
  // rule evaluation and per parallel match task at debug level, each
  // carrying the in-flight rule/stratum/round — and on any failing Run()
  // or Extend() (deadline, cancellation, chase error, checkpoint
  // kDataLoss) the engine dumps the recorder's last events to the log's
  // crash-report path, so chaos failures are diagnosable post-mortem.
  // Must outlive the run.
  obs::EventLog* event_log = nullptr;
  // Failure model (common/deadline.h): the run returns kDeadlineExceeded /
  // kCancelled — never crashes, hangs, or leaks — as soon as an
  // interruption point observes the deadline passed or the token fired.
  // Interruption points: run entry, every round boundary, and every match
  // enumerated (sequentially or on a pool thread; worker tasks abort
  // cooperatively and the pool is drained before the status returns).
  // Partial chase state is discarded — unless checkpointing (below) is on,
  // in which case the rounds committed before the interruption survive on
  // disk and a later run with `resume` continues from them.
  // Defaults: no deadline, no cancellation — zero-cost for callers that
  // leave them unset.
  Deadline deadline;
  CancellationToken cancel;
  // Resource governor (common/memory.h, DESIGN.md §11); may be null, in
  // which case footprint accounting costs one pointer test per round. When
  // set, the run reconciles its content-based footprint (chase graph +
  // provenance, position index, segment chains, trigger graph, aggregate
  // state) against the budget at every round boundary and exports
  // chase.memory.{bytes,peak_bytes,pressure_events}. Soft pressure sheds
  // accessory state in priority order — tracer buffers first, then the
  // columnar segment chains (falling back to JoinMode::kProbe, which is
  // output-invisible), then the flight-recorder rings. Hard pressure is
  // save-and-stop: the current round finishes, a final checkpoint commits
  // (when checkpointing is on), and Run() returns kResourceExhausted — a
  // later run with `checkpoint.resume` (on a bigger box, without the
  // budget) continues byte-identically. Like num_threads, the budget is an
  // execution-environment knob: deliberately outside the checkpoint config
  // hash. Must outlive the run.
  MemoryBudget* budget = nullptr;
  // Stall watchdog (common/watchdog.h); may be null. The run heartbeats it
  // from the match loop's interruption probes and at round boundaries, and
  // names the in-flight rule/stratum/round for its stall report. Detection
  // (StallWatchdog::Poll) runs on the owner's monitor thread or test clock;
  // on a stall the watchdog cancels the shared token and the run unwinds
  // with kCancelled at the next interruption point. Must outlive the run.
  StallWatchdog* watchdog = nullptr;
  // Progress publication hook (see ChaseProgress); may be null. Must
  // outlive the run. Purely observational: outside the checkpoint config
  // hash, no effect on outputs.
  ChaseProgress* progress = nullptr;
  // Sealing heuristic (FactStore::SetSegmentHotMinFacts): a predicate's
  // columnar chain is only built once the predicate holds this many facts,
  // then backfilled from fact 0; colder predicates stay on the probe path,
  // recovering the per-round sealing overhead on small workloads. <= 0
  // builds on first contact. A pure execution-strategy knob (join choices
  // shift, outputs do not): outside the checkpoint config hash.
  int64_t segment_hot_min_facts = 128;
  // Chaos knobs (tests/CI only): at the start of round `chaos_stall_round`,
  // the driving thread burns wall-clock in short cancellation-polling
  // slices without heartbeating the watchdog for `chaos_stall_ms` — a
  // simulated stuck rule. 0 disables. No chase state changes, so a run
  // killed here resumes byte-identically; outside the config hash.
  int64_t chaos_stall_ms = 0;
  int64_t chaos_stall_round = 2;
  // Crash-safe persistence (io/checkpoint.h, DESIGN.md §9). With a
  // directory set, Run() commits its state at round boundaries: a full
  // snapshot at round 0 (and every `snapshot_every_rounds` rounds), an
  // append-only journal delta every `every_rounds` rounds in between, and
  // a final flush at fixpoint. With `resume` also set, Run() restores a
  // committed checkpoint whose config hash matches this program + EDB +
  // semantics-affecting config, skips the restored rounds, and continues
  // to fixpoint — byte-identical to the uninterrupted run, at any thread
  // count (num_threads is deliberately outside the config hash).
  //
  // Applies to Run() only; Extend() ignores the policy (its input is an
  // already-saturated result, not a resumable run).
  struct CheckpointPolicy {
    // Filesystem to commit through; null means the real POSIX filesystem.
    // Chaos tests inject MemFs / FaultInjectingFs here.
    Fs* fs = nullptr;
    // Checkpoint directory; empty disables checkpointing entirely.
    std::string dir;
    // Journal a delta every N completed rounds.
    int64_t every_rounds = 1;
    // Replace the snapshot (and reset the journal) every N rounds.
    int64_t snapshot_every_rounds = 16;
    // Resume from the directory's committed checkpoint when present.
    bool resume = false;

    bool enabled() const { return !dir.empty(); }
  };
  CheckpointPolicy checkpoint;
};

// One match of a negative constraint's body (φ(x̄) → ⊥): the instance
// violates the constraint under this homomorphism.
struct ConstraintViolation {
  std::string rule_label;
  Binding binding;
  std::vector<FactId> facts;  // the matched body facts, in body order

  std::string ToString() const;
};

// All fields are 64-bit: at the ROADMAP's target scale the fact counts
// outgrow int, and the fields are folded into 64-bit metrics counters
// (chase.facts.*, chase.rounds, chase.matches) on snapshot anyway.
struct ChaseStats {
  int64_t initial_facts = 0;
  int64_t derived_facts = 0;
  int64_t rounds = 0;
  int64_t matches = 0;  // body homomorphisms enumerated
};

// Outcome of a chase run: the chase graph (which doubles as the saturated
// database) and run statistics.
struct ChaseResult {
  ChaseGraph graph;
  ChaseStats stats;
  // Snapshot of ChaseConfig::metrics taken at the end of the run (empty
  // when no registry was attached): per-rule counters, per-phase latency
  // histograms, and the ChaseStats fields as counters.
  obs::MetricsSnapshot metrics;
  // Per-(rule, stratum) cost attribution, collected when a metrics
  // registry is attached (empty otherwise), ordered by rule index then
  // stratum. The count columns are byte-identical across thread counts;
  // the seconds columns are wall-clock and are not (see obs/rule_profile.h).
  std::vector<obs::RuleProfile> rule_profiles;
  // Negative-constraint violations found after fixpoint (empty when the
  // program has no constraints or the instance satisfies them all).
  std::vector<ConstraintViolation> violations;
  // Opaque monotonic-aggregation state, carried so the chase can be
  // extended incrementally (ChaseEngine::Extend). Shared on copy; Extend
  // deep-copies before mutating.
  std::shared_ptr<const AggregateState> aggregate_state;
  // Fingerprint of the program that produced this result; Extend refuses a
  // mismatch.
  size_t program_fingerprint = 0;
  // Trigger-graph record of the run (engine/node_graph.h): per-round
  // segment nodes and per-(rule, round) execution decisions, including
  // which executions were skipped because no body predicate grew. Feeds the
  // chase.join.* counters and travels through checkpoints so resumed runs
  // report the same totals.
  NodeGraph node_graph;

  // Id of a fact in the saturated instance, or NotFound.
  Result<FactId> Find(const Fact& fact) const;

  // All facts of a predicate (extensional and derived).
  std::vector<Fact> FactsOf(const std::string& predicate) const;
};

// The chase procedure (§3 of the paper): saturates the database under the
// program's rules until fixpoint, recording full provenance in the chase
// graph. Supports the Vadalog extensions used by the financial KG
// applications: comparisons, arithmetic assignments, monotonic aggregation,
// and existential head variables (labelled nulls with restricted-chase
// style reuse).
class ChaseEngine {
 public:
  explicit ChaseEngine(ChaseConfig config = ChaseConfig());
  ~ChaseEngine();

  // Movable, not copyable: the engine owns its thread pool (spawned once in
  // the constructor when config.num_threads != 1 and reused across Run and
  // Extend calls).
  ChaseEngine(ChaseEngine&&) noexcept;
  ChaseEngine& operator=(ChaseEngine&&) noexcept;

  // Runs the chase of `program` over the extensional facts `edb`.
  Result<ChaseResult> Run(const Program& program,
                          const std::vector<Fact>& edb) const;

  // Incremental extension: continues a finished chase with `additional`
  // extensional facts, re-deriving only what the delta enables. Valid for
  // monotone programs only — programs with negation are rejected (new
  // facts can invalidate negation-as-failure conclusions), and `base` must
  // have been produced by the same `program`. Constraints are re-checked
  // over the full extended instance.
  Result<ChaseResult> Extend(ChaseResult base, const Program& program,
                             const std::vector<Fact>& additional) const;

 private:
  ChaseConfig config_;
  std::unique_ptr<ThreadPool> pool_;  // null when running sequentially
};

// Fingerprint used to tie a ChaseResult to its program (exposed for tests).
size_t ProgramFingerprint(const Program& program);

}  // namespace templex

#endif  // TEMPLEX_ENGINE_CHASE_H_
