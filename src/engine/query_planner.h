#ifndef TEMPLEX_ENGINE_QUERY_PLANNER_H_
#define TEMPLEX_ENGINE_QUERY_PLANNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "datalog/program.h"
#include "engine/fact.h"

namespace templex {

// How a point query is evaluated. kAuto lets the cost model below choose;
// the other two force a strategy (`templex_cli --eval-mode=...`). A forced
// kQsqr still falls back to materialization when the magic rewrite refuses
// (datalog/magic.h) — forcing the mode must never change answers.
enum class EvalMode { kAuto, kMaterialize, kQsqr };

const char* EvalModeName(EvalMode mode);
Result<EvalMode> ParseEvalMode(std::string_view text);

// The chooser's verdict plus the estimates it was based on — a
// VLog-costestimator-style decision surface (PAPERS.md), kept simple and
// fully deterministic so a plan is explainable in one log line.
struct QueryPlan {
  // Resolved strategy: kMaterialize or kQsqr, never kAuto.
  EvalMode mode = EvalMode::kMaterialize;
  // One-line rationale ("bound goal over 512-fact cone, est. 8x cheaper").
  std::string reason;

  // Estimates the decision used.
  int64_t edb_facts = 0;        // total EDB size
  int64_t cone_edb_facts = 0;   // EDB facts of predicates in the goal cone
  int cone_rules = 0;           // rules whose head is in the goal cone
  int bound_args = 0;           // non-Null goal arguments
  int arity = 0;                // goal arity
  bool recursive_cone = false;  // the cone contains recursion
  double materialize_cost = 0;  // abstract work units
  double query_cost = 0;
};

// Chooses materialize-then-query vs. query-driven evaluation for
// `goal_pattern` (Null arguments = free) from EDB sizes, rule fan-out,
// and goal boundness. `requested` == kMaterialize / kQsqr short-circuits
// the model. The TEMPLEX_EVAL_MODE environment variable (values
// "materialize" / "qsqr") overrides kAuto, mirroring TEMPLEX_JOIN_MODE.
QueryPlan PlanQuery(const Program& program, const std::vector<Fact>& edb,
                    const Fact& goal_pattern, EvalMode requested);

}  // namespace templex

#endif  // TEMPLEX_ENGINE_QUERY_PLANNER_H_
