#include "engine/matcher.h"

namespace templex {

namespace {

class MatchEnumerator {
 public:
  MatchEnumerator(const Rule& rule, const FactStore& store,
                  const ChaseGraph& graph, int delta_atom, FactId delta_begin,
                  FactId limit,
                  const std::function<Status(const BodyMatch&)>& callback)
      : rule_(rule),
        store_(store),
        graph_(graph),
        delta_atom_(delta_atom),
        delta_begin_(delta_begin),
        limit_(limit),
        callback_(callback) {}

  Status Run() {
    BodyMatch match;
    match.facts.reserve(rule_.body.size());
    return Descend(0, match);
  }

 private:
  bool AgeAllowed(int atom_index, FactId id) const {
    if (id >= limit_) return false;
    if (delta_atom_ < 0) return true;
    if (atom_index == delta_atom_) return id >= delta_begin_;
    if (atom_index < delta_atom_) return id < delta_begin_;
    return true;
  }

  Status Descend(size_t atom_index, BodyMatch& match) {
    if (atom_index == rule_.body.size()) {
      return callback_(match);
    }
    const Atom& atom = rule_.body[atom_index];
    const std::vector<FactId>& candidates =
        store_.CandidatesFor(atom, match.binding);
    // Facts emitted by the enclosing chase round are appended to the index
    // vectors while we iterate: use index-based access over a size snapshot
    // (the appended ids are >= limit and age-filtered out regardless).
    const size_t candidate_count = candidates.size();
    for (size_t i = 0; i < candidate_count; ++i) {
      const FactId id = candidates[i];
      if (!AgeAllowed(static_cast<int>(atom_index), id)) continue;
      Binding extended = match.binding;
      if (!MatchAtom(atom, graph_.node(id).fact, &extended)) continue;
      Binding saved = std::move(match.binding);
      match.binding = std::move(extended);
      match.facts.push_back(id);
      TEMPLEX_RETURN_IF_ERROR(Descend(atom_index + 1, match));
      match.facts.pop_back();
      match.binding = std::move(saved);
    }
    return Status::OK();
  }

  const Rule& rule_;
  const FactStore& store_;
  const ChaseGraph& graph_;
  const int delta_atom_;
  const FactId delta_begin_;
  const FactId limit_;
  const std::function<Status(const BodyMatch&)>& callback_;
};

}  // namespace

Status EnumerateMatches(
    const Rule& rule, const FactStore& store, const ChaseGraph& graph,
    int delta_atom, FactId delta_begin, FactId limit,
    const std::function<Status(const BodyMatch&)>& callback) {
  MatchEnumerator enumerator(rule, store, graph, delta_atom, delta_begin,
                             limit, callback);
  return enumerator.Run();
}

}  // namespace templex
