#include "engine/matcher.h"

#include <algorithm>

namespace templex {

namespace {

class MatchEnumerator {
 public:
  MatchEnumerator(const RulePlan& plan, const FactStore& store,
                  const ChaseGraph& graph, const MatchWindow& window,
                  const std::vector<AtomJoin>* joins,
                  const std::function<Status(const BodyMatch&)>& callback)
      : plan_(plan),
        store_(store),
        graph_(graph),
        window_(window),
        joins_(joins),
        callback_(callback),
        slots_(static_cast<size_t>(plan.num_slots())) {}

  Status Run() {
    match_.facts.reserve(plan_.body.size());
    return Descend(0);
  }

 private:
  bool AgeAllowed(int atom_index, FactId id) const {
    if (id >= window_.limit) return false;
    if (window_.pivot_atom < 0) return true;
    if (atom_index == window_.pivot_atom) {
      return id >= window_.pivot_begin && id < window_.pivot_end;
    }
    if (atom_index < window_.pivot_atom) return id < window_.pre_pivot_cap;
    return true;
  }

  // Unifies one candidate fact against a compiled atom: constants compare,
  // first-occurrence positions (binds) overwrite their slot, repeats
  // compare against it. Whether a position writes or compares is decided
  // at compile time (TermPlan::binds), so a failed candidate needs no
  // undo: its writes are only readable from positions strictly after the
  // failure point, which the next candidate re-writes before any read.
  bool MatchCandidate(const AtomPlan& ap, const Fact& fact) {
    if (ap.predicate != fact.pred_symbol || ap.arity != fact.arity()) {
      return false;
    }
    for (int pos = 0; pos < ap.arity; ++pos) {
      const TermPlan& t = ap.terms[pos];
      if (t.is_constant) {
        if (!(t.constant == fact.args[pos])) return false;
      } else if (t.binds) {
        slots_[t.slot] = fact.args[pos];
      } else {
        if (!(slots_[t.slot] == fact.args[pos])) return false;
      }
    }
    return true;
  }

  // Unifies a segment row against a compiled atom, reading the columnar
  // copy instead of the graph node. Predicate and arity need no check (the
  // chain is regular at the atom's arity by join-choice construction), and
  // `skip_pos` — the probed position — is already equal by EqualRange
  // (comparator equivalence coincides with operator== for the non-NaN
  // probes that reach here; NaN probes yield the empty run upstream).
  bool MatchCandidateSeg(const AtomPlan& ap, const DeltaSegment& seg,
                         size_t row, int skip_pos) {
    for (int pos = 0; pos < ap.arity; ++pos) {
      if (pos == skip_pos) continue;
      const TermPlan& t = ap.terms[pos];
      const Value& v = seg.value(pos, row);
      if (t.is_constant) {
        if (!(t.constant == v)) return false;
      } else if (t.binds) {
        slots_[t.slot] = v;
      } else {
        if (!(slots_[t.slot] == v)) return false;
      }
    }
    return true;
  }

  // Visits one admitted segment row: unify, recurse. Kept in a macro-free
  // always-inline helper shape by being small enough to inline into both
  // DescendMerge loops (the per-row call overhead was visible).
  inline Status VisitSegRow(size_t atom_index, const AtomPlan& atom,
                            const DeltaSegment& seg, size_t row,
                            int skip_pos) {
    if (!MatchCandidateSeg(atom, seg, row, skip_pos)) return Status::OK();
    match_.facts.push_back(seg.id(row));
    Status status = Descend(atom_index + 1);
    match_.facts.pop_back();
    return status;
  }

  // Merge-join sourcing for one atom: intersect the window's admitted id
  // interval with the chain's segments and, when the atom has a
  // bound-at-entry position, binary-search its equal run per segment.
  // Segments ascend by id range and rows within a run ascend by id, so the
  // visit order is ascending fact id — identical to the probe path's.
  Status DescendMerge(size_t atom_index, const AtomJoin& join) {
    const AtomPlan& atom = plan_.body[atom_index];
    FactId lo = 0;
    FactId hi = window_.limit;
    if (window_.pivot_atom >= 0) {
      const int ai = static_cast<int>(atom_index);
      if (ai == window_.pivot_atom) {
        lo = window_.pivot_begin;
        hi = std::min(hi, window_.pivot_end);
      } else if (ai < window_.pivot_atom) {
        hi = std::min(hi, window_.pre_pivot_cap);
      }
    }
    if (lo >= hi) return Status::OK();
    const Value* probe = nullptr;
    if (atom.probe_position >= 0) {
      const TermPlan& t = atom.terms[static_cast<size_t>(atom.probe_position)];
      probe = t.is_constant ? &t.constant : &slots_[t.slot];
    }
    for (const DeltaSegment& seg : join.chain->segments()) {
      if (seg.rows() == 0 || seg.id_begin() >= hi || seg.id_end() <= lo) {
        continue;  // segment entirely outside the admitted id interval
      }
      // The common window spans the whole segment; only clamp by id when
      // it does not (the pivoted/pre-pivot cases).
      const bool covered = lo <= seg.id_begin() && seg.id_end() <= hi;
      if (probe != nullptr) {
        DeltaSegment::Run run = seg.EqualRange(atom.probe_position, *probe);
        if (!covered) run = seg.Restrict(run, lo, hi);
        for (const uint32_t* p = run.begin; p != run.end; ++p) {
          TEMPLEX_RETURN_IF_ERROR(
              VisitSegRow(atom_index, atom, seg, *p, atom.probe_position));
        }
      } else {
        const auto [first, last] =
            covered ? std::pair<size_t, size_t>{0, seg.rows()}
                    : seg.RowRange(lo, hi);
        for (size_t row = first; row < last; ++row) {
          TEMPLEX_RETURN_IF_ERROR(
              VisitSegRow(atom_index, atom, seg, row, -1));
        }
      }
    }
    return Status::OK();
  }

  Status Descend(size_t atom_index) {
    if (atom_index == plan_.body.size()) {
      // Every slot is bound here (each came from some body atom), so the
      // name-keyed binding handed to the callback is total. Slot order is
      // first-occurrence order, matching the old string matcher's append
      // order byte for byte.
      match_.binding.AssignSlots(plan_.slot_names, slots_.data());
      return callback_(match_);
    }
    if (joins_ != nullptr && (*joins_)[atom_index].merge) {
      return DescendMerge(atom_index, (*joins_)[atom_index]);
    }
    const AtomPlan& atom = plan_.body[atom_index];
    const std::vector<FactId>& candidates =
        store_.CandidatesFor(atom, slots_.data());
    // Facts emitted by the enclosing chase round are appended to the index
    // vectors while we iterate: use index-based access over a size snapshot
    // (the appended ids are >= limit and age-filtered out regardless).
    const size_t candidate_count = candidates.size();
    for (size_t i = 0; i < candidate_count; ++i) {
      const FactId id = candidates[i];
      if (!AgeAllowed(static_cast<int>(atom_index), id)) continue;
      if (!MatchCandidate(atom, graph_.node(id).fact)) continue;
      match_.facts.push_back(id);
      TEMPLEX_RETURN_IF_ERROR(Descend(atom_index + 1));
      match_.facts.pop_back();
    }
    return Status::OK();
  }

  const RulePlan& plan_;
  const FactStore& store_;
  const ChaseGraph& graph_;
  const MatchWindow window_;
  const std::vector<AtomJoin>* joins_;  // nullptr: probe every atom
  const std::function<Status(const BodyMatch&)>& callback_;

  // Scratch match state: per-slot values. Bound-ness never needs tracking
  // at runtime — it is a compile-time property of each TermPlan (binds /
  // bound_at_entry), so backtracking is free: stale slot values left by a
  // failed candidate are unreachable until re-written. The BodyMatch is
  // materialized from the slots only at full-match depth.
  std::vector<Value> slots_;
  BodyMatch match_;
};

}  // namespace

void ComputeAtomJoins(const RulePlan& plan, const FactStore& store,
                      JoinMode mode, FactId limit,
                      std::vector<AtomJoin>* out) {
  out->assign(plan.body.size(), AtomJoin{});
  if (mode != JoinMode::kMerge || !store.segments_enabled() ||
      store.sealed_limit() < limit) {
    return;
  }
  for (size_t i = 0; i < plan.body.size(); ++i) {
    const AtomPlan& atom = plan.body[i];
    const SegmentChain* chain = store.ChainOf(atom.predicate);
    if (chain != nullptr && chain->regular() && chain->arity() == atom.arity) {
      (*out)[i].merge = true;
      (*out)[i].chain = chain;
    }
  }
}

std::vector<AtomJoin> ComputeAtomJoins(const RulePlan& plan,
                                       const FactStore& store, JoinMode mode,
                                       FactId limit) {
  std::vector<AtomJoin> joins;
  ComputeAtomJoins(plan, store, mode, limit, &joins);
  return joins;
}

Status EnumerateMatches(
    const RulePlan& plan, const FactStore& store, const ChaseGraph& graph,
    const MatchWindow& window,
    const std::function<Status(const BodyMatch&)>& callback) {
  MatchEnumerator enumerator(plan, store, graph, window, /*joins=*/nullptr,
                             callback);
  return enumerator.Run();
}

Status EnumerateMatches(
    const RulePlan& plan, const FactStore& store, const ChaseGraph& graph,
    const MatchWindow& window, const std::vector<AtomJoin>* joins,
    const std::function<Status(const BodyMatch&)>& callback) {
  MatchEnumerator enumerator(plan, store, graph, window, joins, callback);
  return enumerator.Run();
}

Status EnumerateMatches(
    const RulePlan& plan, const FactStore& store, const ChaseGraph& graph,
    int delta_atom, FactId delta_begin, FactId limit,
    const std::function<Status(const BodyMatch&)>& callback) {
  MatchWindow window;
  window.limit = limit;
  window.pivot_atom = delta_atom;
  window.pivot_begin = delta_begin;
  window.pivot_end = limit;
  window.pre_pivot_cap = delta_begin;
  return EnumerateMatches(plan, store, graph, window, callback);
}

Status EnumerateMatches(
    const Rule& rule, const FactStore& store, const ChaseGraph& graph,
    const MatchWindow& window,
    const std::function<Status(const BodyMatch&)>& callback) {
  RulePlan plan = MakeRulePlan(rule, 0);
  CompileMatchPlan(&plan, graph.symbols());  // lookup-only: graph is frozen
  return EnumerateMatches(plan, store, graph, window, callback);
}

Status EnumerateMatches(
    const Rule& rule, const FactStore& store, const ChaseGraph& graph,
    int delta_atom, FactId delta_begin, FactId limit,
    const std::function<Status(const BodyMatch&)>& callback) {
  MatchWindow window;
  window.limit = limit;
  window.pivot_atom = delta_atom;
  window.pivot_begin = delta_begin;
  window.pivot_end = limit;
  window.pre_pivot_cap = delta_begin;
  return EnumerateMatches(rule, store, graph, window, callback);
}

}  // namespace templex
