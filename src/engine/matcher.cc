#include "engine/matcher.h"

namespace templex {

namespace {

class MatchEnumerator {
 public:
  MatchEnumerator(const Rule& rule, const FactStore& store,
                  const ChaseGraph& graph, const MatchWindow& window,
                  const std::function<Status(const BodyMatch&)>& callback)
      : rule_(rule),
        store_(store),
        graph_(graph),
        window_(window),
        callback_(callback) {}

  Status Run() {
    BodyMatch match;
    match.facts.reserve(rule_.body.size());
    return Descend(0, match);
  }

 private:
  bool AgeAllowed(int atom_index, FactId id) const {
    if (id >= window_.limit) return false;
    if (window_.pivot_atom < 0) return true;
    if (atom_index == window_.pivot_atom) {
      return id >= window_.pivot_begin && id < window_.pivot_end;
    }
    if (atom_index < window_.pivot_atom) return id < window_.pre_pivot_cap;
    return true;
  }

  Status Descend(size_t atom_index, BodyMatch& match) {
    if (atom_index == rule_.body.size()) {
      return callback_(match);
    }
    const Atom& atom = rule_.body[atom_index];
    const std::vector<FactId>& candidates =
        store_.CandidatesFor(atom, match.binding);
    // Facts emitted by the enclosing chase round are appended to the index
    // vectors while we iterate: use index-based access over a size snapshot
    // (the appended ids are >= limit and age-filtered out regardless).
    const size_t candidate_count = candidates.size();
    // Candidates are matched into the one scratch binding; every exit from
    // a candidate — failed unification included, which may have bound a
    // prefix of the atom's variables — backtracks by truncating to the
    // depth this atom started at. Bind() only ever appends (an existing
    // entry is checked, never overwritten), so truncation restores the
    // exact pre-candidate state without copying a Binding per candidate.
    const size_t binding_mark = match.binding.size();
    for (size_t i = 0; i < candidate_count; ++i) {
      const FactId id = candidates[i];
      if (!AgeAllowed(static_cast<int>(atom_index), id)) continue;
      if (!MatchAtom(atom, graph_.node(id).fact, &match.binding)) {
        match.binding.Truncate(binding_mark);
        continue;
      }
      match.facts.push_back(id);
      TEMPLEX_RETURN_IF_ERROR(Descend(atom_index + 1, match));
      match.facts.pop_back();
      match.binding.Truncate(binding_mark);
    }
    return Status::OK();
  }

  const Rule& rule_;
  const FactStore& store_;
  const ChaseGraph& graph_;
  const MatchWindow window_;
  const std::function<Status(const BodyMatch&)>& callback_;
};

}  // namespace

Status EnumerateMatches(
    const Rule& rule, const FactStore& store, const ChaseGraph& graph,
    const MatchWindow& window,
    const std::function<Status(const BodyMatch&)>& callback) {
  MatchEnumerator enumerator(rule, store, graph, window, callback);
  return enumerator.Run();
}

Status EnumerateMatches(
    const Rule& rule, const FactStore& store, const ChaseGraph& graph,
    int delta_atom, FactId delta_begin, FactId limit,
    const std::function<Status(const BodyMatch&)>& callback) {
  MatchWindow window;
  window.limit = limit;
  window.pivot_atom = delta_atom;
  window.pivot_begin = delta_begin;
  window.pivot_end = limit;
  window.pre_pivot_cap = delta_begin;
  return EnumerateMatches(rule, store, graph, window, callback);
}

}  // namespace templex
