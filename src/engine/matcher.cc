#include "engine/matcher.h"

namespace templex {

namespace {

class MatchEnumerator {
 public:
  MatchEnumerator(const RulePlan& plan, const FactStore& store,
                  const ChaseGraph& graph, const MatchWindow& window,
                  const std::function<Status(const BodyMatch&)>& callback)
      : plan_(plan),
        store_(store),
        graph_(graph),
        window_(window),
        callback_(callback),
        slots_(static_cast<size_t>(plan.num_slots())),
        bound_(static_cast<size_t>(plan.num_slots()), 0) {
    trail_.reserve(slots_.size());
  }

  Status Run() {
    match_.facts.reserve(plan_.body.size());
    return Descend(0);
  }

 private:
  bool AgeAllowed(int atom_index, FactId id) const {
    if (id >= window_.limit) return false;
    if (window_.pivot_atom < 0) return true;
    if (atom_index == window_.pivot_atom) {
      return id >= window_.pivot_begin && id < window_.pivot_end;
    }
    if (atom_index < window_.pivot_atom) return id < window_.pre_pivot_cap;
    return true;
  }

  // Unifies one candidate fact against a compiled atom: constants compare,
  // bound slots compare, unbound slots bind and go on the trail. On
  // failure the caller undoes the trail to its mark — a partially bound
  // candidate leaves no residue.
  bool MatchCandidate(const AtomPlan& ap, const Fact& fact) {
    if (ap.predicate != fact.pred_symbol || ap.arity != fact.arity()) {
      return false;
    }
    for (int pos = 0; pos < ap.arity; ++pos) {
      const TermPlan& t = ap.terms[pos];
      if (t.is_constant) {
        if (!(t.constant == fact.args[pos])) return false;
      } else if (bound_[t.slot]) {
        if (!(slots_[t.slot] == fact.args[pos])) return false;
      } else {
        slots_[t.slot] = fact.args[pos];
        bound_[t.slot] = 1;
        trail_.push_back(t.slot);
      }
    }
    return true;
  }

  void UndoTo(size_t mark) {
    while (trail_.size() > mark) {
      bound_[static_cast<size_t>(trail_.back())] = 0;
      trail_.pop_back();
    }
  }

  Status Descend(size_t atom_index) {
    if (atom_index == plan_.body.size()) {
      // Every slot is bound here (each came from some body atom), so the
      // name-keyed binding handed to the callback is total. Slot order is
      // first-occurrence order, matching the old string matcher's append
      // order byte for byte.
      match_.binding.AssignSlots(plan_.slot_names, slots_.data());
      return callback_(match_);
    }
    const AtomPlan& atom = plan_.body[atom_index];
    const std::vector<FactId>& candidates =
        store_.CandidatesFor(atom, slots_.data(), bound_.data());
    // Facts emitted by the enclosing chase round are appended to the index
    // vectors while we iterate: use index-based access over a size snapshot
    // (the appended ids are >= limit and age-filtered out regardless).
    const size_t candidate_count = candidates.size();
    const size_t trail_mark = trail_.size();
    for (size_t i = 0; i < candidate_count; ++i) {
      const FactId id = candidates[i];
      if (!AgeAllowed(static_cast<int>(atom_index), id)) continue;
      if (!MatchCandidate(atom, graph_.node(id).fact)) {
        UndoTo(trail_mark);
        continue;
      }
      match_.facts.push_back(id);
      TEMPLEX_RETURN_IF_ERROR(Descend(atom_index + 1));
      match_.facts.pop_back();
      UndoTo(trail_mark);
    }
    return Status::OK();
  }

  const RulePlan& plan_;
  const FactStore& store_;
  const ChaseGraph& graph_;
  const MatchWindow window_;
  const std::function<Status(const BodyMatch&)>& callback_;

  // Scratch match state: per-slot values and bound flags, plus the undo
  // trail of slots bound since each atom's mark. The BodyMatch is
  // materialized from the slots only at full-match depth.
  std::vector<Value> slots_;
  std::vector<uint8_t> bound_;
  std::vector<int> trail_;
  BodyMatch match_;
};

}  // namespace

Status EnumerateMatches(
    const RulePlan& plan, const FactStore& store, const ChaseGraph& graph,
    const MatchWindow& window,
    const std::function<Status(const BodyMatch&)>& callback) {
  MatchEnumerator enumerator(plan, store, graph, window, callback);
  return enumerator.Run();
}

Status EnumerateMatches(
    const RulePlan& plan, const FactStore& store, const ChaseGraph& graph,
    int delta_atom, FactId delta_begin, FactId limit,
    const std::function<Status(const BodyMatch&)>& callback) {
  MatchWindow window;
  window.limit = limit;
  window.pivot_atom = delta_atom;
  window.pivot_begin = delta_begin;
  window.pivot_end = limit;
  window.pre_pivot_cap = delta_begin;
  return EnumerateMatches(plan, store, graph, window, callback);
}

Status EnumerateMatches(
    const Rule& rule, const FactStore& store, const ChaseGraph& graph,
    const MatchWindow& window,
    const std::function<Status(const BodyMatch&)>& callback) {
  RulePlan plan = MakeRulePlan(rule, 0);
  CompileMatchPlan(&plan, graph.symbols());  // lookup-only: graph is frozen
  return EnumerateMatches(plan, store, graph, window, callback);
}

Status EnumerateMatches(
    const Rule& rule, const FactStore& store, const ChaseGraph& graph,
    int delta_atom, FactId delta_begin, FactId limit,
    const std::function<Status(const BodyMatch&)>& callback) {
  MatchWindow window;
  window.limit = limit;
  window.pivot_atom = delta_atom;
  window.pivot_begin = delta_begin;
  window.pivot_end = limit;
  window.pre_pivot_cap = delta_begin;
  return EnumerateMatches(rule, store, graph, window, callback);
}

}  // namespace templex
