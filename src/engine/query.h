#ifndef TEMPLEX_ENGINE_QUERY_H_
#define TEMPLEX_ENGINE_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/program.h"
#include "engine/chase.h"
#include "engine/fact.h"

namespace templex {

// Counters of one query-driven evaluation (also exported as
// chase.query.* metrics when the config carries a registry).
struct QueryStats {
  // True when the goal was answered from a restricted chase over the
  // QSQR-relevant EDB subset; false when the evaluator fell back to a
  // full materialization (see fallback_reason).
  bool query_driven = false;
  std::string fallback_reason;

  int64_t subquery_tables = 0;    // memoized (predicate, binding) tables
  int64_t memo_hits = 0;          // subqueries answered from the memo
  int64_t qsqr_passes = 0;        // outer fixpoint sweeps
  int64_t edb_facts = 0;          // total EDB size
  int64_t relevant_edb_facts = 0; // EDB facts the restricted chase saw
  int64_t answers = 0;
};

struct QueryResult {
  // Facts matching the goal pattern, in chase enumeration order — the
  // exact sequence KnowledgeGraphApplication::Query would produce.
  std::vector<Fact> answers;
  // The chase that derived them: restricted (query-driven) or full
  // (fallback). Carries provenance for every fact it contains, so
  // Explainer::Explain over it yields byte-identical text to a full
  // materialization for every query-relevant fact.
  ChaseResult chase;
  QueryStats stats;
};

// Checks that a goal pattern is answerable at all: the predicate must
// occur in the program or the EDB, and the pattern's arity must match.
// Returns InvalidArgument otherwise — templex_cli maps this to its
// documented exit code 3.
Status ValidateGoalPattern(const Program& program,
                           const std::vector<Fact>& edb,
                           const Fact& goal_pattern);

// Goal-directed evaluation: QSQR-style top-down resolution with memoized
// subquery tables computes the goal's relevance closure (the dynamic
// counterpart of the magic-set rewrite in datalog/magic.h — each memo
// table is the extension of one magic predicate), then a chase of the
// ORIGINAL program restricted to the relevant EDB subset produces the
// answers and their provenance. Restricting the input instead of running
// the adorned program is what keeps explanations byte-identical: fact
// enumeration order, round numbers, primary-derivation choice, and
// alternative ordering among query-relevant facts all survive the
// restriction (DESIGN.md §12 has the argument).
//
// The evaluator honors the config's deadline, cancellation token, memory
// budget, stall watchdog, thread count, and join mode — the relevance
// pass checks interruption between subqueries, the restricted chase
// enforces everything exactly as a full run would.
//
// Falls back to a full materialization (stats.query_driven = false) when
// the magic rewrite refuses, when the relevance tables would exceed
// config.max_facts, or when TEMPLEX_EVAL_MODE=materialize is set; answers
// are identical either way.
class QueryEvaluator {
 public:
  explicit QueryEvaluator(ChaseConfig config) : config_(std::move(config)) {}

  Result<QueryResult> Evaluate(const Program& program,
                               const std::vector<Fact>& edb,
                               const Fact& goal_pattern);

 private:
  ChaseConfig config_;
};

}  // namespace templex

#endif  // TEMPLEX_ENGINE_QUERY_H_
