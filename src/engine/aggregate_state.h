#ifndef TEMPLEX_ENGINE_AGGREGATE_STATE_H_
#define TEMPLEX_ENGINE_AGGREGATE_STATE_H_

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "datalog/aggregate.h"
#include "engine/chase_graph.h"

namespace templex {

// Result of a contribution that changed a group's aggregate: the new
// aggregate value, a snapshot of all current contributions (for provenance
// and the dashed-template selection), and the union of their parent facts.
struct AggregateEmission {
  Value aggregate;
  std::vector<AggregateContribution> contributions;
  std::vector<FactId> all_parents;
};

// Monotonic aggregation state for all rules of one chase run.
//
// State is keyed by (rule, group key); within a group, contributions are
// keyed by contributor key:
//   - implicit contributor keys (the residual body binding): each distinct
//     key contributes its value exactly once; re-contributions are no-ops;
//   - explicit contributor keys (`sum(v, [t])`): each key holds its latest
//     monotone value — max for sum/count/max, min for min, last-received for
//     prod — which lets a rule aggregate running per-channel totals emitted
//     by an upstream monotonic aggregation (σ7 of the stress test).
//
// Every change to a group's contribution map yields an AggregateEmission;
// duplicate head facts are filtered downstream by the chase graph's set
// semantics.
class AggregateState {
 public:
  explicit AggregateState(int num_rules) : per_rule_(num_rules) {}

  // Registers a contribution. Returns the emission if the group changed,
  // nullopt otherwise. `explicit_keys` selects the update discipline above.
  std::optional<AggregateEmission> Contribute(
      int rule_index, AggregateFunction function, bool explicit_keys,
      const std::vector<Value>& group_key,
      const std::vector<Value>& contributor_key, const Value& input,
      const std::vector<FactId>& parents);

  // Number of contributors currently recorded for a group (0 if unseen).
  int GroupContributorCount(int rule_index,
                            const std::vector<Value>& group_key) const;

  int num_rules() const { return static_cast<int>(per_rule_.size()); }

  // Serialization support (io/checkpoint.h). ForEach visits every recorded
  // contribution in deterministic order (rule index ascending, then group
  // key, then contributor key — map order), and Restore overwrites one
  // contribution in place. Replaying a checkpoint's entries through Restore
  // in their recorded order reconstructs the exact state: snapshot entries
  // come from ForEach, and journal entries are the monotone update stream
  // (each Contribute that changed state), whose last write per key is the
  // current value.
  void ForEach(
      const std::function<void(int rule_index,
                               const std::vector<Value>& group_key,
                               const std::vector<Value>& contributor_key,
                               const Value& value,
                               const std::vector<FactId>& parents)>& fn) const;

  void Restore(int rule_index, const std::vector<Value>& group_key,
               const std::vector<Value>& contributor_key, const Value& value,
               const std::vector<FactId>& parents);

  // Content-based footprint of the recorded keys/values/parents (see
  // Value::ApproxBytes), maintained incrementally by Contribute/Restore.
  int64_t approx_bytes() const { return approx_bytes_; }

 private:
  struct VectorValueLess {
    bool operator()(const std::vector<Value>& a,
                    const std::vector<Value>& b) const;
  };

  struct ContributorEntry {
    Value value;
    std::vector<FactId> parents;
  };

  using Group = std::map<std::vector<Value>, ContributorEntry, VectorValueLess>;
  using RuleState = std::map<std::vector<Value>, Group, VectorValueLess>;

  AggregateEmission MakeEmission(AggregateFunction function,
                                 const Group& group) const;

  std::vector<RuleState> per_rule_;
  int64_t approx_bytes_ = 0;
};

}  // namespace templex

#endif  // TEMPLEX_ENGINE_AGGREGATE_STATE_H_
