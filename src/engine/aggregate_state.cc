#include "engine/aggregate_state.h"

#include <algorithm>

namespace templex {

namespace {

// Fixed per-map-node charge (tree node + links): a constant keeps the
// accounted footprint a pure function of recorded content.
constexpr int64_t kMapNodeBytes = 48;

int64_t KeyBytes(const std::vector<Value>& key) {
  int64_t total = 0;
  for (const Value& v : key) total += v.ApproxBytes();
  return total;
}

int64_t EntryBytes(const Value& value, const std::vector<FactId>& parents) {
  return value.ApproxBytes() +
         static_cast<int64_t>(parents.size() * sizeof(FactId));
}

}  // namespace

bool AggregateState::VectorValueLess::operator()(
    const std::vector<Value>& a, const std::vector<Value>& b) const {
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] < b[i]) return true;
    if (b[i] < a[i]) return false;
  }
  return a.size() < b.size();
}

std::optional<AggregateEmission> AggregateState::Contribute(
    int rule_index, AggregateFunction function, bool explicit_keys,
    const std::vector<Value>& group_key,
    const std::vector<Value>& contributor_key, const Value& input,
    const std::vector<FactId>& parents) {
  RuleState& state = per_rule_[rule_index];
  auto group_it = state.find(group_key);
  if (group_it == state.end()) {
    group_it = state.emplace(group_key, Group{}).first;
    approx_bytes_ += KeyBytes(group_key) + kMapNodeBytes;
  }
  Group& group = group_it->second;
  auto it = group.find(contributor_key);
  bool changed = false;
  if (it == group.end()) {
    group.emplace(contributor_key, ContributorEntry{input, parents});
    approx_bytes_ +=
        KeyBytes(contributor_key) + EntryBytes(input, parents) + kMapNodeBytes;
    changed = true;
  } else if (explicit_keys) {
    bool update = false;
    switch (function) {
      case AggregateFunction::kSum:
      case AggregateFunction::kMax:
      case AggregateFunction::kCount:
        update = it->second.value < input;
        break;
      case AggregateFunction::kMin:
        update = input < it->second.value;
        break;
      case AggregateFunction::kProd:
        update = !(input == it->second.value);
        break;
    }
    if (update) {
      approx_bytes_ += EntryBytes(input, parents) -
                       EntryBytes(it->second.value, it->second.parents);
      it->second.value = input;
      it->second.parents = parents;
      changed = true;
    }
  }
  // With implicit keys a repeated contributor key carries the identical
  // residual binding, hence the identical input: nothing to do.
  if (!changed) return std::nullopt;
  return MakeEmission(function, group);
}

int AggregateState::GroupContributorCount(
    int rule_index, const std::vector<Value>& group_key) const {
  const RuleState& state = per_rule_[rule_index];
  auto it = state.find(group_key);
  if (it == state.end()) return 0;
  return static_cast<int>(it->second.size());
}

void AggregateState::ForEach(
    const std::function<void(int, const std::vector<Value>&,
                             const std::vector<Value>&, const Value&,
                             const std::vector<FactId>&)>& fn) const {
  for (size_t rule = 0; rule < per_rule_.size(); ++rule) {
    for (const auto& [group_key, group] : per_rule_[rule]) {
      for (const auto& [contributor_key, entry] : group) {
        fn(static_cast<int>(rule), group_key, contributor_key, entry.value,
           entry.parents);
      }
    }
  }
}

void AggregateState::Restore(int rule_index,
                             const std::vector<Value>& group_key,
                             const std::vector<Value>& contributor_key,
                             const Value& value,
                             const std::vector<FactId>& parents) {
  RuleState& state = per_rule_[rule_index];
  auto group_it = state.find(group_key);
  if (group_it == state.end()) {
    group_it = state.emplace(group_key, Group{}).first;
    approx_bytes_ += KeyBytes(group_key) + kMapNodeBytes;
  }
  Group& group = group_it->second;
  auto it = group.find(contributor_key);
  if (it == group.end()) {
    group.emplace(contributor_key, ContributorEntry{value, parents});
    approx_bytes_ +=
        KeyBytes(contributor_key) + EntryBytes(value, parents) + kMapNodeBytes;
    return;
  }
  approx_bytes_ += EntryBytes(value, parents) -
                   EntryBytes(it->second.value, it->second.parents);
  it->second = ContributorEntry{value, parents};
}

AggregateEmission AggregateState::MakeEmission(AggregateFunction function,
                                               const Group& group) const {
  AggregateEmission emission;
  double acc = 0.0;
  bool first = true;
  for (const auto& [key, entry] : group) {
    const double v = entry.value.is_numeric() ? entry.value.AsDouble() : 0.0;
    switch (function) {
      case AggregateFunction::kSum:
        acc += v;
        break;
      case AggregateFunction::kProd:
        acc = first ? v : acc * v;
        break;
      case AggregateFunction::kMin:
        acc = first ? v : std::min(acc, v);
        break;
      case AggregateFunction::kMax:
        acc = first ? v : std::max(acc, v);
        break;
      case AggregateFunction::kCount:
        acc += 1.0;
        break;
    }
    first = false;
    emission.contributions.push_back(
        AggregateContribution{entry.value, entry.parents});
    for (FactId p : entry.parents) {
      if (std::find(emission.all_parents.begin(), emission.all_parents.end(),
                    p) == emission.all_parents.end()) {
        emission.all_parents.push_back(p);
      }
    }
  }
  if (function == AggregateFunction::kCount) {
    emission.aggregate = Value::Int(static_cast<int64_t>(acc));
  } else {
    emission.aggregate = Value::Double(acc);
  }
  return emission;
}

}  // namespace templex
