#ifndef TEMPLEX_ENGINE_PROOF_H_
#define TEMPLEX_ENGINE_PROOF_H_

#include <string>
#include <vector>

#include "engine/chase_graph.h"

namespace templex {

// The proof of a derived fact: the portion of the chase graph that derives
// it, linearized in derivation (= topological) order. The ordered rule
// labels of the intensional steps form the chase-step sequence τ that the
// template mapper consumes (Example 4.7: τ = {α, β, γ, β, γ}).
class Proof {
 public:
  // Extracts the proof of `goal` from `graph`. `graph` must outlive the
  // proof (the proof stores a pointer).
  static Proof Extract(const ChaseGraph& graph, FactId goal);

  const ChaseGraph& graph() const { return *graph_; }
  FactId goal() const { return goal_; }

  // Intensional facts of the proof in derivation order (the goal is last).
  const std::vector<FactId>& steps() const { return steps_; }

  // Extensional facts the proof is grounded in, ascending by id.
  const std::vector<FactId>& edb_facts() const { return edb_facts_; }

  // Number of chase steps (= intensional facts) in the proof; the x-axis of
  // Figures 17 and 18.
  int num_chase_steps() const { return static_cast<int>(steps_.size()); }

  // The ordered rule-label sequence τ of the proof.
  std::vector<std::string> RuleLabelSequence() const;

  // Every distinct constant appearing in any fact of the proof (extensional
  // and intensional). This is the denominator of the omission metric of
  // Figure 17: a complete explanation must mention all of them.
  std::vector<Value> Constants() const;

  // Human-readable listing, one step per line, for debugging.
  std::string ToString() const;

 private:
  const ChaseGraph* graph_ = nullptr;
  FactId goal_ = kInvalidFactId;
  std::vector<FactId> steps_;
  std::vector<FactId> edb_facts_;
};

}  // namespace templex

#endif  // TEMPLEX_ENGINE_PROOF_H_
