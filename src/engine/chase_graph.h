#ifndef TEMPLEX_ENGINE_CHASE_GRAPH_H_
#define TEMPLEX_ENGINE_CHASE_GRAPH_H_

#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "datalog/binding.h"
#include "datalog/symbol.h"
#include "engine/fact.h"

namespace templex {

// Provenance of one input to an aggregation: the value that was aggregated
// and the body facts of the match that produced it. Needed both to explain
// "a total of 11M (sum of loans of 2M and 9M)" and to select the dashed
// (multi-contributor) template variant during mapping.
struct AggregateContribution {
  Value input;
  std::vector<FactId> parents;
};

// A way a fact was derived: rule, homomorphism, matched facts, and (for
// aggregations) the contributor set.
struct Derivation {
  // Index of the deriving rule in the Program, or -1 for extensional facts.
  int rule_index = -1;
  std::string rule_label;  // empty for extensional facts

  // The homomorphism θ of the deriving chase step (augmented with assignment
  // and aggregate-result variables). Empty for extensional facts.
  Binding binding;

  // Ids of the facts this fact directly derives from, in body-atom order
  // (for aggregations: the union over all contributions, deduplicated).
  std::vector<FactId> parents;

  // Non-empty iff the deriving rule aggregates; one entry per contributor
  // that participated in the emitted aggregate value.
  std::vector<AggregateContribution> contributions;
};

// Content-based footprint of a derivation / contribution (see
// Value::ApproxBytes for the discipline: lengths, never capacities).
int64_t ApproxBytes(const AggregateContribution& contribution);
int64_t ApproxBytes(const Derivation& derivation);

// One node of the chase graph G(D, Σ): a fact plus how it was derived. The
// first (chronologically earliest) derivation is the primary one used by
// proofs; later re-derivations of the same fact through different rules or
// facts are kept as bounded `alternatives` — the other reasoning stories an
// analyst can ask for (Explainer::ExplainAllDerivations).
struct ChaseNode {
  Fact fact;

  int rule_index = -1;
  std::string rule_label;
  Binding binding;
  std::vector<FactId> parents;
  std::vector<AggregateContribution> contributions;

  // Alternative derivations (acyclic ones only: every parent precedes this
  // node), capped by ChaseConfig::max_alternative_derivations.
  std::vector<Derivation> alternatives;

  bool is_extensional() const { return rule_index < 0; }
};

int64_t ApproxBytes(const ChaseNode& node);

// The chase graph: facts as nodes, derivation edges from parents to the
// derived fact. Nodes are appended in derivation order; a fact is stored at
// most once (set semantics), so the graph doubles as the fact database.
//
// The graph owns the run's SymbolTable: AddNode interns each fact's
// predicate and stamps Fact::pred_symbol, and maintains a dense
// per-predicate id index, so the engine's hot paths (matching, candidate
// indexing, existential reuse, pattern queries) operate on ints and O(1)
// lookups while the stored strings keep every report and explanation
// byte-identical.
class ChaseGraph {
 public:
  ChaseGraph() = default;

  // Adds a node for `node.fact` if the fact is new. Returns (id, true) when
  // inserted, (existing id, false) otherwise. On insertion the fact's
  // predicate is interned and `pred_symbol` assigned.
  std::pair<FactId, bool> AddNode(ChaseNode node);

  // Id of an existing fact, if present.
  std::optional<FactId> Find(const Fact& fact) const;

  const ChaseNode& node(FactId id) const { return nodes_[id]; }
  ChaseNode& mutable_node(FactId id) { return nodes_[id]; }

  int size() const { return static_cast<int>(nodes_.size()); }

  // All ancestor fact ids of `id` (including `id`), ascending — i.e. the
  // sub-chase-graph that derives the fact, topologically ordered.
  std::vector<FactId> AncestorClosure(FactId id) const;

  // True iff `target` is in AncestorClosure(node) — node transitively
  // depends on target along primary derivations (node == target counts).
  // Equivalent to a membership test on AncestorClosure but far cheaper for
  // a negative or shallow answer: primary parents always precede their
  // node, so the walk prunes every branch that drops below `target`
  // instead of materializing the closure down to the extensional facts.
  // Precondition: every node's primary parents have smaller ids — true for
  // any graph built by the chase, but not for WithAlternative copies,
  // whose swapped-in primaries may point forward.
  bool DependsOn(FactId node, FactId target) const;

  // All facts of a given predicate, ascending by id. O(1): returns the
  // per-predicate index maintained by AddNode. The reference stays valid
  // while facts are appended (per-predicate lists live in a deque), but
  // appended ids become visible in it — iterate over a size snapshot when
  // inserting concurrently with a scan.
  const std::vector<FactId>& FactsOf(const std::string& predicate) const;
  const std::vector<FactId>& FactsOf(Symbol predicate) const;

  // The graph's predicate/constant interner. Mutable access lets the chase
  // intern rule predicates when compiling match plans against this graph.
  const SymbolTable& symbols() const { return symbols_; }
  SymbolTable& symbols() { return symbols_; }

  // GraphViz DOT rendering of the sub-graph deriving `goal` (the whole
  // graph if goal == kInvalidFactId). Edges are labelled with rule labels.
  std::string ToDot(FactId goal = kInvalidFactId) const;

  // A copy of this graph in which node `id`'s primary derivation is
  // swapped with its `alternative_index`-th alternative — the basis for
  // explaining a fact "the other way".
  ChaseGraph WithAlternative(FactId id, size_t alternative_index) const;

  // Content-based footprint of the graph (nodes + a fixed per-node index
  // overhead), maintained incrementally by AddNode. Mutations that bypass
  // AddNode (recording an alternative through mutable_node) account their
  // growth via AddApproxBytes. Deterministic across thread counts, join
  // modes, and checkpoint resume — see common/memory.h.
  int64_t approx_bytes() const { return approx_bytes_; }
  void AddApproxBytes(int64_t bytes) { approx_bytes_ += bytes; }

 private:
  std::vector<ChaseNode> nodes_;
  // Dedup index keyed by the fact's (cached-at-insert) hash; candidates are
  // verified against nodes_, so a 64-bit collision costs one extra compare,
  // never a wrong merge. Storing ids instead of Fact keys halves the memory
  // the old unordered_map<Fact, FactId> spent on key copies.
  std::unordered_multimap<size_t, FactId> index_;
  SymbolTable symbols_;
  // pred_symbol -> ascending fact ids. Deque: growing the outer container
  // when a new predicate appears must not move existing lists — FactsOf
  // references are held across insertions by the match enumerator.
  std::deque<std::vector<FactId>> by_predicate_;
  std::vector<FactId> empty_;
  int64_t approx_bytes_ = 0;
};

}  // namespace templex

#endif  // TEMPLEX_ENGINE_CHASE_GRAPH_H_
