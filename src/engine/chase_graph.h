#ifndef TEMPLEX_ENGINE_CHASE_GRAPH_H_
#define TEMPLEX_ENGINE_CHASE_GRAPH_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "datalog/binding.h"
#include "engine/fact.h"

namespace templex {

// Provenance of one input to an aggregation: the value that was aggregated
// and the body facts of the match that produced it. Needed both to explain
// "a total of 11M (sum of loans of 2M and 9M)" and to select the dashed
// (multi-contributor) template variant during mapping.
struct AggregateContribution {
  Value input;
  std::vector<FactId> parents;
};

// A way a fact was derived: rule, homomorphism, matched facts, and (for
// aggregations) the contributor set.
struct Derivation {
  // Index of the deriving rule in the Program, or -1 for extensional facts.
  int rule_index = -1;
  std::string rule_label;  // empty for extensional facts

  // The homomorphism θ of the deriving chase step (augmented with assignment
  // and aggregate-result variables). Empty for extensional facts.
  Binding binding;

  // Ids of the facts this fact directly derives from, in body-atom order
  // (for aggregations: the union over all contributions, deduplicated).
  std::vector<FactId> parents;

  // Non-empty iff the deriving rule aggregates; one entry per contributor
  // that participated in the emitted aggregate value.
  std::vector<AggregateContribution> contributions;
};

// One node of the chase graph G(D, Σ): a fact plus how it was derived. The
// first (chronologically earliest) derivation is the primary one used by
// proofs; later re-derivations of the same fact through different rules or
// facts are kept as bounded `alternatives` — the other reasoning stories an
// analyst can ask for (Explainer::ExplainAllDerivations).
struct ChaseNode {
  Fact fact;

  int rule_index = -1;
  std::string rule_label;
  Binding binding;
  std::vector<FactId> parents;
  std::vector<AggregateContribution> contributions;

  // Alternative derivations (acyclic ones only: every parent precedes this
  // node), capped by ChaseConfig::max_alternative_derivations.
  std::vector<Derivation> alternatives;

  bool is_extensional() const { return rule_index < 0; }
};

// The chase graph: facts as nodes, derivation edges from parents to the
// derived fact. Nodes are appended in derivation order; a fact is stored at
// most once (set semantics), so the graph doubles as the fact database.
class ChaseGraph {
 public:
  ChaseGraph() = default;

  // Adds a node for `node.fact` if the fact is new. Returns (id, true) when
  // inserted, (existing id, false) otherwise.
  std::pair<FactId, bool> AddNode(ChaseNode node);

  // Id of an existing fact, if present.
  std::optional<FactId> Find(const Fact& fact) const;

  const ChaseNode& node(FactId id) const { return nodes_[id]; }
  ChaseNode& mutable_node(FactId id) { return nodes_[id]; }

  int size() const { return static_cast<int>(nodes_.size()); }

  // All ancestor fact ids of `id` (including `id`), ascending — i.e. the
  // sub-chase-graph that derives the fact, topologically ordered.
  std::vector<FactId> AncestorClosure(FactId id) const;

  // All facts of a given predicate.
  std::vector<FactId> FactsOf(const std::string& predicate) const;

  // GraphViz DOT rendering of the sub-graph deriving `goal` (the whole
  // graph if goal == kInvalidFactId). Edges are labelled with rule labels.
  std::string ToDot(FactId goal = kInvalidFactId) const;

  // A copy of this graph in which node `id`'s primary derivation is
  // swapped with its `alternative_index`-th alternative — the basis for
  // explaining a fact "the other way".
  ChaseGraph WithAlternative(FactId id, size_t alternative_index) const;

 private:
  std::vector<ChaseNode> nodes_;
  std::unordered_map<Fact, FactId, FactHash> index_;
};

}  // namespace templex

#endif  // TEMPLEX_ENGINE_CHASE_GRAPH_H_
