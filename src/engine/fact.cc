#include "engine/fact.h"

namespace templex {

std::string Fact::ToString() const {
  std::string result = predicate;
  result += "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) result += ", ";
    result += args[i].ToString();
  }
  result += ")";
  return result;
}

size_t Fact::Hash() const {
  size_t h = std::hash<std::string>{}(predicate);
  for (const Value& v : args) {
    h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace templex
