#include "engine/fact.h"

#include "common/hash.h"

namespace templex {

std::string Fact::ToString() const {
  std::string result = predicate;
  result += "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) result += ", ";
    result += args[i].ToString();
  }
  result += ")";
  return result;
}

size_t Fact::Hash() const {
  uint64_t h = HashMix(std::hash<std::string>{}(predicate));
  for (const Value& v : args) {
    h = HashCombine(h, v.Hash());
  }
  return static_cast<size_t>(h);
}

}  // namespace templex
