#include "engine/stratification.h"

#include <algorithm>

namespace templex {

Result<std::map<std::string, int>> StratifyProgram(const Program& program) {
  std::map<std::string, int> level;
  const std::vector<std::string> predicates = program.Predicates();
  for (const std::string& p : predicates) level[p] = 0;
  // Iterative relaxation; levels are bounded by the number of predicates in
  // any valid stratification, so exceeding that bound means a negative
  // cycle.
  const int max_level = static_cast<int>(predicates.size());
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& rule : program.rules()) {
      if (rule.is_constraint) continue;
      int required = 0;
      for (const Atom& atom : rule.body) {
        required = std::max(required, level[atom.predicate]);
      }
      for (const Atom& atom : rule.negative_body) {
        required = std::max(required, level[atom.predicate] + 1);
      }
      int& head_level = level[rule.head.predicate];
      if (required > head_level) {
        if (required > max_level) {
          return Status::InvalidArgument(
              "program is not stratifiable: negation through recursion "
              "involving predicate '" +
              rule.head.predicate + "'");
        }
        head_level = required;
        changed = true;
      }
    }
  }
  return level;
}

Result<std::vector<std::vector<int>>> RuleStrata(const Program& program) {
  Result<std::map<std::string, int>> levels = StratifyProgram(program);
  if (!levels.ok()) return levels.status();
  int max_level = 0;
  for (const auto& [predicate, level] : levels.value()) {
    max_level = std::max(max_level, level);
  }
  std::vector<std::vector<int>> strata(max_level + 1);
  for (size_t i = 0; i < program.rules().size(); ++i) {
    if (program.rules()[i].is_constraint) continue;  // checked post-fixpoint
    const int level = levels.value().at(program.rules()[i].head.predicate);
    strata[level].push_back(static_cast<int>(i));
  }
  // Drop empty strata (levels occupied only by extensional predicates).
  std::vector<std::vector<int>> compact;
  for (std::vector<int>& stratum : strata) {
    if (!stratum.empty()) compact.push_back(std::move(stratum));
  }
  if (compact.empty()) compact.push_back({});
  return compact;
}

}  // namespace templex
