#include "engine/query.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/hash.h"
#include "common/timer.h"
#include "common/watchdog.h"
#include "datalog/binding.h"
#include "datalog/magic.h"
#include "engine/fact_store.h"
#include "engine/rule_plan.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace templex {
namespace {

// How a value in a relevance-pass row relates to what the chase would
// compute. kExact values joined and compared normally; values downstream
// of a monotone aggregate are only the final fixpoint of a sequence of
// emissions, so they join permissively (any comparison could be satisfied
// by an intermediate emission) except where monotonicity proves the final
// value decides (see MonotoneSafe).
enum class Taint : uint8_t {
  kExact = 0,
  kIncreasing,  // final value is the maximum emitted (sum/count/max/prod)
  kDecreasing,  // final value is the minimum emitted (min)
  kOpaque,      // mixed through arithmetic; no usable direction
};

Taint AggregateTaint(AggregateFunction fn) {
  switch (fn) {
    case AggregateFunction::kSum:
    case AggregateFunction::kCount:
    case AggregateFunction::kMax:
      return Taint::kIncreasing;
    case AggregateFunction::kMin:
      return Taint::kDecreasing;
    case AggregateFunction::kProd:
      // Contributions below 1 shrink the product; no usable direction.
      return Taint::kOpaque;
  }
  return Taint::kOpaque;
}

struct Row {
  std::vector<Value> values;
  std::vector<Taint> taints;

  bool operator==(const Row& other) const {
    return values == other.values && taints == other.taints;
  }
};

struct RowHash {
  size_t operator()(const Row& row) const {
    size_t h = 0x9e3779b97f4a7c15ull;
    for (const Value& v : row.values) h = HashCombine(h, v.Hash());
    for (Taint t : row.taints) {
      h = HashCombine(h, static_cast<size_t>(t));
    }
    return h;
  }
};

// A memoized subquery: one (predicate, bound-argument) pattern and every
// head row derived for it so far — the dynamic extension of the magic
// predicate m@P@adornment seeded with these arguments.
struct SubqueryKey {
  std::string predicate;
  std::vector<Value> pattern;  // Null = free position

  bool operator==(const SubqueryKey& other) const {
    return predicate == other.predicate && pattern == other.pattern;
  }
};

struct SubqueryKeyHash {
  size_t operator()(const SubqueryKey& key) const {
    size_t h = std::hash<std::string>()(key.predicate);
    for (const Value& v : key.pattern) h = HashCombine(h, v.Hash());
    return h;
  }
};

struct SubqueryTable {
  SubqueryKey key;
  std::vector<Row> rows;
  std::unordered_map<Row, bool, RowHash> seen;

  // Returns true when the row is new.
  bool Add(Row row) {
    auto [it, inserted] = seen.emplace(std::move(row), true);
    if (inserted) rows.push_back(it->first);
    return inserted;
  }
};

// Per-group accumulator for an aggregate rule evaluation: contributor-key
// -> contributed value, under the monotone-contribution semantics of
// datalog/aggregate.h (explicit keys replace monotonically; implicit
// residual keys contribute once).
struct GroupState {
  std::map<std::string, Value> contributions;  // serialized key -> value
  Binding representative;
  std::set<std::string> tainted_vars;
};

std::string SerializeValues(const std::vector<Value>& values) {
  std::string out;
  for (const Value& v : values) {
    out += v.ToString();
    out.push_back('\x1f');
  }
  return out;
}

// The QSQR relevance pass: top-down resolution of the goal over the
// original (un-adorned) program, memoizing one table per subquery
// pattern and sweeping to fixpoint. Its purpose is not to answer the
// query — the restricted chase does that — but to collect every EDB fact
// any derivation of a goal-relevant fact can touch, which requires being
// * exact on positive joins, assignments, ground conditions, and
//   aggregate values (so monotone thresholds like `ts > 0.5` prune the
//   cone the way the chase does), and
// * permissive wherever exactness would need the full instance: negated
//   atoms never reject (their cones are still pulled in, fully bound, so
//   the restricted chase sees a complete negated relation for every
//   binding it checks), and comparisons on aggregate-tainted values only
//   reject when monotonicity proves the final value decides.
class RelevancePass {
 public:
  RelevancePass(const Program& program, const std::vector<Fact>& edb,
                const ChaseConfig& config, QueryStats* stats)
      : program_(program), config_(config), stats_(stats), store_(&graph_) {
    for (const Fact& fact : edb) {
      ChaseNode node;
      node.fact = fact;
      auto [id, inserted] = graph_.AddNode(std::move(node));
      if (inserted) store_.OnNewFact(id);
    }
    relevant_.assign(static_cast<size_t>(graph_.size()), 0);
    for (size_t i = 0; i < program_.rules().size(); ++i) {
      const Rule& rule = program_.rules()[i];
      if (rule.is_constraint) continue;
      rules_by_head_[rule.head.predicate].push_back(static_cast<int>(i));
      plans_.emplace(static_cast<int>(i),
                     MakeRulePlan(rule, static_cast<int>(i)));
    }
  }

  // Runs the pass. On success fills `relevant_edb` with the relevant
  // subset of the deduplicated EDB in original insertion order. Returns
  // kResourceExhausted when the memo tables outgrow config.max_facts
  // (callers fall back to materialization) and propagates deadline /
  // cancellation errors.
  Status Run(const Fact& goal_pattern, std::vector<Fact>* relevant_edb) {
    SubqueryKey root{goal_pattern.predicate, {}};
    for (const Value& arg : goal_pattern.args) {
      root.pattern.push_back(arg);
    }
    InternSubquery(std::move(root));

    bool changed = true;
    while (changed) {
      TEMPLEX_RETURN_IF_ERROR(CheckInterruption(config_.deadline, config_.cancel,
                                                "query.relevance"));
      if (overflow_) {
        return Status(StatusCode::kResourceExhausted,
                      "relevance tables exceeded max_facts");
      }
      changed = false;
      ++stats_->qsqr_passes;
      // Tables appended mid-sweep are still visited this sweep.
      for (size_t ti = 0; ti < tables_.size(); ++ti) {
        if (config_.watchdog != nullptr) config_.watchdog->Pet();
        TEMPLEX_RETURN_IF_ERROR(CheckInterruption(config_.deadline, config_.cancel,
                                                  "query.relevance"));
        changed |= EvaluateSubquery(static_cast<int>(ti));
        if (overflow_) {
          return Status(StatusCode::kResourceExhausted,
                        "relevance tables exceeded max_facts");
        }
      }
    }

    for (FactId id = 0; id < graph_.size(); ++id) {
      if (relevant_[static_cast<size_t>(id)]) {
        relevant_edb->push_back(graph_.node(id).fact);
        ++stats_->relevant_edb_facts;
      }
    }
    stats_->subquery_tables = static_cast<int64_t>(tables_.size());
    return Status::OK();
  }

 private:
  // Finds or creates the table for `key`; returns its index.
  int InternSubquery(SubqueryKey key) {
    auto it = table_index_.find(key);
    if (it != table_index_.end()) {
      ++stats_->memo_hits;
      return it->second;
    }
    int index = static_cast<int>(tables_.size());
    table_index_.emplace(key, index);
    tables_.push_back(SubqueryTable{std::move(key), {}, {}});
    return index;
  }

  // One resolution step for table `ti`: probe the EDB for the pattern and
  // re-evaluate every rule whose head matches. Returns true when anything
  // (a row, a relevance bit, a new table) changed.
  bool EvaluateSubquery(int ti) {
    // tables_ may reallocate while rules evaluate; copy the key.
    SubqueryKey key = tables_[static_cast<size_t>(ti)].key;
    bool changed = MarkEdbMatches(key);

    auto rules_it = rules_by_head_.find(key.predicate);
    if (rules_it == rules_by_head_.end()) return changed;
    for (int rule_index : rules_it->second) {
      changed |= EvaluateRule(rule_index, key, ti);
    }
    return changed;
  }

  // Marks every EDB fact matching `key` relevant.
  bool MarkEdbMatches(const SubqueryKey& key) {
    Atom probe = PatternAtom(key);
    Binding empty;
    bool changed = false;
    for (FactId id : store_.CandidatesFor(probe, empty)) {
      if (relevant_[static_cast<size_t>(id)]) continue;
      Binding scratch;
      if (!MatchAtom(probe, graph_.node(id).fact, &scratch)) continue;
      relevant_[static_cast<size_t>(id)] = 1;
      changed = true;
    }
    return changed;
  }

  static Atom PatternAtom(const SubqueryKey& key) {
    std::vector<Term> terms;
    terms.reserve(key.pattern.size());
    for (size_t i = 0; i < key.pattern.size(); ++i) {
      if (key.pattern[i].is_null()) {
        terms.push_back(Term::Variable("_q" + std::to_string(i)));
      } else {
        terms.push_back(Term::Constant(key.pattern[i]));
      }
    }
    return Atom(key.predicate, std::move(terms));
  }

  bool EvaluateRule(int rule_index, const SubqueryKey& key, int ti) {
    const Rule& rule = program_.rules()[static_cast<size_t>(rule_index)];
    const RulePlan& plan = plans_.at(rule_index);
    const std::string result_var =
        rule.has_aggregate() ? rule.aggregate->result_variable : "";

    // Unify the head with the pattern. Aggregate result positions are
    // never bound from the pattern: the pattern value (if any) selects
    // among emissions, and which emissions exist is the chase's business.
    Binding binding;
    for (size_t i = 0; i < rule.head.terms.size(); ++i) {
      const Value& want = key.pattern[i];
      if (want.is_null()) continue;
      const Term& term = rule.head.terms[i];
      if (term.is_constant()) {
        if (!(term.constant_value() == want)) return false;
        continue;
      }
      if (term.variable_name() == result_var) continue;
      if (!binding.Bind(term.variable_name(), want)) return false;
    }

    RuleEval eval{this, rule, plan, ti, result_var};
    eval.Walk(0, binding, {});
    return eval.Finish();
  }

  // State of one rule evaluation: walks body atoms left to right,
  // enumerating EDB facts and memoized subquery rows, then feeds complete
  // matches through assignments, conditions, and (for aggregate rules)
  // the group accumulators.
  struct RuleEval {
    RelevancePass* pass;
    const Rule& rule;
    const RulePlan& plan;
    int table_index;
    std::string result_var;

    bool changed = false;
    std::map<std::string, GroupState> groups = {};

    void Walk(size_t j, const Binding& binding,
              const std::set<std::string>& tainted) {
      if (pass->overflow_) return;
      if (j == rule.body.size()) {
        ProcessMatch(binding, tainted);
        return;
      }
      const Atom& atom = rule.body[j];

      // Tainted variables never constrain a probe: an intermediate
      // emission could carry any value on the way to the final one.
      Binding probe_binding;
      for (const auto& [name, value] : binding.entries()) {
        if (tainted.count(name) == 0) probe_binding.Set(name, value);
      }

      // Extensional candidates (every predicate may carry EDB facts).
      for (FactId id : pass->store_.CandidatesFor(atom, probe_binding)) {
        Binding next = probe_binding;
        if (!MatchAtom(atom, pass->graph_.node(id).fact, &next)) continue;
        if (!pass->relevant_[static_cast<size_t>(id)]) {
          pass->relevant_[static_cast<size_t>(id)] = 1;
          changed = true;
        }
        std::set<std::string> next_tainted = tainted;
        for (const std::string& var : atom.VariableNames()) {
          next_tainted.erase(var);  // rebound to an exact EDB value
        }
        Restore(binding, tainted, atom, &next, &next_tainted);
        Walk(j + 1, next, next_tainted);
      }

      // Intensional candidates from the memoized subquery table.
      if (pass->rules_by_head_.count(atom.predicate) == 0) return;
      int sub = pass->InternSubquery(
          SubqueryPattern(atom, binding, tainted));
      // Snapshot the size: recursive rules append to their own table.
      size_t limit = pass->tables_[static_cast<size_t>(sub)].rows.size();
      for (size_t r = 0; r < limit; ++r) {
        Row row = pass->tables_[static_cast<size_t>(sub)].rows[r];
        Binding next = binding;
        std::set<std::string> next_tainted = tainted;
        if (!UnifyRow(atom, row, &next, &next_tainted)) continue;
        Walk(j + 1, next, next_tainted);
      }
    }

    // Variables of `atom` not rebound by the fact (because they were
    // tainted and stripped from the probe binding) must keep their prior
    // value for later exact use; every var the atom does mention has been
    // rebound exactly. Vars outside the atom keep binding/taint as-is —
    // `next` started from the stripped probe binding, so restore them.
    void Restore(const Binding& binding, const std::set<std::string>& tainted,
                 const Atom& atom, Binding* next,
                 std::set<std::string>* next_tainted) {
      std::set<std::string> atom_vars;
      for (const std::string& var : atom.VariableNames()) {
        atom_vars.insert(var);
      }
      for (const auto& [name, value] : binding.entries()) {
        if (tainted.count(name) == 0) continue;  // was in probe binding
        if (atom_vars.count(name) > 0) continue; // rebound exactly
        next->Set(name, value);
        next_tainted->insert(name);
      }
    }

    SubqueryKey SubqueryPattern(const Atom& atom, const Binding& binding,
                                const std::set<std::string>& tainted) {
      SubqueryKey key{atom.predicate, {}};
      key.pattern.reserve(atom.terms.size());
      for (const Term& term : atom.terms) {
        if (term.is_constant()) {
          key.pattern.push_back(term.constant_value());
          continue;
        }
        const std::string& var = term.variable_name();
        const Value* bound = binding.Find(var);
        if (bound != nullptr && tainted.count(var) == 0) {
          key.pattern.push_back(*bound);
        } else {
          key.pattern.push_back(Value::Null());
        }
      }
      return key;
    }

    bool UnifyRow(const Atom& atom, const Row& row, Binding* binding,
                  std::set<std::string>* tainted) {
      for (size_t i = 0; i < atom.terms.size(); ++i) {
        const Term& term = atom.terms[i];
        bool row_tainted = row.taints[i] != Taint::kExact;
        if (term.is_constant()) {
          if (row_tainted) continue;  // permissive
          if (!(term.constant_value() == row.values[i])) return false;
          continue;
        }
        const std::string& var = term.variable_name();
        const Value* bound = binding->Find(var);
        if (bound != nullptr && tainted->count(var) == 0) {
          if (row_tainted) continue;  // permissive
          if (!(*bound == row.values[i])) return false;
          continue;
        }
        binding->Set(var, row.values[i]);
        if (row_tainted) {
          tainted->insert(var);
          RecordDirection(var, row.taints[i]);
        } else {
          tainted->erase(var);
        }
      }
      return true;
    }

    // Direction of each tainted variable, for MonotoneSafe. Directions
    // leak across enumeration branches (the map is not backtracked), so
    // conflicting recordings degrade to kOpaque — never a wrong prune.
    std::map<std::string, Taint> taint_direction = {};

    void RecordDirection(const std::string& var, Taint direction) {
      auto [it, inserted] = taint_direction.emplace(var, direction);
      if (!inserted && it->second != direction) it->second = Taint::kOpaque;
    }

    Taint DirectionOf(const std::string& var,
                      const std::set<std::string>& tainted) const {
      if (tainted.count(var) == 0) return Taint::kExact;
      auto it = taint_direction.find(var);
      return it == taint_direction.end() ? Taint::kOpaque : it->second;
    }

    // Evaluates `cond` under `binding`, treating tainted variables
    // permissively: the condition only rejects when every mentioned
    // variable is exact, or when the single tainted side is a bare
    // variable whose monotone direction proves the final value decides
    // (e.g. `ts > 0.5` on a sum: if the final sum fails, every partial
    // sum failed too).
    bool ConditionHolds(const Condition& cond, const Binding& binding,
                        const std::set<std::string>& tainted) const {
      std::vector<std::string> vars = cond.VariableNames();
      for (const std::string& var : vars) {
        if (binding.Find(var) == nullptr) return true;  // permissive
      }
      bool any_tainted = false;
      for (const std::string& var : vars) {
        if (tainted.count(var) > 0) any_tainted = true;
      }
      if (any_tainted && !MonotoneSafe(cond, tainted)) return true;
      Result<bool> held = cond.Eval(binding);
      return held.ok() ? held.value() : true;  // evaluation errors: the chase's
                                        // problem, not relevance's
    }

    bool MonotoneSafe(const Condition& cond,
                      const std::set<std::string>& tainted) const {
      auto bare_var = [](const Expr* e) -> const std::string* {
        if (e == nullptr || !e->is_variable_leaf()) return nullptr;
        return &e->term().variable_name();
      };
      auto side_tainted = [&](const Expr* e) {
        if (e == nullptr) return false;
        for (const std::string& var : e->VariableNames()) {
          if (tainted.count(var) > 0) return true;
        }
        return false;
      };
      const std::string* lhs_var = bare_var(cond.lhs.get());
      const std::string* rhs_var = bare_var(cond.rhs.get());
      bool lhs_tainted = side_tainted(cond.lhs.get());
      bool rhs_tainted = side_tainted(cond.rhs.get());
      if (lhs_tainted && rhs_tainted) return false;
      // Rejecting on the final value is sound iff failure of the final
      // value implies failure of every intermediate emission: an
      // increasing value failing `v > c` / `v >= c`, or a decreasing
      // value failing `v < c` / `v <= c` — and mirrored on the right.
      if (lhs_tainted) {
        if (lhs_var == nullptr) return false;
        Taint dir = DirectionOf(*lhs_var, tainted);
        if (dir == Taint::kIncreasing) {
          return cond.cmp == Comparator::kGt || cond.cmp == Comparator::kGe;
        }
        if (dir == Taint::kDecreasing) {
          return cond.cmp == Comparator::kLt || cond.cmp == Comparator::kLe;
        }
        return false;
      }
      if (rhs_tainted) {
        if (rhs_var == nullptr) return false;
        Taint dir = DirectionOf(*rhs_var, tainted);
        if (dir == Taint::kIncreasing) {
          return cond.cmp == Comparator::kLt || cond.cmp == Comparator::kLe;
        }
        if (dir == Taint::kDecreasing) {
          return cond.cmp == Comparator::kGt || cond.cmp == Comparator::kGe;
        }
        return false;
      }
      return false;
    }

    void ProcessMatch(const Binding& body_binding,
                      const std::set<std::string>& body_tainted) {
      Binding binding = body_binding;
      std::set<std::string> tainted = body_tainted;

      // Assignments in order; taint propagates through arithmetic as
      // opaque (no usable monotone direction).
      for (const Assignment& assignment : rule.assignments) {
        bool any_tainted = false;
        bool all_bound = true;
        for (const std::string& var : assignment.expr->VariableNames()) {
          if (binding.Find(var) == nullptr) all_bound = false;
          if (tainted.count(var) > 0) any_tainted = true;
        }
        if (!all_bound) continue;
        Result<Value> value = assignment.expr->Eval(binding);
        if (!value.ok()) continue;
        binding.Set(assignment.variable, value.value());
        if (any_tainted) {
          tainted.insert(assignment.variable);
          RecordDirection(assignment.variable, Taint::kOpaque);
        }
      }

      // Negated atoms never reject here, but their support cones become
      // relevant: the restricted chase needs the complete negated
      // relation (including its extensional blockers) for every binding
      // it will check.
      for (const Atom& atom : rule.negative_body) {
        Binding probe_binding;
        for (const auto& [name, value] : binding.entries()) {
          if (tainted.count(name) == 0) probe_binding.Set(name, value);
        }
        for (FactId id : pass->store_.CandidatesFor(atom, probe_binding)) {
          Binding scratch = probe_binding;
          if (!MatchAtom(atom, pass->graph_.node(id).fact, &scratch)) {
            continue;
          }
          if (!pass->relevant_[static_cast<size_t>(id)]) {
            pass->relevant_[static_cast<size_t>(id)] = 1;
            changed = true;
          }
        }
        if (pass->rules_by_head_.count(atom.predicate) > 0) {
          pass->InternSubquery(SubqueryPattern(atom, binding, tainted));
        }
      }

      for (const Condition* cond : rule.PreAggregateConditions()) {
        if (!ConditionHolds(*cond, binding, tainted)) return;
      }

      if (!rule.has_aggregate()) {
        EmitRow(binding, tainted);
        return;
      }

      // Fold this match into its group. Group keys follow the compiled
      // plan: head/post-condition variables minus the result variable.
      std::vector<Value> group_values;
      for (const std::string& var : plan.group_vars) {
        const Value* v = binding.Find(var);
        group_values.push_back(v != nullptr ? *v : Value::Null());
      }
      GroupState& group = groups[SerializeValues(group_values)];
      if (group.representative.empty()) {
        group.representative = binding;
        group.tainted_vars = tainted;
      }

      const std::vector<std::string>& keys =
          plan.explicit_contributor_keys ? rule.aggregate->contributor_keys
                                         : plan.contributor_vars;
      std::vector<Value> key_values;
      for (const std::string& var : keys) {
        const Value* v = binding.Find(var);
        key_values.push_back(v != nullptr ? *v : Value::Null());
      }
      Value input = Value::Int(1);
      if (!rule.aggregate->input_variable.empty()) {
        const Value* v = binding.Find(rule.aggregate->input_variable);
        if (v == nullptr) return;
        input = *v;
      }
      std::string ck = SerializeValues(key_values);
      auto [it, inserted] = group.contributions.emplace(ck, input);
      if (!inserted && !rule.aggregate->contributor_keys.empty()) {
        // Explicit keys contribute their latest monotone value.
        bool keep_min = rule.aggregate->function == AggregateFunction::kMin;
        if (keep_min ? input < it->second : it->second < input) {
          it->second = input;
        }
      }
    }

    void EmitRow(const Binding& binding,
                 const std::set<std::string>& tainted) {
      Row row;
      row.values.reserve(rule.head.terms.size());
      for (const Term& term : rule.head.terms) {
        if (term.is_constant()) {
          row.values.push_back(term.constant_value());
          row.taints.push_back(Taint::kExact);
          continue;
        }
        const std::string& var = term.variable_name();
        const Value* v = binding.Find(var);
        row.values.push_back(v != nullptr ? *v : Value::Null());
        row.taints.push_back(v == nullptr
                                 ? Taint::kOpaque
                                 : DirectionOf(var, tainted));
      }
      if (pass->AddRow(table_index, std::move(row))) changed = true;
    }

    // Completes aggregate groups into rows; returns whether anything new
    // was derived during the whole rule evaluation.
    bool Finish() {
      if (!rule.has_aggregate()) return changed;
      for (auto& [unused_key, group] : groups) {
        Value result = FoldGroup(group);
        Binding binding = group.representative;
        binding.Set(result_var, result);
        std::set<std::string> tainted = group.tainted_vars;
        tainted.insert(result_var);
        RecordDirection(result_var, AggregateTaint(rule.aggregate->function));
        bool keep = true;
        for (const Condition* cond : rule.PostAggregateConditions()) {
          if (!ConditionHolds(*cond, binding, tainted)) {
            keep = false;
            break;
          }
        }
        if (keep) EmitRow(binding, tainted);
      }
      return changed;
    }

    // Mirrors AggregateState::MakeEmission exactly: doubles throughout
    // (non-numeric contributions count as 0.0), Int only for count —
    // exact values here are what make monotone thresholds prune the cone
    // the way the chase does.
    Value FoldGroup(const GroupState& group) const {
      AggregateFunction fn = rule.aggregate->function;
      if (fn == AggregateFunction::kCount) {
        return Value::Int(static_cast<int64_t>(group.contributions.size()));
      }
      double acc = 0.0;
      bool first = true;
      for (const auto& [unused, value] : group.contributions) {
        const double v = value.is_numeric() ? value.AsDouble() : 0.0;
        switch (fn) {
          case AggregateFunction::kSum:
            acc += v;
            break;
          case AggregateFunction::kProd:
            acc = first ? v : acc * v;
            break;
          case AggregateFunction::kMin:
            acc = first ? v : std::min(acc, v);
            break;
          case AggregateFunction::kMax:
            acc = first ? v : std::max(acc, v);
            break;
          case AggregateFunction::kCount:
            break;
        }
        first = false;
      }
      return Value::Double(acc);
    }
  };

  bool AddRow(int ti, Row row) {
    if (total_rows_ >= config_.max_facts) {
      overflow_ = true;
      return false;
    }
    if (tables_[static_cast<size_t>(ti)].Add(std::move(row))) {
      ++total_rows_;
      return true;
    }
    return false;
  }

  const Program& program_;
  const ChaseConfig& config_;
  QueryStats* stats_;

  ChaseGraph graph_;  // the deduplicated EDB, in insertion order
  FactStore store_;
  std::vector<char> relevant_;

  std::map<std::string, std::vector<int>> rules_by_head_;
  std::map<int, RulePlan> plans_;

  std::vector<SubqueryTable> tables_;
  std::unordered_map<SubqueryKey, int, SubqueryKeyHash> table_index_;
  int64_t total_rows_ = 0;
  bool overflow_ = false;
};

bool MatchesPattern(const Fact& fact, const Fact& pattern) {
  if (fact.predicate != pattern.predicate) return false;
  if (fact.args.size() != pattern.args.size()) return false;
  for (size_t i = 0; i < pattern.args.size(); ++i) {
    if (pattern.args[i].is_null()) continue;
    if (!(fact.args[i] == pattern.args[i])) return false;
  }
  return true;
}

std::vector<Fact> CollectAnswers(const ChaseResult& chase,
                                 const Fact& pattern) {
  std::vector<Fact> answers;
  for (const Fact& fact : chase.FactsOf(pattern.predicate)) {
    if (MatchesPattern(fact, pattern)) answers.push_back(fact);
  }
  return answers;
}

}  // namespace

Status ValidateGoalPattern(const Program& program,
                           const std::vector<Fact>& edb,
                           const Fact& goal_pattern) {
  int arity = -1;
  for (const Rule& rule : program.rules()) {
    auto check = [&](const Atom& atom) {
      if (atom.predicate == goal_pattern.predicate) arity = atom.arity();
    };
    check(rule.head);
    for (const Atom& atom : rule.body) check(atom);
    for (const Atom& atom : rule.negative_body) check(atom);
  }
  if (arity < 0) {
    for (const Fact& fact : edb) {
      if (fact.predicate == goal_pattern.predicate) {
        arity = fact.arity();
        break;
      }
    }
  }
  if (arity < 0) {
    return Status::InvalidArgument("query predicate '" +
                                   goal_pattern.predicate +
                                   "' is unknown to the program and EDB");
  }
  if (arity != goal_pattern.arity()) {
    return Status::InvalidArgument(
        "query goal " + goal_pattern.ToString() + " has arity " +
        std::to_string(goal_pattern.arity()) + " but predicate '" +
        goal_pattern.predicate + "' has arity " + std::to_string(arity));
  }
  return Status::OK();
}

Result<QueryResult> QueryEvaluator::Evaluate(const Program& program,
                                             const std::vector<Fact>& edb,
                                             const Fact& goal_pattern) {
  obs::Span run_span(config_.tracer, "query.run");
  double elapsed_seconds = 0.0;
  ScopedTimer timer(&elapsed_seconds);

  TEMPLEX_RETURN_IF_ERROR(ValidateGoalPattern(program, edb, goal_pattern));

  QueryResult result;
  result.stats.edb_facts = static_cast<int64_t>(edb.size());

  auto finish = [&](QueryResult r) -> Result<QueryResult> {
    timer.Stop();
    if (config_.metrics != nullptr) {
      config_.metrics->counter("chase.query.runs")->Increment();
      if (!r.stats.query_driven) {
        config_.metrics->counter("chase.query.fallbacks")->Increment();
      }
      config_.metrics->counter("chase.query.subqueries")
          ->Increment(r.stats.subquery_tables);
      config_.metrics->counter("chase.query.memo_hits")
          ->Increment(r.stats.memo_hits);
      config_.metrics->counter("chase.query.relevant_edb_facts")
          ->Increment(r.stats.relevant_edb_facts);
      config_.metrics->counter("chase.query.answers")
          ->Increment(r.stats.answers);
      config_.metrics->histogram("chase.query.seconds")
          ->Observe(elapsed_seconds);
    }
    if (config_.event_log != nullptr) {
      config_.event_log->Log(
          obs::EventLevel::kInfo, "query", "run.done",
          {{"goal", goal_pattern.ToString()},
           {"mode", r.stats.query_driven ? "qsqr" : "materialize"},
           {"answers", std::to_string(r.stats.answers)},
           {"relevant_edb",
            std::to_string(r.stats.relevant_edb_facts)},
           {"subqueries", std::to_string(r.stats.subquery_tables)}});
    }
    run_span.AddAttribute("answers", r.stats.answers);
    run_span.AddAttribute("mode",
                          r.stats.query_driven ? "qsqr" : "materialize");
    return r;
  };

  auto materialize = [&](std::string reason) -> Result<QueryResult> {
    obs::Span span(config_.tracer, "query.materialize");
    ChaseEngine engine(config_);
    Result<ChaseResult> chase = engine.Run(program, edb);
    TEMPLEX_RETURN_IF_ERROR(chase.status());
    QueryResult full;
    full.chase = std::move(chase.value());
    full.answers = CollectAnswers(full.chase, goal_pattern);
    full.stats = result.stats;
    full.stats.query_driven = false;
    full.stats.fallback_reason = std::move(reason);
    full.stats.answers = static_cast<int64_t>(full.answers.size());
    return finish(std::move(full));
  };

  if (const char* env = std::getenv("TEMPLEX_EVAL_MODE");
      env != nullptr && std::string_view(env) == "materialize") {
    return materialize("forced by TEMPLEX_EVAL_MODE=materialize");
  }

  MagicRewriteResult rewrite;
  {
    obs::Span span(config_.tracer, "query.rewrite");
    rewrite = MagicRewrite(program, goal_pattern);
    span.AddAttribute("rewritten", rewrite.rewritten ? "yes" : "no");
    span.AddAttribute(
        "adorned", static_cast<int64_t>(rewrite.adorned_predicates.size()));
  }
  if (!rewrite.rewritten) {
    if (config_.event_log != nullptr) {
      config_.event_log->Log(obs::EventLevel::kWarn, "query",
                             "rewrite.refused",
                             {{"goal", goal_pattern.ToString()},
                              {"reason", rewrite.refusal_reason}});
    }
    return materialize("magic rewrite refused: " + rewrite.refusal_reason);
  }

  std::vector<Fact> relevant_edb;
  {
    obs::Span span(config_.tracer, "query.qsqr");
    RelevancePass pass(program, edb, config_, &result.stats);
    Status status = pass.Run(goal_pattern, &relevant_edb);
    if (status.code() == StatusCode::kResourceExhausted) {
      return materialize("relevance pass overflow: " + status.message());
    }
    TEMPLEX_RETURN_IF_ERROR(status);
    span.AddAttribute("relevant_edb",
                      static_cast<int64_t>(relevant_edb.size()));
    span.AddAttribute("subqueries", result.stats.subquery_tables);
    span.AddAttribute("passes", result.stats.qsqr_passes);
  }

  {
    obs::Span span(config_.tracer, "query.chase");
    ChaseEngine engine(config_);
    Result<ChaseResult> chase = engine.Run(program, relevant_edb);
    TEMPLEX_RETURN_IF_ERROR(chase.status());
    result.chase = std::move(chase.value());
  }
  result.answers = CollectAnswers(result.chase, goal_pattern);
  result.stats.query_driven = true;
  result.stats.answers = static_cast<int64_t>(result.answers.size());
  return finish(std::move(result));
}

}  // namespace templex
