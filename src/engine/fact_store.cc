#include "engine/fact_store.h"

#include <algorithm>

namespace templex {

namespace {

// Fixed per-bucket charge (PosBucket fields + one hash-table slot): a
// constant keeps the accounted footprint a pure function of indexed
// content, independent of hash-table load factor.
constexpr int64_t kPosBucketBytes = 96;

}  // namespace

void FactStore::OnNewFact(FactId id) {
  const Fact& fact = graph_->node(id).fact;
  for (int pos = 0; pos < fact.arity(); ++pos) {
    const uint64_t value_hash = fact.args[pos].Hash();
    PosBucket& bucket =
        by_position_[PosKey(fact.pred_symbol, pos, value_hash)];
    index_bytes_ += static_cast<int64_t>(sizeof(FactId));
    if (bucket.ids.empty()) {
      index_bytes_ += kPosBucketBytes;
      bucket.predicate = fact.pred_symbol;
      bucket.position = pos;
      bucket.value_hash = value_hash;
    } else if (!bucket.collided &&
               (bucket.predicate != fact.pred_symbol ||
                bucket.position != pos || bucket.value_hash != value_hash)) {
      bucket.collided = true;
      ++collision_groups_;
    }
    bucket.ids.push_back(id);
  }
}

void FactStore::SealRound(FactId limit, NodeGraph* node_graph, int64_t round) {
  if (limit <= sealed_limit_) return;
  const int num_symbols = graph_->symbols().size();
  if (static_cast<int>(chains_.size()) < num_symbols) {
    chains_.resize(static_cast<size_t>(num_symbols));
  }
  for (Symbol predicate = 0; predicate < num_symbols; ++predicate) {
    const std::vector<FactId>& ids = graph_->FactsOf(predicate);
    auto first = std::lower_bound(ids.begin(), ids.end(), sealed_limit_);
    auto last = std::lower_bound(first, ids.end(), limit);
    if (first == last) continue;  // predicate gained nothing this round
    if (node_graph != nullptr) {
      node_graph->AddSegmentNode(predicate, round, *first, *(last - 1) + 1);
    }
    if (!segments_enabled_) continue;
    if (!segment_predicates_.empty() &&
        (static_cast<size_t>(predicate) >= segment_predicates_.size() ||
         !segment_predicates_[static_cast<size_t>(predicate)])) {
      continue;  // never consulted by the matcher: skip the columnar copy
    }
    SegmentChain& chain = chains_[static_cast<size_t>(predicate)];
    if (!chain.regular()) continue;
    // Sealing heuristic: an unbuilt chain is only started once the
    // predicate proves hot (>= segment_hot_min_facts_ facts below the seal
    // limit). The first build backfills from the predicate's first fact so
    // the chain covers [0, limit) — ComputeAtomJoins assumes a present
    // chain spans the whole sealed window. Hotness is monotone in the
    // limit, so an uninterrupted run and a resumed one (whose first seal
    // covers the whole restored base at once) flip the same predicates at
    // the same limits.
    auto seg_first = first;
    if (chain.segments().empty() && chain.arity() < 0) {
      const int64_t facts_below_limit =
          static_cast<int64_t>(last - ids.begin());
      if (segment_hot_min_facts_ > 0 &&
          facts_below_limit < segment_hot_min_facts_) {
        continue;  // cold: stays on the probe path, no columnar copy
      }
      seg_first = ids.begin();  // backfill the whole sealed window
    }
    // One columnar segment for this predicate's round delta (or its entire
    // backfill window on the first build). A predicate observed at more
    // than one arity has no rectangular layout: mark the chain irregular so
    // the matcher falls back to index probing.
    const int arity = graph_->node(*seg_first).fact.arity();
    if (chain.arity() >= 0 && chain.arity() != arity) {
      chain.MarkIrregular();
      continue;
    }
    std::vector<FactId> seg_ids;
    seg_ids.reserve(static_cast<size_t>(last - seg_first));
    std::vector<std::vector<Value>> columns(static_cast<size_t>(arity));
    for (auto& col : columns) {
      col.reserve(static_cast<size_t>(last - seg_first));
    }
    bool mixed_arity = false;
    for (auto it = seg_first; it != last; ++it) {
      const Fact& fact = graph_->node(*it).fact;
      if (fact.arity() != arity) {
        mixed_arity = true;
        break;
      }
      seg_ids.push_back(*it);
      for (int pos = 0; pos < arity; ++pos) {
        columns[static_cast<size_t>(pos)].push_back(fact.args[pos]);
      }
    }
    if (mixed_arity) {
      chain.MarkIrregular();
      continue;
    }
    chain.Append(DeltaSegment(predicate, arity, std::move(seg_ids),
                              std::move(columns)));
  }
  sealed_limit_ = limit;
}

int64_t FactStore::position_entries() const {
  int64_t total = 0;
  for (const auto& [key, bucket] : by_position_) {
    total += static_cast<int64_t>(bucket.ids.size());
  }
  return total;
}

const std::vector<FactId>& FactStore::CandidatesFor(
    const Atom& atom, const Binding& binding) const {
  const Symbol predicate = graph_->symbols().Lookup(atom.predicate);
  if (predicate == kInvalidSymbol) return empty_;  // no fact of the predicate
  const std::vector<FactId>* best = nullptr;
  for (int pos = 0; pos < atom.arity(); ++pos) {
    const Term& t = atom.terms[pos];
    Value bound_value;
    if (t.is_constant()) {
      bound_value = t.constant_value();
    } else {
      std::optional<Value> v = binding.Get(t.variable_name());
      if (!v.has_value()) continue;
      bound_value = *v;
    }
    auto it = by_position_.find(PosKey(predicate, pos, bound_value.Hash()));
    if (it == by_position_.end()) return empty_;  // no fact can match
    if (best == nullptr || it->second.ids.size() < best->size()) {
      best = &it->second.ids;
    }
  }
  if (best != nullptr) return *best;
  return graph_->FactsOf(predicate);
}

const std::vector<FactId>& FactStore::CandidatesFor(
    const AtomPlan& atom, const Value* slots) const {
  const std::vector<FactId>* best = nullptr;
  const int arity = atom.arity;
  for (int pos = 0; pos < arity; ++pos) {
    const TermPlan& t = atom.terms[pos];
    // bound_at_entry is the static answer to "is this slot readable when
    // the enumerator probes this atom": constants always, variables iff an
    // earlier body atom first bound them.
    if (!t.bound_at_entry) continue;
    const Value* value = t.is_constant ? &t.constant : &slots[t.slot];
    auto it = by_position_.find(PosKey(atom.predicate, pos, value->Hash()));
    if (it == by_position_.end()) return empty_;  // no fact can match
    if (best == nullptr || it->second.ids.size() < best->size()) {
      best = &it->second.ids;
    }
  }
  if (best != nullptr) return *best;
  return graph_->FactsOf(atom.predicate);
}

bool MatchAtom(const Atom& atom, const Fact& fact, Binding* binding) {
  if (atom.predicate != fact.predicate || atom.arity() != fact.arity()) {
    return false;
  }
  for (int pos = 0; pos < atom.arity(); ++pos) {
    const Term& t = atom.terms[pos];
    if (t.is_constant()) {
      if (!(t.constant_value() == fact.args[pos])) return false;
    } else if (!binding->Bind(t.variable_name(), fact.args[pos])) {
      return false;
    }
  }
  return true;
}

}  // namespace templex
