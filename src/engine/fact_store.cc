#include "engine/fact_store.h"

namespace templex {

void FactStore::OnNewFact(FactId id) {
  const Fact& fact = graph_->node(id).fact;
  for (int pos = 0; pos < fact.arity(); ++pos) {
    by_position_[PosKey(fact.pred_symbol, pos, fact.args[pos])].push_back(id);
  }
}

int64_t FactStore::position_entries() const {
  int64_t total = 0;
  for (const auto& [key, ids] : by_position_) {
    total += static_cast<int64_t>(ids.size());
  }
  return total;
}

const std::vector<FactId>& FactStore::CandidatesFor(
    const Atom& atom, const Binding& binding) const {
  const Symbol predicate = graph_->symbols().Lookup(atom.predicate);
  if (predicate == kInvalidSymbol) return empty_;  // no fact of the predicate
  const std::vector<FactId>* best = nullptr;
  for (int pos = 0; pos < atom.arity(); ++pos) {
    const Term& t = atom.terms[pos];
    Value bound_value;
    if (t.is_constant()) {
      bound_value = t.constant_value();
    } else {
      std::optional<Value> v = binding.Get(t.variable_name());
      if (!v.has_value()) continue;
      bound_value = *v;
    }
    auto it = by_position_.find(PosKey(predicate, pos, bound_value));
    if (it == by_position_.end()) return empty_;  // no fact can match
    if (best == nullptr || it->second.size() < best->size()) {
      best = &it->second;
    }
  }
  if (best != nullptr) return *best;
  return graph_->FactsOf(predicate);
}

const std::vector<FactId>& FactStore::CandidatesFor(
    const AtomPlan& atom, const Value* slots, const uint8_t* bound) const {
  const std::vector<FactId>* best = nullptr;
  const int arity = atom.arity;
  for (int pos = 0; pos < arity; ++pos) {
    const TermPlan& t = atom.terms[pos];
    const Value* value;
    if (t.is_constant) {
      value = &t.constant;
    } else if (bound[t.slot]) {
      value = &slots[t.slot];
    } else {
      continue;
    }
    auto it = by_position_.find(PosKey(atom.predicate, pos, *value));
    if (it == by_position_.end()) return empty_;  // no fact can match
    if (best == nullptr || it->second.size() < best->size()) {
      best = &it->second;
    }
  }
  if (best != nullptr) return *best;
  return graph_->FactsOf(atom.predicate);
}

bool MatchAtom(const Atom& atom, const Fact& fact, Binding* binding) {
  if (atom.predicate != fact.predicate || atom.arity() != fact.arity()) {
    return false;
  }
  for (int pos = 0; pos < atom.arity(); ++pos) {
    const Term& t = atom.terms[pos];
    if (t.is_constant()) {
      if (!(t.constant_value() == fact.args[pos])) return false;
    } else if (!binding->Bind(t.variable_name(), fact.args[pos])) {
      return false;
    }
  }
  return true;
}

}  // namespace templex
