#include "engine/fact_store.h"

namespace templex {

void FactStore::OnNewFact(FactId id) {
  const Fact& fact = graph_->node(id).fact;
  by_predicate_[fact.predicate].push_back(id);
  for (int pos = 0; pos < fact.arity(); ++pos) {
    by_position_[PosKey{fact.predicate, pos, fact.args[pos]}].push_back(id);
  }
}

const std::vector<FactId>& FactStore::FactsOf(
    const std::string& predicate) const {
  auto it = by_predicate_.find(predicate);
  return it == by_predicate_.end() ? empty_ : it->second;
}

const std::vector<FactId>& FactStore::CandidatesFor(
    const Atom& atom, const Binding& binding) const {
  const std::vector<FactId>* best = nullptr;
  for (int pos = 0; pos < atom.arity(); ++pos) {
    const Term& t = atom.terms[pos];
    Value bound_value;
    if (t.is_constant()) {
      bound_value = t.constant_value();
    } else {
      std::optional<Value> v = binding.Get(t.variable_name());
      if (!v.has_value()) continue;
      bound_value = *v;
    }
    auto it = by_position_.find(PosKey{atom.predicate, pos, bound_value});
    if (it == by_position_.end()) return empty_;  // no fact can match
    if (best == nullptr || it->second.size() < best->size()) {
      best = &it->second;
    }
  }
  if (best != nullptr) return *best;
  return FactsOf(atom.predicate);
}

bool MatchAtom(const Atom& atom, const Fact& fact, Binding* binding) {
  if (atom.predicate != fact.predicate || atom.arity() != fact.arity()) {
    return false;
  }
  for (int pos = 0; pos < atom.arity(); ++pos) {
    const Term& t = atom.terms[pos];
    if (t.is_constant()) {
      if (!(t.constant_value() == fact.args[pos])) return false;
    } else if (!binding->Bind(t.variable_name(), fact.args[pos])) {
      return false;
    }
  }
  return true;
}

}  // namespace templex
