#include "engine/proof.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

namespace templex {

Proof Proof::Extract(const ChaseGraph& graph, FactId goal) {
  Proof proof;
  proof.graph_ = &graph;
  proof.goal_ = goal;
  // Topologically order the derivation sub-graph. In a freshly chased
  // graph parents always precede children by id, but in a variant graph
  // (ChaseGraph::WithAlternative) the swapped derivation may point at
  // later-derived facts — so we Kahn-sort explicitly, breaking ties by id
  // to keep the primary-graph order identical to the id order.
  const std::vector<FactId> closure = graph.AncestorClosure(goal);
  const std::set<FactId> members(closure.begin(), closure.end());
  std::map<FactId, int> pending;  // unprocessed parents per node
  std::map<FactId, std::vector<FactId>> children;
  for (FactId id : closure) {
    int parents_in = 0;
    for (FactId parent : graph.node(id).parents) {
      if (members.count(parent) > 0) {
        ++parents_in;
        children[parent].push_back(id);
      }
    }
    pending[id] = parents_in;
  }
  std::priority_queue<FactId, std::vector<FactId>, std::greater<FactId>>
      ready;
  for (FactId id : closure) {
    if (pending[id] == 0) ready.push(id);
  }
  std::vector<FactId> ordered;
  while (!ready.empty()) {
    FactId id = ready.top();
    ready.pop();
    ordered.push_back(id);
    for (FactId child : children[id]) {
      if (--pending[child] == 0) ready.push(child);
    }
  }
  // A cycle would leave nodes unemitted; append them in id order so the
  // proof is at least complete (cannot happen for engine-produced graphs).
  if (ordered.size() < closure.size()) {
    for (FactId id : closure) {
      if (std::find(ordered.begin(), ordered.end(), id) == ordered.end()) {
        ordered.push_back(id);
      }
    }
  }
  for (FactId id : ordered) {
    if (graph.node(id).is_extensional()) {
      proof.edb_facts_.push_back(id);
    } else {
      proof.steps_.push_back(id);
    }
  }
  return proof;
}

std::vector<std::string> Proof::RuleLabelSequence() const {
  std::vector<std::string> labels;
  labels.reserve(steps_.size());
  for (FactId id : steps_) {
    labels.push_back(graph_->node(id).rule_label);
  }
  return labels;
}

std::vector<Value> Proof::Constants() const {
  std::vector<Value> constants;
  auto add_fact = [this, &constants](FactId id) {
    for (const Value& v : graph_->node(id).fact.args) {
      if (std::find(constants.begin(), constants.end(), v) ==
          constants.end()) {
        constants.push_back(v);
      }
    }
  };
  for (FactId id : edb_facts_) add_fact(id);
  for (FactId id : steps_) add_fact(id);
  return constants;
}

std::string Proof::ToString() const {
  std::string result;
  for (FactId id : edb_facts_) {
    result += "  [edb] " + graph_->node(id).fact.ToString() + "\n";
  }
  for (FactId id : steps_) {
    const ChaseNode& node = graph_->node(id);
    result += "  [" + node.rule_label + "]  " + node.fact.ToString() + "  <-";
    for (FactId parent : node.parents) {
      result += " " + graph_->node(parent).fact.ToString();
    }
    result += "\n";
  }
  return result;
}

}  // namespace templex
