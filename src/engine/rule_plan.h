#ifndef TEMPLEX_ENGINE_RULE_PLAN_H_
#define TEMPLEX_ENGINE_RULE_PLAN_H_

#include <string>
#include <vector>

#include "datalog/rule.h"
#include "datalog/symbol.h"

namespace templex {

namespace obs {
class Counter;  // obs/metrics.h
}

// Compiled description of one atom position: what the match enumerator
// must do with a candidate fact's argument there, with no string in sight.
struct TermPlan {
  // is_constant: the argument must equal `constant`. Otherwise the argument
  // is checked against variable slot `slot` when the slot is bound, or
  // bound into it on its first occurrence along the current match path.
  bool is_constant = false;
  Value constant;
  int slot = -1;
  // True iff this position is the variable's first occurrence across the
  // whole body. Atom order is fixed and positions scan left to right, so
  // whether a slot is bound when the enumerator reaches a position is a
  // compile-time fact: binds == write the slot, !binds == compare against
  // it. No runtime bound flags, no undo trail — a failed candidate's stale
  // writes are dead because only a `binds` position ever writes a slot and
  // every read happens at a strictly later position.
  bool binds = false;
  // True when this position's value is known the moment the enumerator
  // ENTERS the atom: a constant, or a variable slot first bound by an
  // earlier body atom. Positions bound by an earlier position of the same
  // atom do not qualify — their value only materializes per candidate,
  // too late to drive a sorted-segment probe.
  bool bound_at_entry = false;
};

// Compiled body atom: interned predicate plus per-position term plans.
// kInvalidSymbol means the predicate was unknown to the table at compile
// time and no stored fact can carry it — the atom matches nothing.
struct AtomPlan {
  Symbol predicate = kInvalidSymbol;
  int arity = 0;
  std::vector<TermPlan> terms;
  // First bound_at_entry position, or -1 when none: the join key a
  // merge-join sources candidates by (EqualRange on the segments' sorted
  // view). -1 still merge-joins as an ordered row scan of the segments.
  int probe_position = -1;
};

// Precomputed per-rule evaluation plan, built once per chase run: the
// logical split of conditions around the aggregate, the aggregation keys,
// the existential head variables, per-rule metric instruments — and, after
// CompileMatchPlan, the slot-indexed match program the enumerator executes
// instead of walking Atom/Term/Binding strings.
struct RulePlan {
  const Rule* rule = nullptr;
  int index = 0;

  std::vector<const Condition*> pre_conditions;
  std::vector<const Condition*> post_conditions;

  // Aggregation plan (set iff rule->has_aggregate()).
  std::vector<std::string> group_vars;
  std::vector<std::string> contributor_vars;  // residual (implicit) key
  bool explicit_contributor_keys = false;

  std::vector<std::string> existential_vars;

  // Per-rule instruments, resolved once per run; null when the run has no
  // MetricsRegistry attached (the hot loop then pays one pointer test).
  obs::Counter* matches_counter = nullptr;     // body homomorphisms
  obs::Counter* firings_counter = nullptr;     // head emissions attempted
  obs::Counter* duplicates_counter = nullptr;  // emissions already present

  // Compiled match plan (CompileMatchPlan). Body variables map to dense
  // slots in first-occurrence order across the body atoms — exactly the
  // order MatchAtom's Bind() appended them, so a Binding materialized from
  // the slots is byte-identical to the one the string-keyed matcher built.
  std::vector<AtomPlan> body;
  std::vector<std::string> slot_names;  // slot -> variable name
  Symbol head_predicate = kInvalidSymbol;
  bool compiled = false;

  int num_slots() const { return static_cast<int>(slot_names.size()); }
};

// Builds the logical plan — everything derivable from the rule alone.
RulePlan MakeRulePlan(const Rule& rule, int index);

// Compiles the match plan against a symbol table. The mutable overload
// interns the rule's body and head predicates (the chase compiles each
// rule once per run against its graph's table, so predicates referenced
// before any fact of theirs exists still get a symbol and a live index
// slot). The const overload only looks predicates up: an unknown predicate
// compiles to kInvalidSymbol and matches nothing, which is sound when
// enumerating a graph whose fact set below the window limit is frozen.
void CompileMatchPlan(RulePlan* plan, SymbolTable* symbols);
void CompileMatchPlan(RulePlan* plan, const SymbolTable& symbols);

}  // namespace templex

#endif  // TEMPLEX_ENGINE_RULE_PLAN_H_
